"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.core.importance import FeatureImportance, permutation_importance


def make_task(n=300, servers=3, feats=5, seed=0):
    """Label depends ONLY on feature 0 of the hottest server."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    signal = rng.uniform(0, 4, size=n)
    X[np.arange(n), hot, 0] += signal
    y = (signal > 2).astype(int)
    return X, y


def oracle_predict(X):
    return (X[:, :, 0].max(axis=1) > 2).astype(int)


def test_signal_feature_ranks_first():
    X, y = make_task()
    imp = permutation_importance(oracle_predict, X, y,
                                 tuple(f"f{i}" for i in range(5)))
    top_name, top_drop = imp.top(1)[0]
    assert top_name == "f0"
    assert top_drop > 0.2
    # Dead features cost (almost) nothing.
    dead = dict(imp.top(5))
    for name in ("f1", "f2", "f3", "f4"):
        assert abs(dead[name]) < 0.05


def test_baseline_accuracy_reported():
    X, y = make_task()
    imp = permutation_importance(oracle_predict, X, y,
                                 tuple(f"f{i}" for i in range(5)))
    assert imp.baseline_accuracy > 0.9


def test_deterministic_given_seed():
    X, y = make_task()
    names = tuple(f"f{i}" for i in range(5))
    a = permutation_importance(oracle_predict, X, y, names, seed=3)
    b = permutation_importance(oracle_predict, X, y, names, seed=3)
    assert np.array_equal(a.drops, b.drops)


def test_render_lists_top_features():
    X, y = make_task()
    imp = permutation_importance(oracle_predict, X, y,
                                 tuple(f"f{i}" for i in range(5)))
    text = imp.render(k=3)
    assert "f0" in text and "baseline" in text


def test_validation():
    X, y = make_task(n=10)
    names = tuple(f"f{i}" for i in range(5))
    with pytest.raises(ValueError):
        permutation_importance(oracle_predict, X[:, 0], y, names)
    with pytest.raises(ValueError):
        permutation_importance(oracle_predict, X, y, names[:-1])
    with pytest.raises(ValueError):
        permutation_importance(oracle_predict, X, y, names, n_repeats=0)
    with pytest.raises(ValueError):
        permutation_importance(oracle_predict, X, y[:-1], names)


class TestGroupedImportance:
    def test_signal_group_dominates(self):
        from repro.core.importance import grouped_importance

        X, y = make_task()
        groups = {"signal": [0], "noise": [1, 2, 3, 4]}
        imp = grouped_importance(oracle_predict, X, y, groups)
        drops = dict(zip(imp.feature_names, imp.drops))
        assert drops["signal"] > 0.2
        assert abs(drops["noise"]) < 0.05

    def test_redundant_features_visible_only_jointly(self):
        """Three copies of the signal behind a majority vote: permuting a
        single copy changes (almost) nothing, permuting the family
        destroys the model — the failure mode grouped importance exists
        to expose."""
        from repro.core.importance import grouped_importance

        X, y = make_task()
        X[:, :, 1] = X[:, :, 0]
        X[:, :, 2] = X[:, :, 0]

        def predict(Z):
            votes = sum((Z[:, :, f].max(axis=1) > 2).astype(int)
                        for f in (0, 1, 2))
            return (votes >= 2).astype(int)

        single = permutation_importance(predict, X, y,
                                        tuple(f"f{i}" for i in range(5)))
        assert single.drops[0] < 0.05  # masked by the two intact copies
        joint = grouped_importance(predict, X, y, {"family": [0, 1, 2]})
        assert joint.drops[0] > 0.2

    def test_validation(self):
        from repro.core.importance import grouped_importance

        X, y = make_task(n=10)
        with pytest.raises(ValueError):
            grouped_importance(oracle_predict, X, y, {})
        with pytest.raises(ValueError):
            grouped_importance(oracle_predict, X, y, {"bad": [99]})
        with pytest.raises(ValueError):
            grouped_importance(oracle_predict, X, y, {"empty": []})


def test_works_with_trained_predictor():
    from repro.core.dataset import Dataset
    from repro.core.labeling import BINARY_THRESHOLDS
    from repro.core.nn.train import TrainConfig
    from repro.core.predictor import InterferencePredictor

    X, y = make_task(n=200)
    ds = Dataset(X, y, feature_names=tuple(f"f{i}" for i in range(5)))
    predictor = InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=30, seed=0))
    imp = permutation_importance(predictor.predict, X, y, ds.feature_names,
                                 n_repeats=2)
    assert imp.top(1)[0][0] == "f0"
