"""Tests for the streaming (runtime) predictor."""

import numpy as np
import pytest

from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.online import StreamingPredictor, WindowPrediction
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    experiment_cluster,
)
from repro.monitor.aggregator import MonitoredRun, assemble_vectors
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import launch, launch_interference
from repro.workloads.io500 import make_io500_task


@pytest.fixture(scope="module")
def trained_predictor():
    config = ExperimentConfig(window_size=0.5, sample_interval=0.125,
                              warmup=0.5, seed=0)
    targets = [make_io500_task("ior-easy-write", ranks=4, scale=0.3)]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=3,
                                            ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    return InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )


def run_streaming(predictor, window_size=0.5, with_noise=True,
                  monitor_faults=None, reorder_windows=0,
                  min_completeness=0.0):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster, sample_interval=0.125,
                            faults=monitor_faults, fault_scope="online")
    monitor.start()
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.3)
    streaming = StreamingPredictor(
        predictor=predictor,
        cluster=cluster,
        monitor=monitor,
        job=target.name,
        window_size=window_size,
        reorder_windows=reorder_windows,
        min_completeness=min_completeness,
    )
    streaming.start()
    if with_noise:
        noise = make_io500_task("ior-easy-write", name="noise", ranks=3,
                                scale=0.25)
        launch_interference(cluster, noise, [4, 5, 6], seed=5, record=False)
        cluster.env.run(until=0.5)
    handle = launch(cluster, target, [0, 1, 2, 3], seed=7)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + window_size + 0.2)
    return cluster, monitor, streaming, target


def test_predictions_emitted_during_run(trained_predictor):
    cluster, _, streaming, _ = run_streaming(trained_predictor)
    assert len(streaming.predictions) >= 2
    for pred in streaming.predictions:
        assert isinstance(pred, WindowPrediction)
        # Emitted right after the window closed, not at the end of the run.
        assert pred.emitted_at == pytest.approx(
            (pred.window + 1) * 0.5, abs=0.05)
        assert sum(pred.probabilities) == pytest.approx(1.0)


def test_streaming_matches_offline_pipeline(trained_predictor):
    """Per-window vectors assembled online must equal the offline ones."""
    cluster, monitor, streaming, target = run_streaming(trained_predictor)
    run = MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
    )
    offline = trained_predictor.predict_run(run, window_size=0.5,
                                            sample_interval=0.125)
    online = {p.window: p.severity for p in streaming.predictions}
    shared = sorted(set(offline) & set(online))
    assert len(shared) >= 2
    agree = sum(offline[w] == online[w] for w in shared)
    assert agree == len(shared), (
        f"online/offline disagree: {[(w, online[w], offline[w]) for w in shared]}"
    )


def test_callback_invoked(trained_predictor):
    seen = []
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster, sample_interval=0.125)
    monitor.start()
    target = make_io500_task("ior-easy-write", ranks=2, scale=0.1)
    streaming = StreamingPredictor(
        predictor=trained_predictor, cluster=cluster, monitor=monitor,
        job=target.name, window_size=0.25, on_prediction=seen.append,
    )
    streaming.start()
    handle = launch(cluster, target, [0, 1], seed=1)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 0.5)
    assert seen == streaming.predictions


def test_double_start_rejected(trained_predictor):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster)
    monitor.start()
    streaming = StreamingPredictor(
        predictor=trained_predictor, cluster=cluster, monitor=monitor,
        job="x",
    )
    streaming.start()
    with pytest.raises(RuntimeError):
        streaming.start()


# -- degraded telemetry -------------------------------------------------------


def test_param_validation(trained_predictor):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster)
    monitor.start()

    def build(**kwargs):
        return StreamingPredictor(predictor=trained_predictor,
                                  cluster=cluster, monitor=monitor, job="x",
                                  **kwargs)

    with pytest.raises(ValueError, match="reorder_windows"):
        build(reorder_windows=-1).start()
    with pytest.raises(ValueError, match="min_completeness"):
        build(min_completeness=1.5).start()


def test_defaults_report_full_completeness(trained_predictor):
    """Without faults every emitted window is complete and fresh."""
    _, _, streaming, _ = run_streaming(trained_predictor,
                                       min_completeness=0.5)
    assert len(streaming.predictions) >= 2
    for pred in streaming.predictions:
        assert pred.completeness == pytest.approx(1.0)
        assert not pred.stale


def test_complete_windows_unchanged_by_fallback_knobs(trained_predictor):
    """Enabling the resilience knobs on a healthy stream must not change
    a single prediction."""
    from repro.faults import FaultPlan

    plain = run_streaming(trained_predictor)[2]
    guarded = run_streaming(trained_predictor, monitor_faults=FaultPlan(),
                            min_completeness=0.5)[2]
    assert [(p.window, p.severity, p.probabilities)
            for p in plain.predictions] == \
           [(p.window, p.severity, p.probabilities)
            for p in guarded.predictions]


def test_out_of_order_samples_recovered_by_reorder_buffer(trained_predictor):
    """Delayed (out-of-order) samples land inside the reorder allowance:
    the buffered predictor sees fuller windows than the eager one."""
    from repro.faults import FaultPlan
    from repro.obs.metrics import REGISTRY

    plan = FaultPlan(seed=1, sample_delay_rate=0.6, sample_delay_max=0.4)
    before_late = REGISTRY.counter("online.late_samples").value
    eager = run_streaming(trained_predictor, monitor_faults=plan)[2]
    assert REGISTRY.counter("online.late_samples").value > before_late

    buffered = run_streaming(trained_predictor, monitor_faults=plan,
                             reorder_windows=1)[2]
    shared = sorted(
        set(p.window for p in eager.predictions)
        & set(p.window for p in buffered.predictions)
    )
    assert shared
    eager_c = {p.window: p.completeness for p in eager.predictions}
    buffered_c = {p.window: p.completeness for p in buffered.predictions}
    assert all(buffered_c[w] >= eager_c[w] for w in shared)
    assert sum(buffered_c[w] for w in shared) > sum(eager_c[w] for w in shared)
    # The buffer delays emission by exactly reorder_windows windows.
    for pred in buffered.predictions:
        assert pred.emitted_at == pytest.approx(
            (pred.window + 2) * 0.5, abs=0.05)


def test_stale_fallback_on_gapped_windows(trained_predictor):
    """Windows below min_completeness are flagged stale and repeat the
    last good prediction instead of classifying a half-blind vector."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=3, sample_drop_rate=0.85)
    streaming = run_streaming(trained_predictor, monitor_faults=plan,
                              min_completeness=0.6)[2]
    preds = streaming.predictions
    assert len(preds) >= 2
    stale = [p for p in preds if p.stale]
    assert stale, "85% sample loss must push some window below 0.6"
    for p in stale:
        assert p.completeness < 0.6
    # A stale window following a good one repeats its probabilities.
    last_good = None
    for p in preds:
        if p.stale and last_good is not None:
            assert p.probabilities == last_good.probabilities
        if not p.stale:
            last_good = p


def test_missing_samples_lower_completeness_not_crash(trained_predictor):
    """Total telemetry loss still emits a prediction per window, flagged
    with completeness 0 (the stream degrades, it never NaNs)."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=0, sample_drop_rate=1.0)
    streaming = run_streaming(trained_predictor, monitor_faults=plan)[2]
    assert streaming.predictions
    for pred in streaming.predictions:
        assert pred.completeness == 0.0
        assert np.isfinite(pred.probabilities).all()
