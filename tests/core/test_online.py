"""Tests for the streaming (runtime) predictor."""

import numpy as np
import pytest

from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.online import StreamingPredictor, WindowPrediction
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    experiment_cluster,
)
from repro.monitor.aggregator import MonitoredRun, assemble_vectors
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import launch, launch_interference
from repro.workloads.io500 import make_io500_task


@pytest.fixture(scope="module")
def trained_predictor():
    config = ExperimentConfig(window_size=0.5, sample_interval=0.125,
                              warmup=0.5, seed=0)
    targets = [make_io500_task("ior-easy-write", ranks=4, scale=0.3)]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=3,
                                            ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    return InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )


def run_streaming(predictor, window_size=0.5, with_noise=True):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster, sample_interval=0.125)
    monitor.start()
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.3)
    streaming = StreamingPredictor(
        predictor=predictor,
        cluster=cluster,
        monitor=monitor,
        job=target.name,
        window_size=window_size,
    )
    streaming.start()
    if with_noise:
        noise = make_io500_task("ior-easy-write", name="noise", ranks=3,
                                scale=0.25)
        launch_interference(cluster, noise, [4, 5, 6], seed=5, record=False)
        cluster.env.run(until=0.5)
    handle = launch(cluster, target, [0, 1, 2, 3], seed=7)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + window_size + 0.2)
    return cluster, monitor, streaming, target


def test_predictions_emitted_during_run(trained_predictor):
    cluster, _, streaming, _ = run_streaming(trained_predictor)
    assert len(streaming.predictions) >= 2
    for pred in streaming.predictions:
        assert isinstance(pred, WindowPrediction)
        # Emitted right after the window closed, not at the end of the run.
        assert pred.emitted_at == pytest.approx(
            (pred.window + 1) * 0.5, abs=0.05)
        assert sum(pred.probabilities) == pytest.approx(1.0)


def test_streaming_matches_offline_pipeline(trained_predictor):
    """Per-window vectors assembled online must equal the offline ones."""
    cluster, monitor, streaming, target = run_streaming(trained_predictor)
    run = MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
    )
    offline = trained_predictor.predict_run(run, window_size=0.5,
                                            sample_interval=0.125)
    online = {p.window: p.severity for p in streaming.predictions}
    shared = sorted(set(offline) & set(online))
    assert len(shared) >= 2
    agree = sum(offline[w] == online[w] for w in shared)
    assert agree == len(shared), (
        f"online/offline disagree: {[(w, online[w], offline[w]) for w in shared]}"
    )


def test_callback_invoked(trained_predictor):
    seen = []
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster, sample_interval=0.125)
    monitor.start()
    target = make_io500_task("ior-easy-write", ranks=2, scale=0.1)
    streaming = StreamingPredictor(
        predictor=trained_predictor, cluster=cluster, monitor=monitor,
        job=target.name, window_size=0.25, on_prediction=seen.append,
    )
    streaming.start()
    handle = launch(cluster, target, [0, 1], seed=1)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 0.5)
    assert seen == streaming.predictions


def test_double_start_rejected(trained_predictor):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster)
    monitor.start()
    streaming = StreamingPredictor(
        predictor=trained_predictor, cluster=cluster, monitor=monitor,
        job="x",
    )
    streaming.start()
    with pytest.raises(RuntimeError):
        streaming.start()
