"""Model persistence and the deployed (fused) inference fast path."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor


def synthetic_dataset(n=120, servers=4, feats=6, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    intensity = rng.uniform(0, 3 * n_classes, size=n)
    X[np.arange(n), hot, 0] += intensity
    y = np.minimum((intensity // 3).astype(int), n_classes - 1)
    return Dataset(X, y, feature_names=tuple(f"f{i}" for i in range(feats)))


@pytest.fixture(scope="module")
def trained():
    ds = synthetic_dataset()
    predictor = InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=8, seed=0),
        restarts=1)
    return predictor, ds


def test_save_load_round_trip_exact(tmp_path, trained):
    predictor, ds = trained
    path = tmp_path / "sub" / "model.npz"
    predictor.save(path)  # parent directory is created
    back = InterferencePredictor.load(path)
    assert back.n_classes == predictor.n_classes
    assert back.thresholds == predictor.thresholds
    for a, b in zip(predictor.model.params(), back.model.params()):
        assert np.array_equal(a.value, b.value)
    assert np.array_equal(predictor.normalizer.mean, back.normalizer.mean)
    assert np.array_equal(predictor.normalizer.std, back.normalizer.std)
    # Predictions are bit-identical, not merely close.
    assert np.array_equal(predictor.predict_proba(ds.X),
                          back.predict_proba(ds.X))
    assert back.history.val_loss == predictor.history.val_loss


def test_save_load_multiclass_float32(tmp_path):
    ds = synthetic_dataset(n=150, n_classes=3, seed=3)
    predictor = InterferencePredictor.train(
        ds, MULTICLASS_THRESHOLDS,
        config=TrainConfig(epochs=6, seed=3, dtype="float32"), restarts=1)
    assert predictor.param_dtype == np.float32
    # Satellite fix: inference follows the trained dtype, not float64.
    assert predictor.predict_proba(ds.X).dtype == np.float32
    path = tmp_path / "model.npz"
    predictor.save(path)
    back = InterferencePredictor.load(path)
    assert back.param_dtype == np.float32
    assert np.array_equal(predictor.predict_proba(ds.X),
                          back.predict_proba(ds.X))


def test_load_is_pickle_free(tmp_path, trained):
    predictor, _ = trained
    path = tmp_path / "model.npz"
    predictor.save(path)
    # Must load with allow_pickle left at its safe default.
    data = np.load(path, allow_pickle=False)
    assert "meta" in data.files


def test_load_rejects_foreign_and_corrupt_files(tmp_path, trained):
    predictor, _ = trained
    with pytest.raises((OSError, ValueError)):
        InterferencePredictor.load(tmp_path / "missing.npz")

    alien = tmp_path / "alien.npz"
    np.savez(alien, stuff=np.zeros(3))
    with pytest.raises((KeyError, ValueError)):
        InterferencePredictor.load(alien)

    garbled = tmp_path / "garbled.npz"
    predictor.save(garbled)
    garbled.write_bytes(garbled.read_bytes()[:64])
    with pytest.raises((OSError, ValueError, KeyError)):
        InterferencePredictor.load(garbled)


def test_deployed_matches_unfused(trained):
    predictor, ds = trained
    deployed = predictor.deploy()
    probs = predictor.predict_proba(ds.X)
    fused = deployed.predict_proba(ds.X)
    # Folding the normalizer reassociates the first matmul, so the
    # contract is numerical equivalence, not bit identity.
    assert np.allclose(probs, np.asarray(fused), rtol=1e-9, atol=1e-12)
    assert np.array_equal(predictor.predict(ds.X), deployed.predict(ds.X))


def test_deployed_reuses_buffers(trained):
    predictor, ds = trained
    deployed = predictor.deploy()
    one = ds.X[:1]
    first = deployed.predict_proba(one)
    again = deployed.predict_proba(one)
    assert again is first  # same preallocated output buffer
    # A different batch size gets its own buffers without corruption.
    batch = np.asarray(deployed.predict_proba(ds.X[:7])).copy()
    assert np.allclose(batch, predictor.predict_proba(ds.X[:7]),
                       rtol=1e-9, atol=1e-12)


def test_deployed_after_round_trip(tmp_path, trained):
    predictor, ds = trained
    path = tmp_path / "model.npz"
    predictor.save(path)
    deployed = InterferencePredictor.load(path).deploy()
    assert np.array_equal(predictor.predict(ds.X), deployed.predict(ds.X))


def test_predict_proba_rows_matches_batch_of_one(trained):
    """Every row of a fused micro-batch must be bit-identical to scoring
    that window alone — batch composition cannot perturb anyone."""
    predictor, ds = trained
    deployed = predictor.deploy()
    for n in (1, 3, 7, len(ds.X)):
        rows = np.asarray(deployed.predict_proba_rows(ds.X[:n]))
        assert rows.shape == (n, deployed.n_classes)
        for i in range(n):
            solo = np.asarray(deployed.predict_proba(ds.X[i:i + 1]))[0]
            assert np.array_equal(rows[i], solo), f"row {i} of batch {n}"


def test_predict_proba_rows_validates_shape(trained):
    predictor, _ = trained
    deployed = predictor.deploy()
    with pytest.raises(ValueError, match="expected"):
        deployed.predict_proba_rows(np.zeros((2, deployed.n_servers + 1,
                                              deployed.n_features)))
    with pytest.raises(ValueError, match="expected"):
        deployed.predict_proba_rows(np.zeros((deployed.n_servers,
                                              deployed.n_features)))
    empty = np.asarray(deployed.predict_proba_rows(
        np.zeros((0, deployed.n_servers, deployed.n_features))))
    assert empty.shape == (0, deployed.n_classes)
