"""Tests for the exact-slowdown regression extension."""

import numpy as np
import pytest

from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
from repro.core.nn.losses import huber_loss
from repro.core.nn.train import TrainConfig
from repro.core.regression import (
    LevelRegressor,
    RegressionMetrics,
    spearman_correlation,
)


def synthetic_levels(n=500, servers=4, feats=8, seed=0):
    """Levels are a smooth function of the hot server's load."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.2, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    load = rng.uniform(0.0, 5.0, size=n)
    X[np.arange(n), hot, 0] += load
    X[np.arange(n), hot, 1] += 0.5 * load
    levels = np.power(2.0, load)  # 1x .. 32x
    return X, levels


class TestSpearman:
    def test_perfect_monotone(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(a, a**3) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(a, -a) == pytest.approx(-1.0)

    def test_ties_handled(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([5.0, 5.0, 6.0, 7.0])
        assert spearman_correlation(a, b) == pytest.approx(1.0)

    def test_constant_input_is_zero(self):
        assert spearman_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_correlation(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            spearman_correlation(np.ones(1), np.ones(1))


class TestHuberLoss:
    def test_quadratic_inside_delta(self):
        loss, grad = huber_loss(np.array([0.5]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(0.125)
        assert grad[0] == pytest.approx(0.5)

    def test_linear_outside_delta(self):
        loss, grad = huber_loss(np.array([10.0]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(9.5)
        assert grad[0] == pytest.approx(1.0)

    def test_2d_predictions(self):
        loss, grad = huber_loss(np.array([[1.0], [2.0]]),
                                np.array([1.0, 2.0]))
        assert loss == 0.0
        assert grad.shape == (2, 1)

    def test_gradient_check(self):
        from tests.core.test_nn_layers import numerical_grad

        rng = np.random.default_rng(0)
        pred = rng.normal(size=(6, 1)) * 3
        target = rng.normal(size=6)

        def loss():
            return huber_loss(pred, target, delta=1.0)[0]

        _, grad = huber_loss(pred, target, delta=1.0)
        assert np.allclose(grad, numerical_grad(loss, pred), atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            huber_loss(np.zeros(2), np.zeros(2), delta=0)


class TestLevelRegressor:
    @pytest.fixture(scope="class")
    def trained(self):
        X, levels = synthetic_levels()
        reg = LevelRegressor.train(
            X, levels, config=TrainConfig(epochs=80, lr=3e-3, seed=1,
                                          class_weighting=False), seed=1)
        return X, levels, reg

    def test_ranks_levels_correctly(self, trained):
        X, levels, reg = trained
        metrics = reg.evaluate(X, levels)
        assert metrics.spearman > 0.9
        assert metrics.within_factor_2 > 0.8

    def test_classification_via_thresholding(self, trained):
        X, levels, reg = trained
        from repro.core.labeling import bin_level

        truth = np.array([bin_level(lv, MULTICLASS_THRESHOLDS) for lv in levels])
        preds = reg.classify(X, MULTICLASS_THRESHOLDS)
        assert (preds == truth).mean() > 0.75

    def test_predict_level_positive(self, trained):
        X, _, reg = trained
        assert (reg.predict_level(X) > 0).all()

    def test_rejects_nonpositive_levels(self):
        X, levels = synthetic_levels(n=10)
        levels[0] = 0.0
        with pytest.raises(ValueError):
            LevelRegressor.train(X, levels, config=TrainConfig(epochs=1))

    def test_metrics_summary(self):
        m = RegressionMetrics(0.1, 0.2, 0.95, 0.99)
        assert "spearman=0.950" in m.summary()
