"""Tests for the kernel network, MLP, training loop and baselines."""

import numpy as np
import pytest

from repro.core.baselines import LogisticRegressionClassifier, RandomForestClassifier
from repro.core.nn.kernelnet import KernelInterferenceNet
from repro.core.nn.network import MLPClassifier
from repro.core.nn.train import TrainConfig, train_classifier


def synthetic_per_server_data(n=400, servers=4, feats=6, seed=0,
                              permute_test=False):
    """Separable synthetic task: the label depends on the MAX load across
    servers (a permutation-invariant function, like real interference)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0.0, 0.3, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    intensity = rng.uniform(0.0, 4.0, size=n)
    # Keep a margin around the class boundary so the task is separable.
    intensity = np.where(np.abs(intensity - 2.0) < 0.4,
                         intensity + np.sign(intensity - 2.0 + 1e-9) * 0.4,
                         intensity)
    X[np.arange(n), hot, 0] += intensity
    X[np.arange(n), hot, 1] += 0.5 * intensity
    y = (intensity > 2.0).astype(int)
    if permute_test:
        for i in range(n):
            X[i] = X[i, rng.permutation(servers)]
    return X, y


class TestKernelNet:
    def test_shapes_validated(self):
        net = KernelInterferenceNet(4, 6, 2)
        with pytest.raises(ValueError):
            net.forward(np.zeros((10, 3, 6)))
        with pytest.raises(ValueError):
            net.forward(np.zeros((10, 4)))
        with pytest.raises(ValueError):
            KernelInterferenceNet(4, 6, 1)

    def test_gradient_check(self):
        from repro.core.nn.losses import softmax_cross_entropy
        from tests.core.test_nn_layers import numerical_grad

        net = KernelInterferenceNet(3, 4, 2, kernel_hidden=(5,),
                                    head_hidden=(4,), dropout=0.0, seed=1)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(6, 3, 4))
        y = np.array([0, 1, 0, 1, 1, 0])

        def loss():
            return softmax_cross_entropy(net.forward(X), y)[0]

        logits = net.forward(X)
        _, dlogits = softmax_cross_entropy(logits, y)
        for p in net.params():
            p.grad[...] = 0
        net.backward(dlogits)
        for p in net.params():
            num = numerical_grad(loss, p.value)
            assert np.allclose(p.grad, num, atol=1e-5), "kernel net grad mismatch"

    def test_learns_separable_task(self):
        X, y = synthetic_per_server_data()
        net = KernelInterferenceNet(4, 6, 2, kernel_hidden=(16,),
                                    head_hidden=(8,), dropout=0.0, seed=0)
        train_classifier(net, X, y, TrainConfig(epochs=40, lr=3e-3, seed=0))
        acc = (net.predict(X) == y).mean()
        assert acc > 0.9

    def test_permutation_robustness(self):
        """The kernel net must survive server reordering at test time —
        the architectural motivation in the paper (§III-C)."""
        X, y = synthetic_per_server_data(seed=1)
        net = KernelInterferenceNet(4, 6, 2, kernel_hidden=(16,),
                                    head_hidden=(8,), dropout=0.0, seed=0)
        train_classifier(net, X, y, TrainConfig(epochs=40, lr=3e-3, seed=0))
        Xp, yp = synthetic_per_server_data(seed=1, permute_test=True)
        acc = (net.predict(Xp) == yp).mean()
        assert acc > 0.85

    def test_server_scores_shape(self):
        net = KernelInterferenceNet(4, 6, 2)
        scores = net.server_scores(np.zeros((10, 4, 6)))
        assert scores.shape == (10, 4)


class TestMLP:
    def test_flattens_3d_input(self):
        mlp = MLPClassifier(4 * 6, (8,), 2)
        assert mlp.forward(np.zeros((10, 4, 6))).shape == (10, 2)

    def test_learns_separable_task(self):
        X, y = synthetic_per_server_data()
        mlp = MLPClassifier(4 * 6, (32,), 2, seed=0)
        train_classifier(mlp, X, y, TrainConfig(epochs=40, lr=3e-3, seed=0))
        assert (mlp.predict(X) == y).mean() > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(4, (8,), 1)


class TestTraining:
    def test_loss_decreases(self):
        X, y = synthetic_per_server_data(n=200)
        net = MLPClassifier(4 * 6, (16,), 2, seed=0)
        history = train_classifier(net, X, y,
                                   TrainConfig(epochs=15, lr=1e-3, seed=0))
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_restores_best(self):
        X, y = synthetic_per_server_data(n=150)
        net = MLPClassifier(4 * 6, (16,), 2, seed=0)
        history = train_classifier(
            net, X, y, TrainConfig(epochs=200, lr=5e-2, patience=3, seed=0)
        )
        assert history.best_epoch >= 0
        assert len(history.val_loss) <= 200

    def test_deterministic_given_seed(self):
        X, y = synthetic_per_server_data(n=120)

        def run():
            net = MLPClassifier(4 * 6, (8,), 2, seed=5)
            train_classifier(net, X, y, TrainConfig(epochs=5, seed=5))
            return net.predict_proba(X[:10])

        assert np.array_equal(run(), run())

    def test_validation_errors(self):
        net = MLPClassifier(4, (8,), 2)
        with pytest.raises(ValueError):
            train_classifier(net, np.zeros((3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)


class TestBaselines:
    def test_logreg_learns_linear_task(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        clf = LogisticRegressionClassifier(2, epochs=200).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_logreg_accepts_3d(self):
        X, y = synthetic_per_server_data(n=200)
        clf = LogisticRegressionClassifier(2, epochs=100).fit(X, y)
        assert clf.predict(X).shape == (200,)

    def test_random_forest_learns_nonlinear_task(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 3))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(int)  # XOR-ish, not linear
        clf = RandomForestClassifier(2, n_trees=15, max_depth=6, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.85

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier(2).predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            RandomForestClassifier(2).predict(np.zeros((1, 2)))

    def test_probabilities_valid(self):
        X, y = synthetic_per_server_data(n=100)
        clf = RandomForestClassifier(2, n_trees=5, seed=0).fit(X, y)
        p = clf.predict_proba(X)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(1)
        with pytest.raises(ValueError):
            RandomForestClassifier(2, n_trees=0)
