"""Tests (incl. gradient checks) for the set-attention model."""

import numpy as np
import pytest

from repro.core.nn.attention import (
    LayerNorm,
    MultiHeadSelfAttention,
    SetTransformerClassifier,
    TransformerBlock,
)
from repro.core.nn.losses import softmax_cross_entropy
from repro.core.nn.train import TrainConfig, train_classifier
from tests.core.test_models import synthetic_per_server_data
from tests.core.test_nn_layers import numerical_grad


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 3, 8))
        y = ln.forward(x)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        ln = LayerNorm(5)
        ln.gain.value[:] = rng.normal(1.0, 0.1, 5)
        ln.bias.value[:] = rng.normal(0.0, 0.1, 5)
        x = rng.normal(size=(3, 4, 5))
        target = rng.normal(size=(3, 4, 5))

        def loss():
            return 0.5 * np.sum((ln.forward(x) - target) ** 2)

        out = ln.forward(x)
        for p in ln.params():
            p.grad[...] = 0
        dx = ln.backward(out - target)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-5)
        assert np.allclose(ln.gain.grad, numerical_grad(loss, ln.gain.value),
                           atol=1e-5)
        assert np.allclose(ln.bias.grad, numerical_grad(loss, ln.bias.value),
                           atol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestAttention:
    def test_shape_and_heads(self):
        attn = MultiHeadSelfAttention(16, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 7, 16))
        assert attn.forward(x).shape == (2, 7, 16)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        attn = MultiHeadSelfAttention(6, 2, rng=rng)
        x = rng.normal(size=(2, 4, 6))
        target = rng.normal(size=(2, 4, 6))

        def loss():
            return 0.5 * np.sum((attn.forward(x) - target) ** 2)

        out = attn.forward(x)
        for p in attn.params():
            p.grad[...] = 0
        dx = attn.backward(out - target)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-4)
        for p in attn.params():
            assert np.allclose(p.grad, numerical_grad(loss, p.value), atol=1e-4)

    def test_permutation_equivariance(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(3))
        x = np.random.default_rng(4).normal(size=(1, 5, 8))
        perm = np.array([3, 0, 4, 1, 2])
        out = attn.forward(x)
        out_perm = attn.forward(x[:, perm])
        assert np.allclose(out[:, perm], out_perm, atol=1e-10)


class TestTransformerBlock:
    def test_gradient_check(self):
        rng = np.random.default_rng(5)
        block = TransformerBlock(6, 2, seed=5)
        x = rng.normal(size=(2, 3, 6))
        target = rng.normal(size=(2, 3, 6))

        def loss():
            return 0.5 * np.sum((block.forward(x) - target) ** 2)

        out = block.forward(x)
        for p in block.params():
            p.grad[...] = 0
        dx = block.backward(out - target)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-4)
        for p in block.params():
            assert np.allclose(p.grad, numerical_grad(loss, p.value),
                               atol=1e-4), "block param grad mismatch"


class TestSetTransformerClassifier:
    def test_shapes_validated(self):
        model = SetTransformerClassifier(4, 6, 2, dim=8, n_heads=2, n_blocks=1)
        with pytest.raises(ValueError):
            model.forward(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            SetTransformerClassifier(4, 6, 1)

    def test_gradient_check_end_to_end(self):
        model = SetTransformerClassifier(3, 4, 2, dim=4, n_heads=2,
                                         n_blocks=1, seed=7)
        rng = np.random.default_rng(7)
        X = rng.normal(size=(4, 3, 4))
        y = np.array([0, 1, 1, 0])

        def loss():
            return softmax_cross_entropy(model.forward(X), y)[0]

        logits = model.forward(X)
        _, dlogits = softmax_cross_entropy(logits, y)
        for p in model.params():
            p.grad[...] = 0
        model.backward(dlogits)
        for p in model.params():
            assert np.allclose(p.grad, numerical_grad(loss, p.value),
                               atol=1e-4), "set-transformer grad mismatch"

    def test_learns_separable_task(self):
        X, y = synthetic_per_server_data()
        model = SetTransformerClassifier(4, 6, 2, dim=16, n_heads=2,
                                         n_blocks=1, seed=1)
        train_classifier(model, X, y, TrainConfig(epochs=40, lr=3e-3, seed=1))
        assert (model.predict(X) == y).mean() > 0.9

    def test_permutation_invariance_of_prediction(self):
        model = SetTransformerClassifier(4, 6, 2, dim=8, n_heads=2,
                                         n_blocks=1, seed=2)
        X = np.random.default_rng(2).normal(size=(10, 4, 6))
        perm = np.array([2, 0, 3, 1])
        assert np.allclose(model.predict_proba(X),
                           model.predict_proba(X[:, perm]), atol=1e-10)

    def test_variable_server_count_at_inference(self):
        """Mean pooling makes the model server-count agnostic — the core
        requirement for cross-cluster adaptation."""
        model = SetTransformerClassifier(4, 6, 2, dim=8, n_heads=2,
                                         n_blocks=1, seed=3)
        out = model.forward(np.zeros((5, 9, 6)))  # 9 servers, trained for 4
        assert out.shape == (5, 2)
