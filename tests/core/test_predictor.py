"""Tests for the end-to-end predictor on synthetic datasets."""

import numpy as np
import pytest

from repro.core.dataset import Dataset, train_test_split
from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor


def synthetic_dataset(n=300, servers=4, feats=8, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    intensity = rng.uniform(0, 3 * n_classes, size=n)
    X[np.arange(n), hot, 0] += intensity
    y = np.minimum((intensity // 3).astype(int), n_classes - 1)
    return Dataset(X, y, feature_names=tuple(f"f{i}" for i in range(feats)))


def test_train_and_evaluate_binary():
    ds = synthetic_dataset()
    train, test = train_test_split(ds, 0.2, seed=0)
    predictor = InterferencePredictor.train(
        train, BINARY_THRESHOLDS, config=TrainConfig(epochs=30, seed=0))
    report = predictor.evaluate(test)
    assert report.accuracy > 0.8
    assert predictor.n_classes == 2


def test_train_multiclass():
    ds = synthetic_dataset(n=400, n_classes=3, seed=1)
    train, test = train_test_split(ds, 0.2, seed=1)
    predictor = InterferencePredictor.train(
        train, MULTICLASS_THRESHOLDS, config=TrainConfig(epochs=40, seed=1))
    report = predictor.evaluate(test)
    assert report.confusion.shape == (3, 3)
    assert report.accuracy > 0.6


def test_class_count_mismatch_rejected():
    ds = synthetic_dataset(n_classes=3)
    with pytest.raises(ValueError):
        InterferencePredictor.train(ds, BINARY_THRESHOLDS,
                                    config=TrainConfig(epochs=1))


def test_predict_shapes_and_probabilities():
    ds = synthetic_dataset(n=100)
    predictor = InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=5, seed=0))
    preds = predictor.predict(ds.X)
    probs = predictor.predict_proba(ds.X)
    assert preds.shape == (100,)
    assert probs.shape == (100, 2)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert set(np.unique(preds)) <= {0, 1}


def test_training_history_recorded():
    ds = synthetic_dataset(n=100)
    predictor = InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=8, seed=0))
    assert predictor.history is not None
    assert len(predictor.history.train_loss) >= 1
