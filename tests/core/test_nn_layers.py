"""Tests for layers, losses and optimisers, including gradient checks."""

import numpy as np
import pytest

from repro.core.nn.layers import Dense, Dropout, Param, ReLU, Sequential
from repro.core.nn.losses import softmax_cross_entropy, softmax_probs
from repro.core.nn.optim import SGD, Adam


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape_2d_and_3d(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)
        assert layer.forward(np.zeros((5, 7, 4))).shape == (5, 7, 3)

    def test_rejects_wrong_feature_dim(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 5)))

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        layer.W.grad[...] = 0
        layer.b.grad[...] = 0
        layer.backward(out - target)
        num_W = numerical_grad(loss, layer.W.value)
        num_b = numerical_grad(loss, layer.b.value)
        assert np.allclose(layer.W.grad, num_W, atol=1e-5)
        assert np.allclose(layer.b.grad, num_b, atol=1e-5)

    def test_gradient_check_input_3d(self):
        """Shared-weight (3-D) application backpropagates correctly."""
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 5, 3))
        target = rng.normal(size=(4, 5, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        dx = layer.backward(out - target)
        num_x = numerical_grad(loss, x)
        assert np.allclose(dx, num_x, atol=1e-5)


class TestReLUDropout:
    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        assert np.array_equal(relu.forward(x), [[0, 2], [3, 0]])
        g = relu.backward(np.ones_like(x))
        assert np.array_equal(g, [[0, 1], [1, 0]])

    def test_dropout_identity_at_inference(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 10))
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10))
        y = drop.forward(x, training=True)
        assert y.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLoss:
    def test_softmax_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(10, 4)) * 50
        p = softmax_probs(logits)
        assert np.allclose(p.sum(axis=-1), 1.0)
        assert (p >= 0).all()

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 3))
        y = np.array([0, 2, 1, 1, 0])
        weights = np.array([1.0, 2.0, 0.5])

        def loss():
            return softmax_cross_entropy(logits, y, weights)[0]

        _, grad = softmax_cross_entropy(logits, y, weights)
        num = numerical_grad(loss, logits)
        assert np.allclose(grad, num, atol=1e-6)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0, 2]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0, 1]),
                                  class_weights=np.ones(3))


class TestOptim:
    def quadratic_setup(self):
        p = Param.of(np.array([5.0, -3.0]))
        return p

    def test_sgd_minimises_quadratic(self):
        p = self.quadratic_setup()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-4)

    def test_adam_minimises_quadratic(self):
        p = self.quadratic_setup()
        opt = Adam([p], lr=0.1)
        for _ in range(400):
            opt.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_validation(self):
        p = self.quadratic_setup()
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            Adam([p], lr=-1.0)


def test_sequential_composes_backward():
    rng = np.random.default_rng(4)
    net = Sequential([Dense(3, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
    x = rng.normal(size=(6, 3))
    target = rng.normal(size=(6, 2))

    def loss():
        return 0.5 * np.sum((net.forward(x) - target) ** 2)

    out = net.forward(x)
    for p in net.params():
        p.grad[...] = 0
    net.backward(out - target)
    for p in net.params():
        num = numerical_grad(loss, p.value)
        assert np.allclose(p.grad, num, atol=1e-5)


class TestHotLoopOptimisations:
    def test_relu_inplace_matches_allocating_path(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 5))
        grad = rng.normal(size=(6, 5))
        plain = ReLU()
        out_plain = plain.forward(x.copy(), training=True)
        gin_plain = plain.backward(grad.copy())
        inplace = ReLU(inplace=True)
        out_inplace = inplace.forward(x.copy(), training=True)
        gin_inplace = inplace.backward(grad.copy())
        # Values agree everywhere (only the IEEE sign of zeros may differ).
        np.testing.assert_array_equal(out_plain + 0.0, out_inplace + 0.0)
        np.testing.assert_array_equal(gin_plain + 0.0, gin_inplace + 0.0)

    def test_dense_training_buffer_matches_inference_math(self):
        rng = np.random.default_rng(4)
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        x = rng.normal(size=(4, 7, 5))
        train_out = layer.forward(x, training=True)
        infer_out = layer.forward(x, training=False)
        np.testing.assert_array_equal(train_out, infer_out)
        # The scratch buffer is reused on the next same-shaped call...
        again = layer.forward(x + 1.0, training=True)
        assert again is train_out
        # ...and replaced when the batch shape changes.
        other = layer.forward(rng.normal(size=(2, 5)), training=True)
        assert other is not train_out and other.shape == (2, 3)

    def test_dense_backward_accumulates_with_buffers(self):
        """Two backward passes must accumulate grads, not overwrite them
        (the scratch gw buffer is added into W.grad, never aliased)."""
        layer = Dense(4, 2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 4))
        grad = rng.normal(size=(3, 2))
        layer.forward(x, training=True)
        layer.backward(grad)
        once = layer.W.grad.copy()
        layer.forward(x, training=True)
        layer.backward(grad)
        np.testing.assert_allclose(layer.W.grad, 2 * once, rtol=0, atol=0)


class TestFloat32Training:
    def test_float32_config_trains_and_casts(self):
        from repro.core.nn.network import MLPClassifier
        from repro.core.nn.train import TrainConfig, train_classifier

        rng = np.random.default_rng(0)
        X = rng.normal(size=(48, 8))
        y = rng.integers(0, 3, size=48)
        model = MLPClassifier(in_dim=8, hidden=(16,), n_classes=3, seed=0)
        cfg = TrainConfig(epochs=3, batch_size=16, dtype="float32")
        history = train_classifier(model, X, y, cfg)
        assert len(history.train_loss) >= 1
        assert all(p.value.dtype == np.float32 for p in model.params())
        assert np.isfinite(history.train_loss).all()

    def test_bad_dtype_rejected(self):
        from repro.core.nn.train import TrainConfig

        with pytest.raises(ValueError, match="dtype"):
            TrainConfig(dtype="float16")
