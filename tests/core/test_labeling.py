"""Tests for degradation labelling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.records import IORecord, OpType, ServerId, ServerKind
from repro.core.labeling import (
    BINARY_THRESHOLDS,
    MULTICLASS_THRESHOLDS,
    DegradationLabeller,
    bin_level,
    match_operations,
)

OST0 = (ServerId(ServerKind.OST, 0),)


def rec(op_id, start, end, job="app", rank=0):
    return IORecord(job=job, rank=rank, op_id=op_id, op=OpType.READ, path="/f",
                    offset=0, size=100, start=start, end=end, servers=OST0)


class TestBinLevel:
    def test_binary(self):
        assert bin_level(1.0, BINARY_THRESHOLDS) == 0
        assert bin_level(1.99, BINARY_THRESHOLDS) == 0
        assert bin_level(2.0, BINARY_THRESHOLDS) == 1
        assert bin_level(40.0, BINARY_THRESHOLDS) == 1

    def test_multiclass(self):
        assert bin_level(1.5, MULTICLASS_THRESHOLDS) == 0
        assert bin_level(2.0, MULTICLASS_THRESHOLDS) == 1
        assert bin_level(4.99, MULTICLASS_THRESHOLDS) == 1
        assert bin_level(5.0, MULTICLASS_THRESHOLDS) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_level(-1.0, BINARY_THRESHOLDS)
        with pytest.raises(ValueError):
            bin_level(1.0, (5.0, 2.0))

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_monotone_in_level(self, level):
        assert bin_level(level, MULTICLASS_THRESHOLDS) <= bin_level(
            level + 1.0, MULTICLASS_THRESHOLDS
        )


class TestMatching:
    def test_exact_key_match(self):
        base = [rec(1, 0.0, 0.1), rec(2, 0.1, 0.2)]
        interf = [rec(1, 0.0, 0.3), rec(2, 0.3, 0.9)]
        pairs = match_operations(base, interf, "app")
        assert [(b.op_id, i.op_id) for b, i in pairs] == [(1, 1), (2, 2)]

    def test_unmatched_ops_dropped(self):
        base = [rec(1, 0.0, 0.1)]
        interf = [rec(1, 0.0, 0.2), rec(2, 0.2, 0.4)]
        assert len(match_operations(base, interf, "app")) == 1

    def test_other_jobs_ignored(self):
        base = [rec(1, 0.0, 0.1), rec(1, 0.0, 0.5, job="noise")]
        interf = [rec(1, 0.0, 0.2), rec(1, 0.0, 9.0, job="noise")]
        pairs = match_operations(base, interf, "app")
        assert len(pairs) == 1
        assert pairs[0][0].job == "app"

    def test_ranks_distinguished(self):
        base = [rec(1, 0.0, 0.1, rank=0), rec(1, 0.0, 0.2, rank=1)]
        interf = [rec(1, 0.0, 0.4, rank=1)]
        pairs = match_operations(base, interf, "app")
        assert pairs[0][0].rank == 1


class TestLabeller:
    def test_window_level_is_mean_ratio(self):
        # Two ops completing in window 0: ratios 3.0 and 1.0 -> level 2.0.
        base = [rec(1, 0.0, 0.1), rec(2, 0.1, 0.2)]
        interf = [rec(1, 0.0, 0.3), rec(2, 0.3, 0.4)]
        labeller = DegradationLabeller(window_size=1.0)
        levels = labeller.window_levels(base, interf, "app")
        assert levels[0] == pytest.approx(2.0)

    def test_windows_indexed_by_interference_completion(self):
        base = [rec(1, 0.0, 0.1)]
        interf = [rec(1, 0.0, 2.5)]  # completes in window 2
        labeller = DegradationLabeller(window_size=1.0)
        levels = labeller.window_levels(base, interf, "app")
        assert list(levels) == [2]
        assert levels[2] == pytest.approx(25.0)

    def test_labels_binned(self):
        base = [rec(1, 0.0, 0.1), rec(2, 1.0, 1.1)]
        interf = [rec(1, 0.0, 0.95), rec(2, 1.0, 1.11)]
        labeller = DegradationLabeller(window_size=1.0,
                                       thresholds=BINARY_THRESHOLDS)
        labels = labeller.window_labels(base, interf, "app")
        assert labels[0] == 1  # 9.5x slowdown
        assert labels[1] == 0  # 1.1x

    def test_near_zero_baseline_ops_skipped(self):
        base = [rec(1, 0.0, 0.0)]
        interf = [rec(1, 0.0, 1.0)]
        labeller = DegradationLabeller(window_size=1.0, min_baseline=1e-6)
        assert labeller.window_levels(base, interf, "app") == {}

    def test_n_classes(self):
        assert DegradationLabeller(thresholds=BINARY_THRESHOLDS).n_classes == 2
        assert DegradationLabeller(thresholds=MULTICLASS_THRESHOLDS).n_classes == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationLabeller(window_size=0)
        with pytest.raises(ValueError):
            DegradationLabeller(thresholds=())

    def test_identical_runs_label_no_interference(self):
        records = [rec(i, i * 0.1, i * 0.1 + 0.05) for i in range(1, 20)]
        labeller = DegradationLabeller(window_size=1.0)
        labels = labeller.window_labels(records, records, "app")
        assert all(v == 0 for v in labels.values())
