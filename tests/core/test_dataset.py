"""Tests for dataset handling and normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset, Normalizer, train_test_split


def make_dataset(n=100, servers=3, feats=5, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        rng.normal(size=(n, servers, feats)),
        rng.integers(0, n_classes, size=n),
        feature_names=tuple(f"f{i}" for i in range(feats)),
        source="unit",
    )


class TestDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 5)), np.zeros(4), feature_names=("a",) * 5)
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2, 3)), np.zeros(5), feature_names=("a",) * 3)
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2, 3)), np.zeros(4), feature_names=("a",) * 2)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 1, 1)), np.array([0, -1]),
                    feature_names=("a",))

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1, 1)), np.array([0, 1, 1, 1]),
                     feature_names=("a",))
        assert ds.class_counts().tolist() == [1, 3]

    def test_concatenate(self):
        a, b = make_dataset(10), make_dataset(20, seed=1)
        c = Dataset.concatenate([a, b])
        assert len(c) == 30

    def test_concatenate_source_keeps_append_order(self):
        parts = [make_dataset(5), make_dataset(5, seed=1),
                 make_dataset(5, seed=2)]
        parts[0].source = "zeta"
        parts[1].source = "alpha"
        parts[2].source = "zeta"
        c = Dataset.concatenate(parts)
        # Append order with duplicates kept — never sorted/deduplicated,
        # so the tag order stays aligned with the row order.
        assert c.source == "zeta+alpha+zeta"

    def test_concatenate_source_skips_empty_tags(self):
        parts = [make_dataset(5), make_dataset(5, seed=1)]
        parts[0].source = ""
        parts[1].source = "only"
        assert Dataset.concatenate(parts).source == "only"

    def test_concatenate_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dataset.concatenate([make_dataset(5, servers=2), make_dataset(5, servers=3)])
        with pytest.raises(ValueError):
            Dataset.concatenate([])


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dataset(100), test_fraction=0.2)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self):
        ds = make_dataset(50)
        ds.X[:, 0, 0] = np.arange(50)  # make rows identifiable
        train, test = train_test_split(ds, test_fraction=0.2, seed=3)
        ids = sorted(train.X[:, 0, 0].tolist() + test.X[:, 0, 0].tolist())
        assert ids == list(range(50))

    def test_deterministic_per_seed(self):
        ds = make_dataset(50)
        _, t1 = train_test_split(ds, seed=7)
        _, t2 = train_test_split(ds, seed=7)
        assert np.array_equal(t1.X, t2.X)
        _, t3 = train_test_split(ds, seed=8)
        assert not np.array_equal(t1.X, t3.X)

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(1))


class TestNormalizer:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 4, 6))
        Z = Normalizer().fit_transform(X)
        flat = Z.reshape(-1, 6)
        assert np.allclose(flat.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(flat.std(axis=0), 1.0, atol=1e-9)

    def test_constant_features_safe(self):
        X = np.ones((10, 2, 3))
        Z = Normalizer().fit_transform(X)
        assert np.isfinite(Z).all()
        assert np.allclose(Z, 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Normalizer().transform(np.zeros((1, 1, 1)))

    def test_train_statistics_applied_to_test(self):
        rng = np.random.default_rng(0)
        train = rng.normal(10.0, 2.0, size=(100, 1, 1))
        norm = Normalizer().fit(train)
        test = np.array([[[10.0]]])
        assert norm.transform(test)[0, 0, 0] == pytest.approx(
            (10.0 - train.mean()) / train.std(), abs=0.05
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=4))
    def test_round_trip_property(self, n, feats):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2, feats)) * 10 + 3
        norm = Normalizer().fit(X)
        Z = norm.transform(X)
        back = Z * norm.std + norm.mean
        assert np.allclose(back, X)


class TestStreamingNormalizer:
    """fit_chunks must equal whole-array fit to the last bit."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("chunk_rows", [1, 7, 64])
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=333),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_bitwise_equal_to_fit(self, dtype, chunk_rows, n, seed):
        rng = np.random.default_rng(seed)
        X = (rng.normal(size=(n, 5)) * rng.uniform(0.01, 1e4)).astype(dtype)
        whole = Normalizer()
        whole.mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        whole.std = std
        chunked = Normalizer().fit_chunks(
            lambda: (X[i:i + chunk_rows] for i in range(0, n, chunk_rows)))
        assert np.array_equal(whole.mean, chunked.mean)
        assert np.array_equal(whole.std, chunked.std)

    @pytest.mark.parametrize("chunk_rows", [1, 7, 64])
    def test_3d_window_chunks(self, chunk_rows):
        X = np.random.default_rng(3).normal(size=(100, 4, 6))
        whole = Normalizer().fit(X)
        chunked = Normalizer().fit_chunks(
            lambda: (X[i:i + chunk_rows] for i in range(0, len(X),
                                                        chunk_rows)))
        assert np.array_equal(whole.mean, chunked.mean)
        assert np.array_equal(whole.std, chunked.std)

    def test_accepts_sequence(self):
        X = np.random.default_rng(1).normal(size=(20, 3))
        seq = [X[:9], X[9:]]
        chunked = Normalizer().fit_chunks(seq)
        whole = Normalizer().fit(X)
        assert np.array_equal(whole.mean, chunked.mean)
        assert np.array_equal(whole.std, chunked.std)

    def test_empty_chunks_between_data_ignored(self):
        X = np.random.default_rng(2).normal(size=(10, 3))
        chunked = Normalizer().fit_chunks([X[:0], X[:4], X[4:4], X[4:]])
        whole = Normalizer().fit(X)
        assert np.array_equal(whole.mean, chunked.mean)

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError, match="empty stream"):
            Normalizer().fit_chunks([np.empty((0, 3))])

    def test_non_reiterable_rejected(self):
        with pytest.raises(TypeError, match="re-iterable"):
            Normalizer().fit_chunks(iter([np.ones((2, 3))]))

    def test_changing_stream_rejected(self):
        grow = [np.ones((2, 3))]

        def chunks():
            yield from grow
            grow.append(np.ones((1, 3)))  # mutate between passes

        with pytest.raises(ValueError, match="changed between passes"):
            Normalizer().fit_chunks(chunks)

    def test_memmap_fit_never_densifies(self, tmp_path):
        X = np.random.default_rng(4).normal(size=(500, 2, 3))
        path = tmp_path / "X.npy"
        np.save(path, X)
        mapped = np.lib.format.open_memmap(path, mode="r")
        whole = Normalizer().fit(X)
        streamed = Normalizer().fit(mapped)
        assert np.array_equal(whole.mean, streamed.mean)
        assert np.array_equal(whole.std, streamed.std)


class TestContentDigest:
    """Pinned digests: any change here invalidates every cached model."""

    NAMES = ("a", "b", "c", "d")

    def _dataset(self, X):
        return Dataset(X, np.array([0, 1]), feature_names=self.NAMES)

    def test_pinned_value(self):
        X = np.arange(24, dtype=np.float64).reshape(2, 3, 4) / 7.0
        assert (self._dataset(X).content_digest()
                == "6d9776977ad27315e8d53d72a3f52677674ef86c")

    def test_order_independent(self):
        X = np.arange(24, dtype=np.float64).reshape(2, 3, 4) / 7.0
        assert (self._dataset(np.asfortranarray(X)).content_digest()
                == "6d9776977ad27315e8d53d72a3f52677674ef86c")

    def test_input_dtype_normalised(self):
        # Integer-valued data survives a float32 round trip exactly, so
        # the post-init cast to float64 yields the same digest.
        X = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        expected = "0c3c8d69dc879f070067b2a1b6c31a25a0fa55ed"
        assert self._dataset(X).content_digest() == expected
        assert (self._dataset(X.astype(np.float32)).content_digest()
                == expected)

    def test_empty_pinned_value(self):
        ds = Dataset(np.empty((0, 3, 4)), np.empty((0,), dtype=int),
                     feature_names=self.NAMES)
        assert (ds.content_digest()
                == "fc9e53b035d9105d8700ee630613c4131cd16d23")

    def test_memmap_digest_equals_in_memory(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(50, 3, 4))
        y = np.zeros(50, dtype=int)
        np.save(tmp_path / "X.npy", X)
        mapped = np.lib.format.open_memmap(tmp_path / "X.npy", mode="r")
        a = Dataset(X, y, feature_names=self.NAMES)
        b = Dataset(mapped, y, feature_names=self.NAMES)
        assert a.content_digest() == b.content_digest()

    def test_single_cell_changes_digest(self):
        X = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        d1 = self._dataset(X).content_digest()
        X2 = X.copy()
        X2[1, 2, 3] += 1e-9
        assert self._dataset(X2).content_digest() != d1
