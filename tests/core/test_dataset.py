"""Tests for dataset handling and normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset, Normalizer, train_test_split


def make_dataset(n=100, servers=3, feats=5, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        rng.normal(size=(n, servers, feats)),
        rng.integers(0, n_classes, size=n),
        feature_names=tuple(f"f{i}" for i in range(feats)),
        source="unit",
    )


class TestDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 5)), np.zeros(4), feature_names=("a",) * 5)
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2, 3)), np.zeros(5), feature_names=("a",) * 3)
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2, 3)), np.zeros(4), feature_names=("a",) * 2)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 1, 1)), np.array([0, -1]),
                    feature_names=("a",))

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1, 1)), np.array([0, 1, 1, 1]),
                     feature_names=("a",))
        assert ds.class_counts().tolist() == [1, 3]

    def test_concatenate(self):
        a, b = make_dataset(10), make_dataset(20, seed=1)
        c = Dataset.concatenate([a, b])
        assert len(c) == 30

    def test_concatenate_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dataset.concatenate([make_dataset(5, servers=2), make_dataset(5, servers=3)])
        with pytest.raises(ValueError):
            Dataset.concatenate([])


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dataset(100), test_fraction=0.2)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self):
        ds = make_dataset(50)
        ds.X[:, 0, 0] = np.arange(50)  # make rows identifiable
        train, test = train_test_split(ds, test_fraction=0.2, seed=3)
        ids = sorted(train.X[:, 0, 0].tolist() + test.X[:, 0, 0].tolist())
        assert ids == list(range(50))

    def test_deterministic_per_seed(self):
        ds = make_dataset(50)
        _, t1 = train_test_split(ds, seed=7)
        _, t2 = train_test_split(ds, seed=7)
        assert np.array_equal(t1.X, t2.X)
        _, t3 = train_test_split(ds, seed=8)
        assert not np.array_equal(t1.X, t3.X)

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(1))


class TestNormalizer:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 4, 6))
        Z = Normalizer().fit_transform(X)
        flat = Z.reshape(-1, 6)
        assert np.allclose(flat.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(flat.std(axis=0), 1.0, atol=1e-9)

    def test_constant_features_safe(self):
        X = np.ones((10, 2, 3))
        Z = Normalizer().fit_transform(X)
        assert np.isfinite(Z).all()
        assert np.allclose(Z, 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Normalizer().transform(np.zeros((1, 1, 1)))

    def test_train_statistics_applied_to_test(self):
        rng = np.random.default_rng(0)
        train = rng.normal(10.0, 2.0, size=(100, 1, 1))
        norm = Normalizer().fit(train)
        test = np.array([[[10.0]]])
        assert norm.transform(test)[0, 0, 0] == pytest.approx(
            (10.0 - train.mean()) / train.std(), abs=0.05
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=4))
    def test_round_trip_property(self, n, feats):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2, feats)) * 10 + 3
        norm = Normalizer().fit(X)
        Z = norm.transform(X)
        back = Z * norm.std + norm.mean
        assert np.allclose(back, X)
