"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import confusion_matrix, evaluate, render_confusion


def test_confusion_matrix_basic():
    y_true = np.array([0, 0, 1, 1, 1])
    y_pred = np.array([0, 1, 1, 1, 0])
    cm = confusion_matrix(y_true, y_pred)
    assert cm.tolist() == [[1, 1], [1, 2]]


def test_confusion_matrix_fixed_classes():
    cm = confusion_matrix([0, 0], [0, 0], n_classes=3)
    assert cm.shape == (3, 3)
    assert cm[0, 0] == 2


def test_confusion_matrix_validation():
    with pytest.raises(ValueError):
        confusion_matrix([0, 1], [0])
    with pytest.raises(ValueError):
        confusion_matrix([], [])
    with pytest.raises(ValueError):
        confusion_matrix([-1], [0])


def test_perfect_prediction_scores_one():
    y = np.array([0, 1, 2, 1, 0])
    report = evaluate(y, y)
    assert report.accuracy == 1.0
    assert np.allclose(report.f1, 1.0)
    assert report.macro_f1 == 1.0


def test_known_f1_values():
    # class 1: precision 2/3, recall 2/3 -> f1 = 2/3.
    y_true = np.array([1, 1, 1, 0, 0, 0])
    y_pred = np.array([1, 1, 0, 1, 0, 0])
    report = evaluate(y_true, y_pred)
    assert report.f1[1] == pytest.approx(2 / 3)
    assert report.precision[1] == pytest.approx(2 / 3)
    assert report.recall[1] == pytest.approx(2 / 3)


def test_absent_class_scores_zero_not_nan():
    report = evaluate([0, 0, 0], [0, 0, 0], n_classes=2)
    assert report.f1[1] == 0.0
    assert np.isfinite(report.f1).all()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=50))
def test_confusion_row_sums_are_true_counts(labels):
    y_true = np.array(labels)
    rng = np.random.default_rng(0)
    y_pred = rng.integers(0, 3, size=len(labels))
    cm = confusion_matrix(y_true, y_pred, n_classes=3)
    assert cm.sum() == len(labels)
    for c in range(3):
        assert cm[c].sum() == int((y_true == c).sum())


def test_accuracy_is_diagonal_fraction():
    y_true = np.array([0, 1, 0, 1])
    y_pred = np.array([0, 0, 0, 1])
    report = evaluate(y_true, y_pred)
    assert report.accuracy == pytest.approx(0.75)


def test_render_confusion_contains_counts_and_names():
    cm = confusion_matrix([0, 1, 1], [0, 1, 0])
    text = render_confusion(cm, ["<2x", ">=2x"])
    assert "<2x" in text and ">=2x" in text
    assert "1" in text


def test_render_validates_names():
    cm = confusion_matrix([0, 1], [0, 1])
    with pytest.raises(ValueError):
        render_confusion(cm, ["only-one"])


def test_summary_mentions_all_classes():
    report = evaluate([0, 1, 2], [0, 1, 2])
    text = report.summary()
    assert "class 0" in text and "class 2" in text
