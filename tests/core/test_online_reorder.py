"""StreamingPredictor reorder-buffer edge cases (satellite of the
prediction-service PR): duplicated window delivery, samples landing
after their window was already emitted, buffer eviction, and a
property-style check that shuffled delivery matches in-order delivery.

The harness bypasses the simulated monitor loop entirely: samples are
appended straight to ``monitor.samples`` in controlled orders while the
engine clock is stepped by hand, so delivery order is the *only*
variable between two runs.
"""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.online import StreamingPredictor
from repro.core.predictor import InterferencePredictor
from repro.experiments.runner import experiment_cluster
from repro.monitor.schema import SERVER_METRICS, vector_dim
from repro.monitor.server_monitor import ServerMonitor
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import Cluster

WINDOW = 0.5
INTERVAL = 0.125
PER_WINDOW = int(WINDOW / INTERVAL)  # samples per (window, server)


@pytest.fixture(scope="module")
def predictor():
    n_servers = len(Cluster(experiment_cluster()).servers)
    rng = np.random.default_rng(0)
    n = 100
    X = rng.normal(0, 0.5, size=(n, n_servers, vector_dim()))
    y = (X[:, :, 0].sum(axis=1) > 0).astype(int)
    ds = Dataset(X, y,
                 feature_names=tuple(f"f{i}" for i in range(vector_dim())))
    return InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=6, seed=0),
        restarts=1)


def make_stream(predictor, **kwargs):
    cluster = Cluster(experiment_cluster())
    monitor = ServerMonitor(cluster, sample_interval=INTERVAL)
    streaming = StreamingPredictor(
        predictor=predictor, cluster=cluster, monitor=monitor, job="job",
        window_size=WINDOW, **kwargs)
    streaming.start()
    return cluster, monitor, streaming


def window_block(cluster, w, si):
    """The PER_WINDOW samples of one (window, server), in sample order."""
    sid = cluster.servers[si]
    rows = []
    for k in range(PER_WINDOW):
        t = w * WINDOW + INTERVAL * (k + 1)
        metrics = {m: float((w * 37 + si * 11 + k * 5 + j * 3) % 17)
                   for j, m in enumerate(SERVER_METRICS)}
        rows.append((t, sid, metrics))
    return rows


def all_blocks(cluster, n_windows):
    return [(w, si, window_block(cluster, w, si))
            for w in range(n_windows)
            for si in range(len(cluster.servers))]


def run_in_order(predictor, n_windows, **kwargs):
    cluster, monitor, streaming = make_stream(predictor, **kwargs)
    for _, _, block in all_blocks(cluster, n_windows):
        monitor.samples.extend(block)
    reorder = kwargs.get("reorder_windows", 0)
    cluster.env.run(until=(n_windows + reorder) * WINDOW + 0.1)
    return cluster, monitor, streaming


def emitted(streaming, n_windows):
    preds = streaming.predictions[:n_windows]
    return [(p.window, p.severity, p.probabilities, p.completeness,
             p.stale) for p in preds]


def test_harness_baseline_is_complete(predictor):
    _, _, streaming = run_in_order(predictor, 4)
    assert [p.window for p in streaming.predictions[:4]] == [0, 1, 2, 3]
    for p in streaming.predictions[:4]:
        assert p.completeness == pytest.approx(1.0)
        assert not p.stale


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_shuffled_delivery_matches_in_order(predictor, seed):
    """Any delivery order the reorder allowance can absorb must produce
    bit-identical predictions to in-order delivery."""
    n_windows = 6
    baseline = emitted(run_in_order(predictor, n_windows)[2], n_windows)

    cluster, monitor, streaming = make_stream(predictor,
                                              reorder_windows=1)
    rng = np.random.default_rng(seed)
    # Each (window, server) block is delayed by up to one window — the
    # exact slack reorder_windows=1 grants — and blocks landing in the
    # same phase arrive in shuffled order.
    phases = {}
    for w, si, block in all_blocks(cluster, n_windows):
        phases.setdefault(w + int(rng.integers(0, 2)), []).append(block)
    for phase in range(n_windows + 2):
        arrivals = phases.get(phase, [])
        for i in rng.permutation(len(arrivals)):
            monitor.samples.extend(arrivals[i])
        cluster.env.run(until=(phase + 1) * WINDOW + 1e-6)
    cluster.env.run(until=(n_windows + 1) * WINDOW + 0.1)

    assert emitted(streaming, n_windows) == baseline


def test_duplicate_window_delivery_is_contained(predictor):
    """A window delivered twice perturbs only itself: every other
    window's prediction stays bit-identical, and nothing crashes."""
    n_windows = 4
    baseline = emitted(run_in_order(predictor, n_windows)[2], n_windows)

    cluster, monitor, streaming = make_stream(predictor)
    for w, si, block in all_blocks(cluster, n_windows):
        monitor.samples.extend(block)
        if w == 1:
            monitor.samples.extend(block)  # the duplicate delivery
    cluster.env.run(until=n_windows * WINDOW + 0.1)

    got = emitted(streaming, n_windows)
    assert [g for g in got if g[0] != 1] == \
        [b for b in baseline if b[0] != 1]
    dup = got[1]
    assert dup[0] == 1 and np.isfinite(dup[2]).all()
    assert dup[3] == pytest.approx(1.0)  # completeness stays capped


def test_samples_after_emission_are_counted_and_dropped(predictor):
    """Once a window was emitted (here: as a stale fallback), straggler
    samples for it are dropped and counted, never buffered."""
    n_windows = 4
    cluster, monitor, streaming = make_stream(predictor,
                                              min_completeness=0.6)
    for w, si, block in all_blocks(cluster, n_windows):
        if w != 2:  # window 2's telemetry is withheld entirely
            monitor.samples.extend(block)
    cluster.env.run(until=n_windows * WINDOW + 0.1)

    preds = streaming.predictions[:n_windows]
    assert preds[2].stale
    assert preds[2].completeness == 0.0
    assert preds[2].probabilities == preds[1].probabilities  # last good

    # The stragglers arrive long after window 2 was answered.
    before = REGISTRY.counter("online.late_samples").value
    n_servers = len(cluster.servers)
    for si in range(n_servers):
        monitor.samples.extend(window_block(cluster, 2, si))
    cluster.env.run(until=(n_windows + 1) * WINDOW + 0.1)
    assert REGISTRY.counter("online.late_samples").value - before == \
        n_servers * PER_WINDOW
    for sid in cluster.servers:
        assert (2, sid) not in streaming._window_samples
    # The emitted prediction for window 2 is untouched.
    assert streaming.predictions[2] is preds[2]


def test_emitted_windows_are_evicted(predictor):
    """Emitted windows release their buffers — the stream holds only
    windows that can still be predicted, whatever the delivery order."""
    n_windows = 5
    _, _, streaming = run_in_order(predictor, n_windows,
                                   reorder_windows=1)
    assert streaming._emitted_through >= n_windows - 1
    assert not streaming._window_records
    leftover = {w for (w, _) in streaming._window_samples}
    assert all(w > streaming._emitted_through for w in leftover)
