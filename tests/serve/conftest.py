"""Shared fixtures for the prediction-service tests.

The scorer is a real trained-and-deployed predictor (synthetic data,
tiny budget): every bit-identity assertion in this package compares the
service against the exact model a standalone client would run.
"""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor


def _synthetic_dataset(n=120, servers=4, feats=6, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(n, servers, feats))
    hot = rng.integers(0, servers, size=n)
    intensity = rng.uniform(0, 3 * n_classes, size=n)
    X[np.arange(n), hot, 0] += intensity
    y = np.minimum((intensity // 3).astype(int), n_classes - 1)
    return Dataset(X, y, feature_names=tuple(f"f{i}" for i in range(feats)))


@pytest.fixture(scope="session")
def scorer():
    predictor = InterferencePredictor.train(
        _synthetic_dataset(), BINARY_THRESHOLDS,
        config=TrainConfig(epochs=8, seed=0), restarts=1)
    return predictor.deploy()
