"""ServiceFaultPlan: determinism, validation, spec parsing."""

import pytest

from repro.faults import (
    SERVICE_FAULT_SPEC_FIELDS,
    ServiceFaultPlan,
    TenantProfile,
    parse_service_fault_spec,
)

CHAOS = ServiceFaultPlan(seed=3, flood_rate=0.3, stall_rate=0.2,
                         disconnect_rate=0.2, reorder_rate=0.3,
                         duplicate_rate=0.3, slow_batch_rate=0.1)


@pytest.mark.parametrize("kw", [
    dict(flood_rate=-0.1), dict(stall_rate=1.5), dict(disconnect_rate=2.0),
    dict(reorder_rate=-1.0), dict(duplicate_rate=1.01),
    dict(slow_batch_rate=-0.5), dict(flood_factor=0.0),
    dict(stall_windows=-1), dict(reorder_depth=-2),
    dict(slow_batch_seconds=-0.1),
])
def test_plan_validation(kw):
    with pytest.raises(ValueError):
        ServiceFaultPlan(**kw)


def test_profiles_and_orders_replay_bit_identically():
    tenants = [f"tenant{i:04d}" for i in range(64)]
    a = [CHAOS.tenant_profile(t, 8) for t in tenants]
    b = [ServiceFaultPlan(**CHAOS.to_dict()).tenant_profile(t, 8)
         for t in tenants]
    assert a == b
    for profile in a:
        assert CHAOS.delivery_order(profile, 8) == \
            CHAOS.delivery_order(profile, 8)
    assert [CHAOS.batch_stall(i) for i in range(50)] == \
        [CHAOS.batch_stall(i) for i in range(50)]
    # A different seed is a different regime.
    other = ServiceFaultPlan(**{**CHAOS.to_dict(), "seed": 4})
    assert [other.tenant_profile(t, 8) for t in tenants] != a
    assert other.digest() != CHAOS.digest()
    assert ServiceFaultPlan(**CHAOS.to_dict()).digest() == CHAOS.digest()


def test_chaos_actually_fires():
    profiles = [CHAOS.tenant_profile(f"tenant{i:04d}", 8)
                for i in range(128)]
    assert any(p.floods for p in profiles)
    assert any(p.stalls_at is not None for p in profiles)
    assert any(p.disconnects_at is not None for p in profiles)
    assert any(p.reorders for p in profiles)
    assert any(p.duplicates for p in profiles)
    assert any(not p.chaotic for p in profiles), \
        "some tenants must stay clean — they anchor the bit-identity check"
    # Interior-only fault points: window 0 always flows.
    for p in profiles:
        if p.stalls_at is not None:
            assert 1 <= p.stalls_at < 8
        if p.disconnects_at is not None:
            assert 1 <= p.disconnects_at < 8


def test_delivery_order_is_a_bounded_permutation():
    n = 32
    shuffled = 0
    for i in range(64):
        profile = CHAOS.tenant_profile(f"tenant{i:04d}", n)
        order = CHAOS.delivery_order(profile, n)
        assert sorted(order) == list(range(n))  # a permutation, always
        if not profile.reorders:
            assert order == list(range(n))
            continue
        if order != list(range(n)):
            shuffled += 1
        for pos, window in enumerate(order):
            assert abs(pos - window) <= CHAOS.reorder_depth
    assert shuffled, "reordering tenants must actually shuffle"


def test_fault_classification():
    assert not ServiceFaultPlan().has_tenant_faults
    assert not ServiceFaultPlan().has_service_faults
    assert ServiceFaultPlan(duplicate_rate=0.1).has_tenant_faults
    assert ServiceFaultPlan(slow_batch_rate=0.1).has_service_faults
    assert TenantProfile(tenant="x").chaotic is False
    assert TenantProfile(tenant="x", reorders=True).chaotic is True


def test_parse_spec_round_trip():
    plan = parse_service_fault_spec(
        "flood=0.2, stall=0.1, disconnect=0.05, reorder=0.2, "
        "reorder_depth=3, dup=0.15, slow=0.02, slow_s=0.03, "
        "flood_x=4, stall_w=2, seed=9")
    assert plan == ServiceFaultPlan(
        seed=9, flood_rate=0.2, flood_factor=4.0, stall_rate=0.1,
        stall_windows=2, disconnect_rate=0.05, reorder_rate=0.2,
        reorder_depth=3, duplicate_rate=0.15, slow_batch_rate=0.02,
        slow_batch_seconds=0.03)
    assert parse_service_fault_spec("") == ServiceFaultPlan()
    # Every advertised spec key maps to a real dataclass field.
    fields = set(ServiceFaultPlan.__dataclass_fields__)
    assert set(SERVICE_FAULT_SPEC_FIELDS.values()) == fields


def test_parse_spec_errors():
    with pytest.raises(ValueError, match="unknown chaos spec key"):
        parse_service_fault_spec("floods=0.2")
    with pytest.raises(ValueError, match="not a number"):
        parse_service_fault_spec("flood=lots")
    with pytest.raises(ValueError, match="key=value"):
        parse_service_fault_spec("flood")
    with pytest.raises(ValueError, match="flood_rate"):
        parse_service_fault_spec("flood=1.5")  # range check from the plan
