"""Unit tests for the service core: queues, ladder, breaker, drain."""

import asyncio

import numpy as np
import pytest

from repro.obs.metrics import REGISTRY
from repro.serve import (
    Backpressure,
    PredictionService,
    Rejected,
    ServeConfig,
)


def vectors(scorer, n, seed=1):
    rng = np.random.default_rng(seed)
    return 10.0 * rng.standard_normal((n, scorer.n_servers,
                                       scorer.n_features))


def expected_bits(scorer, vector):
    """What a private (batch-of-one) scorer would answer, exactly."""
    return tuple(float(p) for p in scorer.predict_proba(vector[None])[0])


class StallFirst:
    """Duck-typed fault plan stalling only the first ``n`` batches."""

    def __init__(self, n, seconds):
        self.n = n
        self.seconds = seconds

    def batch_stall(self, batch_index):
        return self.seconds if batch_index < self.n else 0.0


@pytest.mark.parametrize("kw", [
    dict(max_tenants=0), dict(queue_depth=0), dict(reorder_depth=-1),
    dict(max_batch=0), dict(batch_interval=0.0), dict(shed_backlog=0),
    dict(deadline=0.0), dict(breaker_threshold=0),
    dict(breaker_cooldown=0.0), dict(drain_timeout=-1.0),
])
def test_config_validation(kw):
    with pytest.raises(ValueError):
        ServeConfig(**kw)


def test_lifecycle_guards(scorer):
    service = PredictionService(scorer)
    with pytest.raises(Rejected):
        service.connect("early")  # not accepting before start()

    async def run():
        await service.start()
        with pytest.raises(RuntimeError):
            await service.start()
        await service.stop()
        with pytest.raises(RuntimeError):
            await service.stop()

    asyncio.run(run())


def test_admission_control(scorer):
    async def run():
        service = PredictionService(scorer, ServeConfig(max_tenants=1))
        await service.start()
        service.connect("a")
        with pytest.raises(Rejected):
            service.connect("b")  # cap reached
        with pytest.raises(ValueError):
            service.connect("a")  # duplicate name
        await service.stop()
        with pytest.raises(Rejected):
            service.connect("c")  # draining / stopped
        return service

    service = asyncio.run(run())
    assert service.rejected_tenants == 2


def test_sequential_stream_bit_identical(scorer):
    """The contract behind the whole service: sharing the batcher must
    not change a single bit versus a private scorer."""
    W = vectors(scorer, 6)

    async def run():
        service = PredictionService(scorer)
        await service.start()
        session = service.connect("t0")
        results = [await session.submit(w, W[w]) for w in range(len(W))]
        await service.stop()
        return results

    results = asyncio.run(run())
    for w, res in enumerate(results):
        assert res.status == "fresh"
        want = expected_bits(scorer, W[w])
        assert res.probabilities == want
        assert res.severity == int(np.argmax(want))
        assert res.latency >= 0.0


def test_cross_tenant_batch_bit_identity(scorer):
    """Tenants scored through one fused batch get exactly the bits their
    own vector deserves — batchmates are invisible."""
    n = 16
    W = vectors(scorer, n, seed=2)

    async def run():
        service = PredictionService(scorer, ServeConfig(batch_interval=0.05))
        await service.start()
        sessions = [service.connect(f"t{i}") for i in range(n)]
        tasks = [asyncio.ensure_future(s.submit(0, W[i]))
                 for i, s in enumerate(sessions)]
        results = await asyncio.gather(*tasks)
        batches = service.batches
        await service.stop()
        return results, batches

    results, batches = asyncio.run(run())
    assert batches == 1  # they all landed in one fused forward pass
    for i, res in enumerate(results):
        assert res.status == "fresh"
        assert res.probabilities == expected_bits(scorer, W[i])


def test_backpressure_when_queue_full(scorer):
    vec = np.zeros((scorer.n_servers, scorer.n_features))

    async def run():
        service = PredictionService(scorer, ServeConfig(
            queue_depth=2, batch_interval=5.0, drain_timeout=0.1))
        await service.start()
        session = service.connect("t0")
        tasks = [asyncio.ensure_future(session.submit(w, vec))
                 for w in (0, 1)]
        await asyncio.sleep(0)
        with pytest.raises(Backpressure):
            await session.submit(2, vec)
        drain = await service.stop()
        return drain, await asyncio.gather(*tasks)

    drain, queued = asyncio.run(run())
    # The refused window was never accepted; the queued ones were shed
    # when the (deliberately tiny) drain budget expired.
    assert [r.status for r in queued] == ["shed", "shed"]
    assert drain == {"drained": 0, "shed": 2}


def test_global_overload_sheds(scorer):
    vec = np.zeros((scorer.n_servers, scorer.n_features))

    async def run():
        service = PredictionService(scorer, ServeConfig(
            shed_backlog=1, batch_interval=5.0, drain_timeout=0.1))
        await service.start()
        a = service.connect("a")
        b = service.connect("b")
        first = asyncio.ensure_future(a.submit(0, vec))
        await asyncio.sleep(0)
        shed_before = REGISTRY.counter("serve.load_shed").value
        res = await b.submit(0, vec)
        shed_after = REGISTRY.counter("serve.load_shed").value
        await service.stop()
        await first
        return res, shed_after - shed_before

    res, shed_delta = asyncio.run(run())
    assert res.status == "shed"
    assert res.severity is None and res.probabilities is None
    assert shed_delta == 1


def test_deadline_miss_degrades_to_masked(scorer):
    vec = np.zeros((scorer.n_servers, scorer.n_features))

    async def run():
        service = PredictionService(scorer, ServeConfig(
            deadline=0.01, batch_interval=0.05))
        await service.start()
        session = service.connect("t0")
        before = REGISTRY.counter("serve.deadline_misses").value
        res = await session.submit(0, vec)
        delta = REGISTRY.counter("serve.deadline_misses").value - before
        await service.stop()
        return res, delta

    res, misses = asyncio.run(run())
    # First window, so nothing good to repeat: masked, not stale.
    assert res.status == "masked"
    assert res.probabilities is None
    assert misses == 1


def test_breaker_trips_then_probe_recovers(scorer):
    W = vectors(scorer, 7, seed=3)

    async def run():
        config = ServeConfig(deadline=0.08, batch_interval=0.005,
                             max_batch=1, breaker_threshold=2,
                             breaker_cooldown=0.25)
        service = PredictionService(scorer, config,
                                    fault_plan=StallFirst(1, 0.3))
        await service.start()
        session = service.connect("t0")
        burst = [asyncio.ensure_future(session.submit(w, W[w]))
                 for w in range(4)]
        results = list(await asyncio.gather(*burst))
        while_open = await session.submit(4, W[4])
        await asyncio.sleep(config.breaker_cooldown + 0.05)
        probe = await session.submit(5, W[5])
        after = await session.submit(6, W[6])
        await service.stop()
        return results, while_open, probe, after, session

    results, while_open, probe, after, session = asyncio.run(run())
    # w0 scored through the stalled batch; w1-w3 aged past the deadline
    # meanwhile and degraded to stale (repeating w0's probabilities).
    assert [r.status for r in results] == ["fresh", "stale", "stale",
                                           "stale"]
    assert results[1].probabilities == results[0].probabilities
    # Two consecutive stales tripped the breaker: w4 fast-failed.
    assert session.breaker_trips == 1
    assert while_open.status == "stale"
    # After the cooldown the half-open probe scored fresh and closed it.
    assert probe.status == "fresh"
    assert probe.probabilities == expected_bits(scorer, W[5])
    assert after.status == "fresh"
    assert session.breaker_open_until is None
    assert not session.healthy  # the stales are on its record


def test_failed_probe_reopens_breaker(scorer):
    vec = np.zeros((scorer.n_servers, scorer.n_features))

    async def run():
        service = PredictionService(scorer, ServeConfig(
            deadline=0.01, batch_interval=0.05, max_batch=1,
            breaker_threshold=1, breaker_cooldown=0.1))
        await service.start()
        session = service.connect("t0")
        first = await session.submit(0, vec)   # deadline miss -> masked
        await asyncio.sleep(0.15)              # past cooldown: half-open
        probe = await session.submit(1, vec)   # probe also misses
        during = await session.submit(2, vec)  # breaker re-opened
        await service.stop()
        return first, probe, during, session

    first, probe, during, session = asyncio.run(run())
    assert first.status == "masked"
    assert probe.status == "masked"
    assert during.status == "masked"
    assert session.breaker_trips == 2


def test_duplicate_window_repeats_without_rescoring(scorer):
    W = vectors(scorer, 1, seed=4)

    async def run():
        service = PredictionService(scorer)
        await service.start()
        session = service.connect("t0")
        first = await session.submit(0, W[0])
        batches = service.batches
        # Same window, different payload: the first answer stands.
        again = await session.submit(0, np.zeros_like(W[0]))
        await service.stop()
        return first, again, batches, service.batches

    first, again, batches_before, batches_after = asyncio.run(run())
    assert first.status == "fresh"
    assert again.status == "duplicate"
    assert again.probabilities == first.probabilities
    assert batches_after == batches_before  # nothing was rescored


def test_out_of_order_windows_resolve_in_order(scorer):
    W = vectors(scorer, 5, seed=5)
    order = [1, 0, 3, 4, 2]

    async def run():
        service = PredictionService(scorer)
        await service.start()
        session = service.connect("t0")
        tasks = [asyncio.ensure_future(session.submit(w, W[w]))
                 for w in order]
        results = await asyncio.gather(*tasks)
        await service.stop()
        return sorted(results, key=lambda r: r.window)

    results = asyncio.run(run())
    # The reorder buffer absorbed the shuffle: every window scored fresh
    # with the bits an in-order stream would have produced.
    for w, res in enumerate(results):
        assert res.window == w
        assert res.status == "fresh"
        assert res.probabilities == expected_bits(scorer, W[w])


def test_reorder_overflow_abandons_gap(scorer):
    W = vectors(scorer, 8, seed=6)

    async def run():
        service = PredictionService(scorer, ServeConfig(reorder_depth=2))
        await service.start()
        session = service.connect("t0")
        before = REGISTRY.counter("serve.abandoned_windows").value
        # Windows 0-4 never arrive; buffering 5, 6, 7 overflows the
        # depth-2 buffer and the gap is abandoned.
        tasks = [asyncio.ensure_future(session.submit(w, W[w]))
                 for w in (5, 6, 7)]
        results = await asyncio.gather(*tasks)
        gap = REGISTRY.counter("serve.abandoned_windows").value - before
        late = await session.submit(2, W[2])   # skipped window: too late
        dup = await session.submit(2, W[2])    # and now merely duplicate
        await service.stop()
        return results, gap, late, dup

    results, gap, late, dup = asyncio.run(run())
    assert gap == 5  # windows 0..4
    assert [r.status for r in results] == ["fresh"] * 3
    assert late.status == "masked"
    assert dup.status == "duplicate"


def test_zero_reorder_depth_skips_straight_ahead(scorer):
    W = vectors(scorer, 4, seed=7)

    async def run():
        service = PredictionService(scorer, ServeConfig(reorder_depth=0))
        await service.start()
        session = service.connect("t0")
        res = await session.submit(3, W[3])
        await service.stop()
        return res

    res = asyncio.run(run())
    # No buffer to wait in: the gap (0..2) is abandoned immediately and
    # window 3 scores fresh.
    assert res.status == "fresh"
    assert res.probabilities == expected_bits(scorer, W[3])


def test_graceful_drain_scores_queued_work(scorer):
    W = vectors(scorer, 5, seed=8)

    async def run():
        service = PredictionService(scorer, ServeConfig(
            batch_interval=0.01, drain_timeout=5.0))
        await service.start()
        session = service.connect("t0")
        tasks = [asyncio.ensure_future(session.submit(w, W[w]))
                 for w in range(5)]
        await asyncio.sleep(0)
        drain = await service.stop()
        return drain, await asyncio.gather(*tasks)

    drain, results = asyncio.run(run())
    # Work queued before the drain is scored, not dumped.
    assert drain == {"drained": 5, "shed": 0}
    assert [r.status for r in results] == ["fresh"] * 5
    for w, res in enumerate(results):
        assert res.probabilities == expected_bits(scorer, W[w])
