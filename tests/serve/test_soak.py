"""The chaos soak: accounting, determinism, bit-identity, reporting.

This is the acceptance harness for the service: hundreds of concurrent
tenants — many misbehaving — must run to completion with zero unhandled
exceptions, every tenant in an accounted terminal state, and the
fault-free tenants receiving exactly the bits a private scorer would
have produced.
"""

import numpy as np
import pytest

from repro.faults import ServiceFaultPlan
from repro.obs.metrics import REGISTRY
from repro.obs.report import service_health
from repro.serve import ServeConfig, run_soak, tenant_windows
from repro.serve.tenants import TERMINAL_STATES

CHAOS = ServiceFaultPlan(seed=3, flood_rate=0.2, stall_rate=0.1,
                         disconnect_rate=0.1, reorder_rate=0.2,
                         duplicate_rate=0.2, slow_batch_rate=0.05,
                         slow_batch_seconds=0.02)


def outcome_key(outcome):
    return (outcome.tenant, outcome.terminal, outcome.completed,
            [(r.window, r.status, r.probabilities)
             for r in outcome.results])


def test_run_soak_validates_arguments(scorer):
    with pytest.raises(ValueError):
        run_soak(scorer, n_tenants=0)
    with pytest.raises(ValueError):
        run_soak(scorer, n_tenants=1, n_windows=0)
    with pytest.raises(ValueError):
        run_soak(scorer, n_tenants=1, think=-0.1)


def test_clean_soak_all_served_and_bit_identical(scorer):
    REGISTRY.reset()
    report = run_soak(scorer, n_tenants=16, n_windows=5, seed=11)
    assert report.errors == []
    assert report.terminal_counts == {"served": 16, "degraded": 0,
                                      "shed": 0, "error": 0}
    assert report.status_totals == {"fresh": 16 * 5}
    assert report.windows_served == 80
    assert report.throughput > 0
    for outcome in report.outcomes:
        W = tenant_windows(11, outcome.tenant, 5, scorer.n_servers,
                           scorer.n_features)
        assert [r.window for r in outcome.results] == list(range(5))
        for w, res in enumerate(outcome.results):
            want = tuple(float(p)
                         for p in scorer.predict_proba(W[w:w + 1])[0])
            assert res.probabilities == want


def test_chaos_soak_256_tenants_fully_accounted(scorer):
    """The headline acceptance criterion: 256 tenants under floods,
    stalls, disconnects, reordering and duplicates — zero unhandled
    exceptions, total terminal-state accounting, and bit-identical
    answers for every fault-free tenant."""
    REGISTRY.reset()
    n, windows = 256, 8
    report = run_soak(scorer, n_tenants=n, n_windows=windows, plan=CHAOS,
                      seed=7)
    assert report.errors == []
    counts = report.terminal_counts
    assert sum(counts.values()) == n
    assert counts["error"] == 0
    for outcome in report.outcomes:
        assert outcome.terminal in TERMINAL_STATES
    assert report.plan_digest == CHAOS.digest()

    # The chaos really happened: the population is not all clean.
    chaotic = [o for o in report.outcomes if o.profile.chaotic]
    clean = [o for o in report.outcomes if not o.profile.chaotic]
    assert chaotic and clean
    disconnected = [o for o in report.outcomes if not o.completed]
    assert disconnected, "disconnect_rate=0.1 must fell some tenants"

    # Fault-free tenants: full in-order stream, all fresh, exact bits.
    for outcome in clean:
        assert outcome.terminal == "served"
        assert outcome.completed
        assert [r.window for r in outcome.results] == list(range(windows))
        assert all(r.status == "fresh" for r in outcome.results)
        W = tenant_windows(7, outcome.tenant, windows, scorer.n_servers,
                           scorer.n_features)
        for w, res in enumerate(outcome.results):
            want = tuple(float(p)
                         for p in scorer.predict_proba(W[w:w + 1])[0])
            assert res.probabilities == want

    # Bounded-memory invariant: after the drain nothing is left queued.
    snapshot = REGISTRY.snapshot()
    assert snapshot["serve.backlog"]["value"] == 0
    # Every submission either resolved to exactly one terminal status or
    # was refused outright with backpressure (and never queued).
    resolved = sum(snapshot[f"serve.{s}"]["value"]
                   for s in ("fresh", "stale", "masked", "shed",
                             "duplicate"))
    backpressure = snapshot.get("serve.backpressure", {}).get("value", 0)
    assert resolved + backpressure == snapshot["serve.submitted"]["value"]


def test_chaos_soak_replays_bit_identically(scorer):
    """Same plan + same seed => the same soak, result for result."""
    REGISTRY.reset()
    first = run_soak(scorer, n_tenants=48, n_windows=6, plan=CHAOS, seed=5)
    REGISTRY.reset()
    second = run_soak(scorer, n_tenants=48, n_windows=6, plan=CHAOS,
                      seed=5)
    assert first.errors == second.errors == []
    assert first.terminal_counts == second.terminal_counts
    assert [outcome_key(o) for o in first.outcomes] == \
        [outcome_key(o) for o in second.outcomes]


def test_soak_respects_admission_cap(scorer):
    REGISTRY.reset()
    report = run_soak(scorer, n_tenants=8, n_windows=3,
                      config=ServeConfig(max_tenants=5), seed=1)
    assert report.errors == []
    counts = report.terminal_counts
    assert counts["shed"] == 3  # the three tenants past the cap
    assert counts["served"] == 5
    rejected = [o for o in report.outcomes if not o.admitted]
    assert len(rejected) == 3
    assert all(o.results == [] for o in rejected)


def test_soak_report_to_dict_and_service_health(scorer):
    REGISTRY.reset()
    report = run_soak(scorer, n_tenants=12, n_windows=4, plan=CHAOS,
                      seed=2)
    doc = report.to_dict()
    assert doc["n_tenants"] == 12
    assert doc["windows_resolved"] == report.windows_served
    assert doc["errors"] == []
    assert set(doc["terminal"]) == set(TERMINAL_STATES)
    assert doc["latency_p50_seconds"] <= doc["latency_p99_seconds"]

    lines = service_health(REGISTRY.snapshot())
    text = "\n".join(lines)
    assert "windows submitted" in text
    assert "ladder:" in text
    assert "fresh" in text
    assert "tenants:" in text and "admitted" in text
    assert "batches:" in text
    assert "latency:" in text


def test_service_health_silent_without_serve_metrics():
    assert service_health({}) == []
    assert service_health({"engine.events": {"value": 3}}) == []
