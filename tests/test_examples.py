"""Smoke tests: every example script imports and the cheapest ones run."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(ALL_EXAMPLES) >= 4
    assert "quickstart" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "mean slowdown" in out
