"""Tests for DXT trace serialisation."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.records import IORecord, OpType, ServerId, ServerKind
from repro.monitor.darshan import dumps_dxt, loads_dxt, read_dxt, write_dxt


def sample_records():
    return [
        IORecord("jobA", 0, 1, OpType.READ, "/f", 0, 4096, 0.5, 0.75,
                 (ServerId(ServerKind.OST, 0), ServerId(ServerKind.OST, 3))),
        IORecord("jobA", 1, 1, OpType.STAT, "/dir/file name", 0, 0, 1.0, 1.001,
                 (ServerId(ServerKind.MDT, 0),)),
        IORecord("jobB", 0, 2, OpType.WRITE, "/g", 1 << 30, 1 << 20, 2.0, 2.5,
                 (ServerId(ServerKind.OST, 5),)),
    ]


def test_round_trip():
    text = dumps_dxt(sample_records())
    back = loads_dxt(text)
    assert back == sample_records()


def test_header_required():
    with pytest.raises(ValueError, match="header"):
        loads_dxt("jobA\t0\t1\tread\t/f\t0\t1\t0.0\t1.0\tost0\n")


def test_float_precision_preserved():
    rec = IORecord("j", 0, 1, OpType.READ, "/f", 0, 1,
                   0.1234567890123456, 0.9876543210987654,
                   (ServerId(ServerKind.OST, 0),))
    back = loads_dxt(dumps_dxt([rec]))[0]
    assert back.start == rec.start
    assert back.end == rec.end


def test_comments_and_blank_lines_ignored():
    text = dumps_dxt(sample_records())
    text += "\n# trailing comment\n\n"
    assert len(loads_dxt(text)) == 3


def test_bad_field_count_rejected():
    text = "# quanterference-dxt v1\nonly\tthree\tfields\n"
    with pytest.raises(ValueError, match="10 fields"):
        loads_dxt(text)


def test_bad_server_rejected():
    text = ("# quanterference-dxt v1\n"
            "j\t0\t1\tread\t/f\t0\t1\t0.0\t1.0\tnotaserver\n")
    with pytest.raises(ValueError, match="server"):
        loads_dxt(text)


def test_path_with_tab_rejected_on_write():
    rec = IORecord("j", 0, 1, OpType.READ, "/has\ttab", 0, 1, 0.0, 1.0,
                   (ServerId(ServerKind.OST, 0),))
    with pytest.raises(ValueError, match="separator"):
        dumps_dxt([rec])


def test_write_returns_count_and_file_api():
    buf = io.StringIO()
    assert write_dxt(sample_records(), buf) == 3
    buf.seek(0)
    assert len(read_dxt(buf)) == 3


@settings(max_examples=50, deadline=None)
@given(
    rank=st.integers(min_value=0, max_value=1024),
    op=st.sampled_from(list(OpType)),
    offset=st.integers(min_value=0, max_value=2**50),
    size=st.integers(min_value=0, max_value=2**40),
    start=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    dur=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    ost=st.integers(min_value=0, max_value=100),
)
def test_round_trip_property(rank, op, offset, size, start, dur, ost):
    rec = IORecord("job", rank, 1, op, "/p", offset, size, start, start + dur,
                   (ServerId(ServerKind.OST, ost),))
    assert loads_dxt(dumps_dxt([rec])) == [rec]
