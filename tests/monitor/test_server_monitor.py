"""Tests for the server-side monitor and vector assembly."""

import numpy as np
import pytest

from repro.common.records import ServerId, ServerKind
from repro.common.units import MIB
from repro.monitor.aggregator import MonitoredRun, assemble_vectors
from repro.monitor.schema import (
    CLIENT_FEATURES,
    SERVER_FEATURES,
    SERVER_METRICS,
    VECTOR_FEATURES,
    vector_dim,
)
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload


def run_monitored(workload, sample_interval=0.25):
    cluster = Cluster()
    monitor = ServerMonitor(cluster, sample_interval=sample_interval)
    monitor.start()
    handle = launch(cluster, workload, [0, 1], 1)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 1.0)  # one trailing sample period
    return cluster, monitor


def test_schema_consistency():
    assert vector_dim() == len(CLIENT_FEATURES) + len(SERVER_FEATURES)
    assert len(SERVER_FEATURES) == len(SERVER_METRICS) * 3
    assert VECTOR_FEATURES[: len(CLIENT_FEATURES)] == CLIENT_FEATURES


def test_monitor_collects_samples_for_all_servers():
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=4 * MIB))
    cluster, monitor = run_monitored(w)
    sampled_servers = {s for _, s, _ in monitor.samples}
    assert sampled_servers == set(cluster.servers)


def test_write_workload_moves_sector_counters():
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=8 * MIB))
    cluster, monitor = run_monitored(w)
    total_written = sum(
        m["sectors_written"] for _, s, m in monitor.samples
        if s.kind is ServerKind.OST
    )
    assert total_written >= 16 * MIB / 512 * 0.9  # most data flushed


def test_deltas_not_cumulative():
    """Per-sample metrics are interval deltas, so their sum matches the
    final cumulative counter (not a sum of cumulative values)."""
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=1,
                              bytes_per_rank=4 * MIB))
    cluster, monitor = run_monitored(w)
    per_server_sum = {}
    for _, s, m in monitor.samples:
        per_server_sum[s] = per_server_sum.get(s, 0.0) + m["ios_completed"]
    for s in cluster.servers:
        counters = cluster.server_counters(s)
        final = counters["reads_completed"] + counters["writes_completed"]
        assert per_server_sum.get(s, 0.0) == pytest.approx(final, abs=1.0)


def test_window_features_have_sum_mean_std():
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=1,
                              bytes_per_rank=2 * MIB))
    _, monitor = run_monitored(w)
    feats = monitor.window_features(window_size=1.0)
    assert feats
    row = next(iter(feats.values()))
    assert set(row) == set(SERVER_FEATURES)
    # sum >= mean for non-negative series with >= 1 sample.
    for metric in SERVER_METRICS:
        assert row[f"{metric}_sum"] >= row[f"{metric}_mean"] - 1e-9


def test_monitor_cannot_start_twice():
    cluster = Cluster()
    monitor = ServerMonitor(cluster)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_invalid_sample_interval():
    with pytest.raises(ValueError):
        ServerMonitor(Cluster(), sample_interval=0.0)


class TestAssembleVectors:
    def make_run(self):
        w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                                  bytes_per_rank=8 * MIB))
        cluster, monitor = run_monitored(w)
        return MonitoredRun(
            job=w.name,
            records=cluster.collector.records,
            server_samples=monitor.samples,
            servers=cluster.servers,
            duration=cluster.env.now,
        )

    def test_shape_and_layout(self):
        run = self.make_run()
        X, windows = assemble_vectors(run, window_size=1.0)
        assert X.shape[1] == len(run.servers)
        assert X.shape[2] == vector_dim()
        assert len(windows) == X.shape[0]

    def test_client_features_present_for_active_windows(self):
        run = self.make_run()
        X, _ = assemble_vectors(run, window_size=1.0)
        n_write_idx = CLIENT_FEATURES.index("n_write")
        assert X[:, :, n_write_idx].sum() > 0

    def test_server_features_present(self):
        run = self.make_run()
        X, _ = assemble_vectors(run, window_size=1.0)
        base = len(CLIENT_FEATURES)
        sw_idx = base + SERVER_FEATURES.index("sectors_written_sum")
        assert X[:, :, sw_idx].sum() > 0

    def test_values_are_finite(self):
        run = self.make_run()
        X, _ = assemble_vectors(run, window_size=0.5)
        assert np.isfinite(X).all()
