"""Tests for monitored-run persistence."""

import numpy as np
import pytest

from repro.common.units import MIB
from repro.monitor.aggregator import MonitoredRun, assemble_vectors
from repro.monitor.persist import load_run, save_run
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload


@pytest.fixture(scope="module")
def sample_run():
    cluster = Cluster()
    monitor = ServerMonitor(cluster, sample_interval=0.25)
    monitor.start()
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=4 * MIB))
    handle = launch(cluster, w, [0, 1], seed=2)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 0.5)
    return MonitoredRun(
        job=w.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
        metadata={"note": "unit-test run", "instances": 0},
    )


def test_round_trip_preserves_everything(tmp_path, sample_run):
    save_run(sample_run, tmp_path / "run")
    back = load_run(tmp_path / "run")
    assert back.job == sample_run.job
    assert back.duration == pytest.approx(sample_run.duration)
    assert back.servers == sample_run.servers
    assert back.records == sample_run.records
    assert back.metadata["note"] == "unit-test run"
    assert len(back.server_samples) == len(sample_run.server_samples)
    t0, s0, m0 = sample_run.server_samples[0]
    t1, s1, m1 = back.server_samples[0]
    assert (t0, s0) == (t1, s1)
    assert m0 == pytest.approx(m1)


def test_vectors_identical_after_round_trip(tmp_path, sample_run):
    """Feature assembly from a reloaded run is bit-identical."""
    save_run(sample_run, tmp_path / "run2")
    back = load_run(tmp_path / "run2")
    X1, w1 = assemble_vectors(sample_run, 0.5, 0.25)
    X2, w2 = assemble_vectors(back, 0.5, 0.25)
    assert w1 == w2
    assert np.array_equal(X1, X2)


def test_files_written(tmp_path, sample_run):
    out = save_run(sample_run, tmp_path / "run3")
    assert (out / "records.dxt").exists()
    assert (out / "samples.npz").exists()
    assert (out / "meta.json").exists()


def test_round_trip_with_multiple_servers_and_empty_windows(tmp_path):
    """A run whose monitor sampled every server but whose trace never
    touched some of them (idle windows everywhere) must survive the
    round trip: all seven servers, samples full of zero-delta rows, and
    windows with no client records at all."""
    cluster = Cluster()
    monitor = ServerMonitor(cluster, sample_interval=0.25)
    monitor.start()
    # Let the monitor tick with zero I/O: every window is empty.
    cluster.env.run(until=1.0)
    run = MonitoredRun(
        job="idle-job",
        records=[],
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
        metadata={},
    )
    assert len(run.servers) == 7  # 6 OSTs + the MDT
    save_run(run, tmp_path / "idle")
    back = load_run(tmp_path / "idle")
    assert back.records == []
    assert back.servers == run.servers
    assert len(back.server_samples) == len(run.server_samples)
    sampled_servers = {s for _, s, _ in back.server_samples}
    assert sampled_servers == set(run.servers)
    for (t0, s0, m0), (t1, s1, m1) in zip(run.server_samples,
                                          back.server_samples):
        assert (t0, s0) == (t1, s1)
        assert m0 == pytest.approx(m1)


def test_round_trip_of_fully_empty_run(tmp_path):
    """No records *and* no samples: the degenerate but legal corner."""
    cluster = Cluster()
    run = MonitoredRun(job="nothing", records=[], server_samples=[],
                       servers=cluster.servers, duration=0.0, metadata={})
    save_run(run, tmp_path / "empty")
    back = load_run(tmp_path / "empty")
    assert back.job == "nothing"
    assert back.records == []
    assert back.server_samples == []
    assert back.servers == run.servers
    assert back.duration == 0.0


def test_schema_mismatch_detected(tmp_path, sample_run):
    save_run(sample_run, tmp_path / "run4")
    data = dict(np.load(tmp_path / "run4" / "samples.npz"))
    data["metric_names"] = np.array(["bogus"])
    np.savez_compressed(tmp_path / "run4" / "samples.npz", **data)
    with pytest.raises(ValueError, match="schema"):
        load_run(tmp_path / "run4")


def test_paired_runs_round_trip(tmp_path, sample_run):
    from repro.experiments.runner import PairedRuns
    from repro.monitor.persist import load_paired_runs, save_paired_runs

    pair = PairedRuns(baseline=sample_run, interfered=sample_run)
    save_paired_runs(pair, tmp_path / "pair")
    assert (tmp_path / "pair" / "baseline" / "records.dxt").exists()
    assert (tmp_path / "pair" / "interfered" / "records.dxt").exists()
    back = load_paired_runs(tmp_path / "pair")
    assert back.baseline.records == sample_run.records
    assert back.interfered.job == sample_run.job
    assert back.baseline.duration == pytest.approx(sample_run.duration)
