"""Tests for the client-side window aggregator."""

import pytest

from repro.common.records import IORecord, OpType, ServerId, ServerKind
from repro.monitor.client_monitor import ClientWindowAggregator
from repro.monitor.schema import CLIENT_FEATURES

OST0 = ServerId(ServerKind.OST, 0)
OST1 = ServerId(ServerKind.OST, 1)
MDT = ServerId(ServerKind.MDT, 0)


def rec(op, start, end, size=0, servers=(OST0,), job="app", rank=0, op_id=1):
    return IORecord(job=job, rank=rank, op_id=op_id, op=op, path="/f",
                    offset=0, size=size, start=start, end=end,
                    servers=tuple(servers))


def test_counts_and_bytes_by_family():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [
        rec(OpType.READ, 0.1, 0.2, size=1000),
        rec(OpType.WRITE, 0.2, 0.3, size=2000),
        rec(OpType.STAT, 0.3, 0.4, servers=(MDT,)),
    ]
    out = agg.aggregate(records, "app")
    ost = out[(0, OST0)]
    assert ost["n_read"] == 1
    assert ost["n_write"] == 1
    assert ost["n_meta"] == 0
    assert ost["bytes_read"] == 1000
    assert ost["bytes_written"] == 2000
    assert ost["bytes_total"] == 3000
    mdt = out[(0, MDT)]
    assert mdt["n_meta"] == 1
    assert mdt["bytes_total"] == 0


def test_ops_assigned_to_completion_window():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [rec(OpType.READ, 0.9, 1.1, size=100)]
    out = agg.aggregate(records, "app")
    assert (1, OST0) in out
    assert (0, OST0) not in out


def test_bytes_split_across_stripe_targets():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [rec(OpType.WRITE, 0.0, 0.5, size=4000, servers=(OST0, OST1))]
    out = agg.aggregate(records, "app")
    assert out[(0, OST0)]["bytes_written"] == pytest.approx(2000)
    assert out[(0, OST1)]["bytes_written"] == pytest.approx(2000)
    assert out[(0, OST0)]["n_write"] == pytest.approx(0.5)


def test_io_time_split_like_bytes():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [rec(OpType.READ, 0.0, 0.8, size=100, servers=(OST0, OST1))]
    out = agg.aggregate(records, "app")
    assert out[(0, OST0)]["io_time"] == pytest.approx(0.4)


def test_other_jobs_filtered_out():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [
        rec(OpType.READ, 0.0, 0.1, size=100, job="app"),
        rec(OpType.READ, 0.0, 0.1, size=999, job="noise"),
    ]
    out = agg.aggregate(records, "app")
    assert out[(0, OST0)]["bytes_read"] == 100


def test_throughput_and_iops_derived():
    agg = ClientWindowAggregator(window_size=2.0)
    records = [rec(OpType.WRITE, 0.0, 0.1, size=4000)]
    out = agg.aggregate(records, "app")
    assert out[(0, OST0)]["throughput"] == pytest.approx(2000)
    assert out[(0, OST0)]["iops"] == pytest.approx(0.5)


def test_feature_keys_match_schema():
    agg = ClientWindowAggregator(window_size=1.0)
    out = agg.aggregate([rec(OpType.READ, 0.0, 0.1, size=1)], "app")
    assert set(out[(0, OST0)]) == set(CLIENT_FEATURES)


def test_window_ops_grouping():
    agg = ClientWindowAggregator(window_size=1.0)
    records = [
        rec(OpType.READ, 0.1, 0.2, op_id=1),
        rec(OpType.READ, 0.2, 1.4, op_id=2),
        rec(OpType.READ, 0.1, 0.3, job="other", op_id=3),
    ]
    grouped = agg.window_ops(records, "app")
    assert sorted(grouped) == [0, 1]
    assert len(grouped[0]) == 1 and grouped[0][0].op_id == 1


def test_invalid_window_size():
    with pytest.raises(ValueError):
        ClientWindowAggregator(window_size=0.0)
