"""Tests for the incremental content-addressed DatasetStore.

The load-bearing contract: a store-built dataset is bit-identical —
``content_digest()`` equal — to the in-memory ``collect_windows`` path,
on every simulator backend and shard count, and a warm rebuild performs
zero simulations and zero re-aggregations.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.data import DatasetStore
from repro.experiments.datagen import (Scenario, bank_to_dataset,
                                       collect_windows, generate_dataset)
from repro.experiments.runner import (ExperimentConfig, InterferenceSpec,
                                      experiment_cluster)
from repro.parallel import SweepExecutor
from repro.workloads.io500 import make_io500_task


def small_config(backend="event"):
    cluster = dataclasses.replace(experiment_cluster(), sim_backend=backend)
    return ExperimentConfig(cluster=cluster, window_size=0.25,
                            sample_interval=0.125, warmup=0.5, seed=0)


def small_targets():
    return [make_io500_task("ior-easy-write", ranks=2, scale=0.1)]


def small_scenarios():
    return [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=2,
                                            ranks=2, scale=0.2),)),
    ]


def extra_scenario():
    return Scenario("noise2", (InterferenceSpec("ior-easy-read", instances=1,
                                                ranks=2, scale=0.2),))


@pytest.mark.parametrize("backend", ["event", "batch"])
def test_cold_build_digest_matches_in_memory(tmp_path, backend):
    config = small_config(backend)
    in_memory = generate_dataset(small_targets(), small_scenarios(), config,
                                 source="t")
    store = DatasetStore(tmp_path / "store")
    built = store.build(small_targets(), small_scenarios(), config,
                        source="t")
    assert built.content_digest() == in_memory.content_digest()
    assert np.array_equal(built.X, in_memory.X)
    assert np.array_equal(built.y, in_memory.y)


def test_sharded_builds_digest_matches_in_memory(tmp_path):
    """Store equivalence holds on the sharded executor too.

    The sharded protocol is bit-identical across shard *counts* (not
    necessarily to the unsharded legacy path, which is why the shard
    keys embed the ``sharded`` flag), so the reference here is the
    in-memory path run through a sharded executor.
    """
    config = small_config("batch")
    in_memory = bank_to_dataset(
        collect_windows(small_targets(), small_scenarios(), config,
                        executor=SweepExecutor(shards=1)))
    digests = set()
    for shards in (1, 2):
        store = DatasetStore(tmp_path / f"store-{shards}")
        built = store.build(small_targets(), small_scenarios(), config,
                            executor=SweepExecutor(shards=shards))
        digests.add(built.content_digest())
    assert digests == {in_memory.content_digest()}


def test_warm_rebuild_zero_simulations_zero_reaggregations(tmp_path):
    config = small_config()
    cold = DatasetStore(tmp_path / "store")
    bank_cold = cold.build_bank(small_targets(), small_scenarios(), config)
    assert cold.pairs_appended == 2
    assert cold.shards_written >= 2

    warm = DatasetStore(tmp_path / "store")
    executor = SweepExecutor()
    bank_warm = warm.build_bank(small_targets(), small_scenarios(), config,
                                executor=executor)
    # Zero simulations: the executor never ran a job.
    assert executor.runs_executed == 0
    assert warm.last_build["missing_pairs"] == 0
    assert warm.last_build["reused_pairs"] == 2
    # Zero re-aggregations: no shard was even re-read — the assembled
    # memmap itself is cache-hit by its ordered-shard key.
    assert warm.shards_scanned == 0
    assert warm.assembly_hits == 1
    assert warm.pairs_appended == 0
    assert np.array_equal(bank_warm.X, bank_cold.X)
    assert np.array_equal(bank_warm.levels, bank_cold.levels)
    assert bank_warm.sources == bank_cold.sources


def test_append_touches_only_new_pairs(tmp_path):
    config = small_config()
    store = DatasetStore(tmp_path / "store")
    store.build_bank(small_targets(), small_scenarios(), config)

    grown = DatasetStore(tmp_path / "store")
    executor = SweepExecutor()
    bank = grown.build_bank(small_targets(),
                            small_scenarios() + [extra_scenario()], config,
                            executor=executor)
    assert grown.last_build["missing_pairs"] == 1
    assert grown.last_build["reused_pairs"] == 2
    assert grown.pairs_appended == 1
    # The appended grid equals a from-scratch in-memory collection.
    in_memory = collect_windows(small_targets(),
                                small_scenarios() + [extra_scenario()],
                                config)
    assert np.array_equal(bank.X, in_memory.X)
    assert bank.sources == in_memory.sources


def test_assembled_x_is_readonly_memmap(tmp_path):
    config = small_config()
    store = DatasetStore(tmp_path / "store")
    dataset = store.build(small_targets(), small_scenarios(), config)
    assert isinstance(dataset.X.base, np.memmap)
    with pytest.raises(ValueError):
        dataset.X[0, 0, 0] = 1.0


def test_small_shards_split_and_still_match(tmp_path):
    config = small_config()
    # A longer target: each pair yields several windows, so a one-window
    # shard limit forces every pair to split across files.
    targets = [make_io500_task("ior-easy-write", ranks=2, scale=2.0)]
    in_memory = generate_dataset(targets, small_scenarios(), config)
    store = DatasetStore(tmp_path / "store", max_windows_per_shard=1)
    built = store.build(targets, small_scenarios(), config)
    # One window per shard: the pairs really split into multiple files.
    assert store.shards_written == store.windows_appended
    assert store.shards_written > store.pairs_appended
    assert built.content_digest() == in_memory.content_digest()


def test_corrupt_shard_is_evicted_then_rebuilt(tmp_path):
    config = small_config()
    store = DatasetStore(tmp_path / "store")
    original = store.build(small_targets(), small_scenarios(), config)

    shard_files = sorted((tmp_path / "store" / "shards").rglob("*-000.npz"))
    assert shard_files
    shard_files[0].write_bytes(b"garbage")
    # Invalidate the cached assembly so the scan actually re-reads shards.
    for f in (tmp_path / "store" / "assemblies").iterdir():
        f.unlink()

    broken = DatasetStore(tmp_path / "store")
    with pytest.raises(RuntimeError, match="re-run the build"):
        broken.build(small_targets(), small_scenarios(), config)
    assert broken.errors >= 1

    # The corrupt pair was evicted; the next build re-simulates just it.
    repaired = DatasetStore(tmp_path / "store")
    executor = SweepExecutor()
    rebuilt = repaired.build(small_targets(), small_scenarios(), config,
                             executor=executor)
    assert repaired.last_build["missing_pairs"] == 1
    assert rebuilt.content_digest() == original.content_digest()


def test_missing_shard_file_evicts_entry(tmp_path):
    config = small_config()
    store = DatasetStore(tmp_path / "store")
    store.build(small_targets(), small_scenarios(), config)
    shard_files = sorted((tmp_path / "store" / "shards").rglob("*-000.npz"))
    shard_files[0].unlink()

    repaired = DatasetStore(tmp_path / "store")
    repaired.build(small_targets(), small_scenarios(), config)
    assert repaired.errors >= 1
    assert repaired.last_build["missing_pairs"] == 1


def test_wrong_manifest_kind_raises(tmp_path):
    store = DatasetStore(tmp_path / "store")
    store.manifest_path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError, match="not a dataset-store manifest"):
        store.load_manifest()


def test_corrupt_manifest_starts_fresh(tmp_path):
    store = DatasetStore(tmp_path / "store")
    store.manifest_path.write_text("{not json")
    manifest = store.load_manifest()
    assert manifest["entries"] == {}
    assert store.errors == 1


def test_format_bump_starts_fresh(tmp_path):
    store = DatasetStore(tmp_path / "store")
    store.manifest_path.write_text(
        json.dumps({"kind": "repro-dataset-store", "format": -1,
                    "entries": {"k": {}}, "seq": 1}))
    manifest = store.load_manifest()
    assert manifest["entries"] == {}


def test_store_rejects_bad_shard_size(tmp_path):
    with pytest.raises(ValueError, match="max_windows_per_shard"):
        DatasetStore(tmp_path / "store", max_windows_per_shard=0)


def test_stats_shape(tmp_path):
    config = small_config()
    store = DatasetStore(tmp_path / "store")
    store.build(small_targets(), small_scenarios(), config)
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["windows"] > 0
    assert stats["bytes"] > 0
    assert stats["pairs_appended"] == 2
    assert stats["last_build"]["missing_pairs"] == 2
    json.dumps(stats)  # manifest-ready


def test_collect_windows_store_roundtrip_bitwise(tmp_path):
    """The wire-through: collect_windows(store=...) equals store-less."""
    config = small_config()
    plain = collect_windows(small_targets(), small_scenarios(), config)
    store = DatasetStore(tmp_path / "store")
    via_store = collect_windows(small_targets(), small_scenarios(), config,
                                store=store)
    assert np.array_equal(plain.X, via_store.X)
    assert np.array_equal(plain.levels, via_store.levels)
    assert plain.sources == via_store.sources
    assert store.pairs_appended == 2
