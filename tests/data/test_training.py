"""Out-of-core training: memmap-backed datasets train bit-identically."""

import numpy as np

from repro.core.dataset import Dataset
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor


def _params(predictor):
    return [np.array(p.value) for p in predictor.model.params()]


def make_memmap_dataset(tmp_path, n=96, servers=3, feats=5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, servers, feats))
    y = (X[:, :, :2].mean(axis=(1, 2)) > 0).astype(int)
    X[y == 1, :, :2] += 0.4
    x_path = tmp_path / "X.npy"
    np.save(x_path, X)
    names = tuple(f"f{i}" for i in range(feats))
    in_memory = Dataset(X, y, feature_names=names)
    memmap = Dataset(np.lib.format.open_memmap(x_path, mode="r"), y,
                     feature_names=names)
    assert isinstance(memmap.X.base, np.memmap)
    return in_memory, memmap


def test_memmap_training_bit_identical(tmp_path):
    in_memory, memmap = make_memmap_dataset(tmp_path)
    config = TrainConfig(epochs=4, patience=3, seed=0)
    p_mem = InterferencePredictor.train(in_memory, config=config, restarts=2)
    p_mmap = InterferencePredictor.train(memmap, config=config, restarts=2)
    for a, b in zip(_params(p_mem), _params(p_mmap)):
        assert np.array_equal(a, b)
    assert np.array_equal(p_mem.normalizer.mean, p_mmap.normalizer.mean)
    assert np.array_equal(p_mem.normalizer.std, p_mmap.normalizer.std)
    assert np.array_equal(p_mem.predict(in_memory.X),
                          p_mmap.predict(in_memory.X))


def test_memmap_training_float32_bit_identical(tmp_path):
    in_memory, memmap = make_memmap_dataset(tmp_path, seed=3)
    config = TrainConfig(epochs=4, patience=3, seed=0, dtype="float32")
    p_mem = InterferencePredictor.train(in_memory, config=config, restarts=1)
    p_mmap = InterferencePredictor.train(memmap, config=config, restarts=1)
    for a, b in zip(_params(p_mem), _params(p_mmap)):
        assert np.array_equal(a, b)


def test_memmap_digest_matches_in_memory(tmp_path):
    """The model-cache key survives switching to the out-of-core path."""
    in_memory, memmap = make_memmap_dataset(tmp_path, seed=5)
    assert memmap.content_digest() == in_memory.content_digest()
