"""Tests for the columnar window-shard format."""

import json

import numpy as np
import pytest

from repro.data import SHARD_FORMAT, read_shard, write_shard


def make_windows(n=5, servers=3, feats=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, servers, feats))
    levels = rng.uniform(1.0, 6.0, size=n)
    sources = [f"target:scenario"] * n
    return X, levels, sources


class TestRoundTrip:
    def test_bit_exact(self, tmp_path):
        X, levels, sources = make_windows()
        path = write_shard(tmp_path / "s.npz", X, levels, sources,
                           meta={"key": "k0", "shard_index": 0})
        shard = read_shard(path)
        assert np.array_equal(shard.X, X)
        assert shard.X.dtype == np.float64
        assert np.array_equal(shard.levels, levels)
        assert shard.sources == sources
        assert len(shard) == len(X)
        assert shard.meta["kind"] == "repro-window-shard"
        assert shard.meta["format"] == SHARD_FORMAT
        assert shard.meta["key"] == "k0"
        assert shard.meta["n_windows"] == len(X)

    def test_fortran_order_input_round_trips(self, tmp_path):
        X, levels, sources = make_windows()
        path = write_shard(tmp_path / "s.npz", np.asfortranarray(X),
                           levels, sources)
        assert np.array_equal(read_shard(path).X, X)

    def test_empty_shard(self, tmp_path):
        path = write_shard(tmp_path / "s.npz", np.empty((0, 3, 4)),
                           np.empty(0), [])
        shard = read_shard(path)
        assert len(shard) == 0
        assert shard.X.shape == (0, 3, 4)


class TestValidation:
    def test_write_rejects_non_3d(self, tmp_path):
        with pytest.raises(ValueError, match="windows, servers, features"):
            write_shard(tmp_path / "s.npz", np.zeros((4, 5)), np.zeros(4),
                        ["a"] * 4)

    def test_write_rejects_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="inconsistent shard lengths"):
            write_shard(tmp_path / "s.npz", np.zeros((4, 2, 3)), np.zeros(3),
                        ["a"] * 4)
        with pytest.raises(ValueError, match="inconsistent shard lengths"):
            write_shard(tmp_path / "s.npz", np.zeros((4, 2, 3)), np.zeros(4),
                        ["a"] * 2)

    def test_read_rejects_garbage_bytes(self, tmp_path):
        path = tmp_path / "s.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match="not a valid npz"):
            read_shard(path)

    def test_read_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "s.npz"
        with open(path, "wb") as fp:
            np.savez_compressed(fp, X=np.zeros(3))
        with pytest.raises(ValueError, match="no meta"):
            read_shard(path)

    def test_read_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "s.npz"
        doc = {"kind": "something-else", "format": SHARD_FORMAT}
        with open(path, "wb") as fp:
            np.savez_compressed(fp, meta=np.array(json.dumps(doc)),
                                X=np.zeros((1, 1, 1)), levels=np.zeros(1),
                                sources=np.array(["s"], dtype=np.str_))
        with pytest.raises(ValueError, match="unexpected kind"):
            read_shard(path)

    def test_read_rejects_future_format(self, tmp_path):
        path = tmp_path / "s.npz"
        doc = {"kind": "repro-window-shard", "format": SHARD_FORMAT + 1,
               "n_windows": 1}
        with open(path, "wb") as fp:
            np.savez_compressed(fp, meta=np.array(json.dumps(doc)),
                                X=np.zeros((1, 1, 1)), levels=np.zeros(1),
                                sources=np.array(["s"], dtype=np.str_))
        with pytest.raises(ValueError, match="format"):
            read_shard(path)

    def test_read_rejects_window_count_mismatch(self, tmp_path):
        path = tmp_path / "s.npz"
        doc = {"kind": "repro-window-shard", "format": SHARD_FORMAT,
               "n_windows": 7}
        with open(path, "wb") as fp:
            np.savez_compressed(fp, meta=np.array(json.dumps(doc)),
                                X=np.zeros((1, 1, 1)), levels=np.zeros(1),
                                sources=np.array(["s"], dtype=np.str_))
        with pytest.raises(ValueError, match="meta says 7"):
            read_shard(path)
