"""Tests for time-window helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.windows import TimeWindow, iter_windows, window_index


def test_window_index_basic():
    assert window_index(0.0, 1.0) == 0
    assert window_index(0.999, 1.0) == 0
    assert window_index(1.0, 1.0) == 1
    assert window_index(2.5, 1.0) == 2


def test_window_index_rejects_bad_args():
    with pytest.raises(ValueError):
        window_index(1.0, 0.0)
    with pytest.raises(ValueError):
        window_index(-0.1, 1.0)


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False),
       st.floats(min_value=1e-3, max_value=100, allow_nan=False))
def test_window_index_is_consistent_with_bounds(t, size):
    idx = window_index(t, size)
    # The chosen window must contain t up to one float ULP of slack.
    assert idx * size <= t * (1 + 1e-12) + 1e-12
    assert t < (idx + 1) * size * (1 + 1e-12) + 1e-12


def test_iter_windows_covers_horizon():
    windows = list(iter_windows(3.5, 1.0))
    assert len(windows) == 4
    assert windows[0] == TimeWindow(0, 0.0, 1.0)
    assert windows[-1].end >= 3.5


def test_iter_windows_empty_horizon():
    assert list(iter_windows(0.0, 1.0)) == []


def test_window_contains_half_open():
    w = TimeWindow(0, 0.0, 1.0)
    assert w.contains(0.0)
    assert w.contains(0.999)
    assert not w.contains(1.0)
    assert w.size == pytest.approx(1.0)
