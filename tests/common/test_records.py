"""Tests for IORecord and op-type semantics."""

import pytest

from repro.common.records import IORecord, OpType, ServerId, ServerKind


def make_record(**kwargs):
    defaults = dict(
        job="job",
        rank=0,
        op_id=1,
        op=OpType.READ,
        path="/f",
        offset=0,
        size=1024,
        start=1.0,
        end=2.0,
        servers=(ServerId(ServerKind.OST, 0),),
    )
    defaults.update(kwargs)
    return IORecord(**defaults)


def test_op_families():
    assert OpType.READ.family == "read"
    assert OpType.WRITE.family == "write"
    for op in (OpType.OPEN, OpType.CLOSE, OpType.STAT, OpType.CREATE,
               OpType.UNLINK, OpType.MKDIR):
        assert op.family == "meta"
        assert op.is_metadata
        assert not op.is_data
    assert OpType.READ.is_data and OpType.WRITE.is_data


def test_record_duration_and_key():
    rec = make_record()
    assert rec.duration == pytest.approx(1.0)
    assert rec.key == ("job", 0, 1)


def test_record_rejects_negative_duration():
    with pytest.raises(ValueError):
        make_record(start=2.0, end=1.0)


def test_record_rejects_negative_extent():
    with pytest.raises(ValueError):
        make_record(size=-1)


def test_server_id_ordering_is_stable():
    ids = [ServerId(ServerKind.MDT, 0), ServerId(ServerKind.OST, 1),
           ServerId(ServerKind.OST, 0)]
    ordered = sorted(ids)
    assert ordered == [ServerId(ServerKind.MDT, 0), ServerId(ServerKind.OST, 0),
                       ServerId(ServerKind.OST, 1)]


def test_server_id_is_hashable_and_str():
    s = ServerId(ServerKind.OST, 3)
    assert str(s) == "ost3"
    assert {s: 1}[ServerId(ServerKind.OST, 3)] == 1
