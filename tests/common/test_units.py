"""Unit tests for byte/sector unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    GIB,
    KIB,
    MIB,
    SECTOR_SIZE,
    bytes_to_sectors,
    format_bytes,
)


def test_unit_constants_are_powers_of_1024():
    assert KIB == 1024
    assert MIB == 1024**2
    assert GIB == 1024**3
    assert SECTOR_SIZE == 512


def test_bytes_to_sectors_rounds_up():
    assert bytes_to_sectors(0) == 0
    assert bytes_to_sectors(1) == 1
    assert bytes_to_sectors(512) == 1
    assert bytes_to_sectors(513) == 2
    assert bytes_to_sectors(4096) == 8


def test_bytes_to_sectors_rejects_negative():
    with pytest.raises(ValueError):
        bytes_to_sectors(-1)


@given(st.integers(min_value=0, max_value=10**15))
def test_bytes_to_sectors_covers_extent(nbytes):
    sectors = bytes_to_sectors(nbytes)
    assert sectors * SECTOR_SIZE >= nbytes
    assert (sectors - 1) * SECTOR_SIZE < nbytes or sectors == 0


def test_format_bytes_scales():
    assert format_bytes(512) == "512 B"
    assert format_bytes(1536) == "1.50 KiB"
    assert format_bytes(3 * MIB) == "3.00 MiB"
    assert format_bytes(2 * GIB) == "2.00 GiB"
