"""Determinism tests for seeded RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import derive_rng, derive_seed


def test_same_path_same_seed():
    assert derive_seed(42, "ior", 3) == derive_seed(42, "ior", 3)


def test_different_paths_differ():
    seen = {derive_seed(42, "a"), derive_seed(42, "b"), derive_seed(42, "a", 0)}
    assert len(seen) == 3


def test_different_root_seeds_differ():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_rng_reproducible_streams():
    a = derive_rng(7, "workload", 1).random(16)
    b = derive_rng(7, "workload", 1).random(16)
    assert (a == b).all()


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_seed_is_64bit_unsigned(seed, key):
    s = derive_seed(seed, key)
    assert 0 <= s < 2**64


def test_path_separator_is_unambiguous():
    # ("ab", "c") must not collide with ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
