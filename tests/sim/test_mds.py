"""Tests for the metadata server model."""

import pytest

from repro.common.records import OpType
from repro.sim.cluster import Cluster
from repro.sim.engine import AllOf
from repro.sim.mds import MDSParams


def test_single_op_takes_service_time():
    cluster = Cluster()
    env, mds = cluster.env, cluster.mds

    def proc():
        yield mds.handle(OpType.STAT, "/dir")
        return env.now

    t = env.run(until=env.process(proc()))
    assert t == pytest.approx(mds.params.service_time(OpType.STAT))
    assert mds.ops_completed == 1


def test_mutating_ops_write_journal():
    cluster = Cluster()
    env, mds = cluster.env, cluster.mds

    def proc():
        yield mds.handle(OpType.CREATE, "/dir")

    env.run(until=env.process(proc()))
    assert mds.device.stats.writes_completed >= 1


def test_stat_does_not_write_journal():
    cluster = Cluster()
    env, mds = cluster.env, cluster.mds

    def proc():
        yield mds.handle(OpType.STAT, "/dir")
        yield mds.handle(OpType.OPEN, "/dir")
        yield mds.handle(OpType.CLOSE, "/dir")

    env.run(until=env.process(proc()))
    assert mds.device.stats.writes_completed == 0


def test_shared_directory_creates_serialise():
    """Creates in ONE directory serialise on the dir lock; creates spread
    over MANY directories run in parallel across service threads — the
    mdtest-easy vs mdtest-hard asymmetry."""

    def run(shared: bool, n=32):
        cluster = Cluster()
        env, mds = cluster.env, cluster.mds
        procs = []

        def create(i):
            parent = "/shared" if shared else f"/dir{i}"
            yield mds.handle(OpType.CREATE, parent)

        for i in range(n):
            procs.append(env.process(create(i)))
        env.run(until=AllOf(env, procs))
        return env.now

    t_shared = run(shared=True)
    t_private = run(shared=False)
    assert t_shared > 2 * t_private


def test_thread_pool_limits_concurrency():
    cluster = Cluster()
    env, mds = cluster.env, cluster.mds
    n = 64
    procs = [env.process(one(env, mds, i)) for i in range(n)]

    env.run(until=AllOf(env, procs))
    service = mds.params.service_time(OpType.STAT)
    expected_min = n * service / mds.params.service_threads
    assert env.now >= expected_min * 0.99


def one(env, mds, i):
    yield mds.handle(OpType.STAT, f"/d{i}")


def test_non_metadata_op_rejected():
    with pytest.raises(ValueError):
        MDSParams().service_time(OpType.READ)


def test_queue_depth_reflects_backlog():
    cluster = Cluster()
    env, mds = cluster.env, cluster.mds
    for i in range(20):
        mds.handle(OpType.STAT, f"/d{i}")
    # Before any simulated time passes nothing is admitted yet; step a bit.
    env.run(until=50e-6)
    assert mds.queue_depth() > 0
    env.run()
    assert mds.queue_depth() == 0
