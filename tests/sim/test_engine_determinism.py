"""Determinism guarantees of the event kernel.

The parallel sweep executor's bit-identical claim rests on the engine
replaying the exact same event order for the same inputs; these tests pin
that property directly, including across the ``run()`` fast path and the
public ``step()`` API.
"""

import numpy as np

from repro.sim.engine import Environment, SimulationError


def _busy_workload(env: Environment, log: list, rng: np.random.Generator):
    """A tangle of processes with equal-time events to stress tie-breaking."""

    def worker(name, delays):
        for i, d in enumerate(delays):
            yield env.timeout(d)
            log.append((name, i, env.now))

    def spawner():
        yield env.timeout(0.5)
        for j in range(3):
            env.process(worker(f"late-{j}", [0.25] * 4))
        log.append(("spawner", 0, env.now))

    for w in range(4):
        delays = list(rng.integers(1, 5, size=10) * 0.25)
        env.process(worker(f"w{w}", delays))
    env.process(spawner())


def _run_once(chunked: bool = False) -> list:
    env = Environment()
    log: list = []
    _busy_workload(env, log, np.random.default_rng(7))
    if chunked:
        t = 0.0
        while env._queue:
            t += 0.75
            env.run(until=t)
    else:
        env.run()
    return log


def test_identical_runs_replay_identical_event_order():
    assert _run_once() == _run_once()


def test_chunked_run_matches_single_run():
    """Driving the loop in run(until=t) increments (as the monitors do)
    fires the same events in the same order as one drain."""
    assert _run_once(chunked=True) == _run_once(chunked=False)


def test_step_api_matches_run():
    env1, env2 = Environment(), Environment()
    log1: list = []
    log2: list = []
    _busy_workload(env1, log1, np.random.default_rng(3))
    _busy_workload(env2, log2, np.random.default_rng(3))
    env1.run()
    while env2._queue:
        env2.step()
    assert log1 == log2
    assert env1.now == env2.now


def test_equal_time_events_fire_in_schedule_order():
    env = Environment()
    order: list = []

    def note(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c", "d"):
        env.process(note(tag))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_past_event_detected():
    env = Environment()
    env.timeout(1.0)
    env.now = 5.0  # simulate clock corruption
    try:
        env.run()
    except SimulationError as exc:
        assert "past" in str(exc)
    else:
        raise AssertionError("expected SimulationError")
