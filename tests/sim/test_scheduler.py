"""Tests for the block-layer elevator/merging scheduler."""

import pytest

from repro.common.units import SECTOR_SIZE
from repro.sim.disk import DiskModel, DiskParams
from repro.sim.engine import AllOf, Environment
from repro.sim.scheduler import BlockDevice


def make_device(env=None):
    env = env or Environment()
    return env, BlockDevice(env, DiskModel(DiskParams()))


def test_single_request_completes_with_service_time():
    env, dev = make_device()

    def proc():
        yield dev.submit(0, 2048, is_write=False)
        return env.now

    t = env.run(until=env.process(proc()))
    assert t == pytest.approx(2048 * SECTOR_SIZE / DiskParams().sequential_bandwidth)
    assert dev.stats.reads_completed == 1
    assert dev.stats.sectors_read == 2048


def test_contiguous_requests_merge():
    env, dev = make_device()

    def proc():
        evs = [dev.submit(i * 64, 64, is_write=True) for i in range(8)]
        yield AllOf(env, evs)

    env.run(until=env.process(proc()))
    assert dev.stats.writes_completed == 8
    # First request dispatches alone (device idle); the remaining 7 merge.
    assert dev.stats.writes_merged >= 6
    assert dev.stats.sectors_written == 8 * 64


def test_reads_and_writes_do_not_merge_together():
    env, dev = make_device()

    def proc():
        a = dev.submit(0, 64, is_write=True)
        b = dev.submit(64, 64, is_write=False)
        yield AllOf(env, [a, b])

    env.run(until=env.process(proc()))
    assert dev.stats.writes_merged == 0
    assert dev.stats.reads_merged == 0


def test_elevator_orders_by_lba():
    """Out-of-order submissions are served in ascending LBA order."""
    env, dev = make_device()
    completions = []
    lbas = [500_000, 100_000, 300_000]

    def submit_all():
        # Occupy the device so all three wait in queue together.
        first = dev.submit(0, 8, is_write=False)
        evs = []
        for lba in lbas:
            ev = dev.submit(lba, 8, is_write=False)
            ev.callbacks.append(lambda _e, lba=lba: completions.append(lba))
            evs.append(ev)
        yield AllOf(env, [first, *evs])

    env.run(until=env.process(submit_all()))
    assert completions == sorted(lbas)


def test_reads_prioritised_over_writes():
    env, dev = make_device()
    order = []

    def proc():
        busy = dev.submit(0, 2048, is_write=False)
        w = dev.submit(10_000_000, 64, is_write=True)
        w.callbacks.append(lambda _e: order.append("write"))
        r = dev.submit(20_000_000, 64, is_write=False)
        r.callbacks.append(lambda _e: order.append("read"))
        yield AllOf(env, [busy, w, r])

    env.run(until=env.process(proc()))
    assert order == ["read", "write"]


def test_writes_not_starved_forever():
    """A steady read stream must still let queued writes through."""
    env, dev = make_device()
    done = {"write": None}

    def reader():
        for i in range(20):
            yield dev.submit(i * 64, 64, is_write=False)

    def writer():
        yield env.timeout(1e-4)
        yield dev.submit(50_000_000, 64, is_write=True)
        done["write"] = env.now

    r = env.process(reader())
    w = env.process(writer())
    env.run(until=AllOf(env, [r, w]))
    reader_finish = env.now
    assert done["write"] is not None
    # The write completed before the whole read stream drained.
    assert done["write"] <= reader_finish


def test_submit_bytes_sector_math():
    env, dev = make_device()

    def proc():
        yield dev.submit_bytes(100, 1000, is_write=False)  # crosses sectors

    env.run(until=env.process(proc()))
    # Bytes 100..1100 span sectors 0..2 inclusive -> 3 sectors.
    assert dev.stats.sectors_read == 3


def test_bad_request_rejected():
    _, dev = make_device()
    with pytest.raises(ValueError):
        dev.submit(0, 0, is_write=False)


def test_queue_depth_tracks_outstanding():
    env, dev = make_device()
    depths = []

    def proc():
        evs = [dev.submit(i * 1_000_000, 8, is_write=False) for i in range(4)]
        depths.append(dev.queue_depth)
        yield AllOf(env, evs)
        depths.append(dev.queue_depth)

    env.run(until=env.process(proc()))
    assert depths[0] == 4
    assert depths[-1] == 0
