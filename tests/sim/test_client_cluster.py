"""Integration tests: client sessions against a full cluster."""

import pytest

from repro.common.records import OpType, ServerId, ServerKind
from repro.common.units import MIB
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import AllOf


def run_ranks(cluster, bodies):
    env = cluster.env
    procs = [env.process(body) for body in bodies]
    env.run(until=AllOf(env, procs))


def test_default_config_matches_paper_testbed():
    cfg = ClusterConfig()
    assert cfg.n_client_nodes == 7
    assert cfg.n_osts == 6
    assert len(Cluster(cfg).servers) == 7  # 6 OSTs + 1 MDT


def test_write_records_trace_with_servers():
    cluster = Cluster()
    sess = cluster.session("job", 0, 0)

    def body():
        yield from sess.create("/f")
        yield from sess.write("/f", 0, 2 * MIB)

    run_ranks(cluster, [body()])
    recs = cluster.collector.records
    assert [r.op for r in recs] == [OpType.CREATE, OpType.WRITE]
    create, write = recs
    assert create.servers == (ServerId(ServerKind.MDT, 0),)
    assert write.size == 2 * MIB
    assert all(s.kind is ServerKind.OST for s in write.servers)
    assert write.duration > 0


def test_op_ids_are_sequential_per_rank():
    cluster = Cluster()
    sess = cluster.session("job", 3, 1)

    def body():
        yield from sess.create("/g")
        for i in range(3):
            yield from sess.write("/g", i * MIB, MIB)

    run_ranks(cluster, [body()])
    ids = [r.op_id for r in cluster.collector.records]
    assert ids == [1, 2, 3, 4]


def test_striped_file_touches_multiple_osts():
    cluster = Cluster()
    sess = cluster.session("job", 0, 0)

    def body():
        yield from sess.create("/wide", stripe_count=-1)
        yield from sess.write("/wide", 0, 6 * MIB)

    run_ranks(cluster, [body()])
    write = cluster.collector.records[-1]
    assert len(write.servers) == 6


def test_read_of_missing_file_raises():
    cluster = Cluster()
    sess = cluster.session("job", 0, 0)

    def body():
        yield from sess.read("/nope", 0, MIB)

    with pytest.raises(FileNotFoundError):
        run_ranks(cluster, [body()])


def test_metadata_ops_complete_and_record():
    cluster = Cluster()
    sess = cluster.session("job", 0, 0)

    def body():
        yield from sess.mkdir("/d")
        yield from sess.create("/d/f")
        yield from sess.open("/d/f")
        yield from sess.stat("/d/f")
        yield from sess.close("/d/f")
        yield from sess.unlink("/d/f")

    run_ranks(cluster, [body()])
    ops = [r.op for r in cluster.collector.records]
    assert ops == [OpType.MKDIR, OpType.CREATE, OpType.OPEN, OpType.STAT,
                   OpType.CLOSE, OpType.UNLINK]
    assert "/d/f" not in cluster.fs


def test_rpc_window_limits_inflight_rpcs():
    """A single large write is split into max_rpc_bytes RPCs gated by the
    per-OST window; the op must take at least ceil(n/window) network
    serialisation rounds."""
    cfg = ClusterConfig()
    cluster = Cluster(cfg)
    sess = cluster.session("job", 0, 0)
    size = 32 * MIB  # 32 RPCs of 1 MiB through a window of 8

    def body():
        yield from sess.create("/big")
        yield from sess.write("/big", 0, size)

    run_ranks(cluster, [body()])
    write = cluster.collector.records[-1]
    # Client NIC is 1 GB/s: 32 MiB takes >= 33 ms regardless of windows.
    assert write.duration >= size / cfg.net_bandwidth * 0.99


def test_deterministic_replay_same_seedless_workload():
    """The same workload on a fresh cluster produces identical traces."""

    def run_once():
        cluster = Cluster()
        sess = cluster.session("job", 0, 0)

        def body():
            yield from sess.create("/f")
            for i in range(4):
                yield from sess.write("/f", i * MIB, MIB)
            for i in range(4):
                yield from sess.read("/f", i * MIB, MIB)

        run_ranks(cluster, [body()])
        return [(r.op_id, r.op, r.start, r.end) for r in cluster.collector.records]

    assert run_once() == run_once()


def test_concurrent_jobs_interfere_in_time():
    """Cold reads of co-located files slow down when another job reads the
    same OSTs — the basic interference effect end-to-end."""

    def run_case(with_noise):
        cluster = Cluster()
        n_files = 18  # 3 files per OST
        for i in range(n_files):
            cluster.fs.ensure(f"/data/f{i}", 32 * MIB)

        def reader(sess, path):
            for i in range(32):
                yield from sess.read(path, i * MIB, MIB)

        bodies = []
        target = cluster.session("target", 0, 0)
        bodies.append(reader(target, "/data/f0"))
        if with_noise:
            for i in range(1, n_files):
                sess = cluster.session("noise", i, i % 7)
                bodies.append(reader(sess, f"/data/f{i}"))
        run_ranks(cluster, bodies)
        recs = cluster.collector.for_job("target")
        return sum(r.duration for r in recs) / len(recs)

    alone = run_case(False)
    noisy = run_case(True)
    assert noisy > 1.5 * alone


def test_server_counters_uniform_keys():
    cluster = Cluster()
    keysets = {frozenset(cluster.server_counters(s)) for s in cluster.servers}
    assert len(keysets) == 1
