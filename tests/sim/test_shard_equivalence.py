"""Bit-identity of the sharded executor across shard counts.

The contract of ``--shards N`` (:mod:`repro.sim.shard`) is that the
conservative sync protocol's decisions are functions of simulation state
only — never of how domains map onto processes — so traces, server
samples, window vectors and labels from ``--shards 4`` are byte-
identical to ``--shards 1``, on both request backends, and the run-cache
key is shard-count-invariant (a warm cache keeps hitting whatever
parallelism the machine offers).  These tests pin all of that.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.datagen import Scenario, collect_windows
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    execute_run,
    experiment_cluster,
)
from repro.parallel import RunCache, RunJob, SweepExecutor
from repro.workloads.io500 import make_io500_task


def config_for(backend: str = "event") -> ExperimentConfig:
    cluster = dataclasses.replace(experiment_cluster(), sim_backend=backend)
    return ExperimentConfig(cluster=cluster, window_size=0.25,
                            sample_interval=0.125, warmup=0.5, seed=0)


def target():
    return make_io500_task("ior-easy-write", ranks=2, scale=0.1)


def noise():
    return [InterferenceSpec("ior-hard-write", instances=2, ranks=2,
                             scale=0.1)]


def assert_runs_identical(ref, other):
    """Byte-identity: exact float equality, not approx."""
    assert other.records == ref.records
    assert other.server_samples == ref.server_samples
    assert other.duration == ref.duration
    assert other.servers == ref.servers
    assert other.metadata == ref.metadata


@pytest.mark.parametrize("backend", ["event", "batch"])
def test_byte_identical_across_shard_counts(backend):
    """shards=2 and shards=4 reproduce shards=1 exactly, both backends."""
    cfg = config_for(backend)
    runs = [execute_run(target(), noise(), cfg, shards=n) for n in (1, 2, 4)]
    for other in runs[1:]:
        assert_runs_identical(runs[0], other)
    assert runs[0].metadata["sharded"] is True


def test_quiet_run_identical_across_shard_counts():
    """No-noise runs (no warmup phase) also agree across shard counts."""
    cfg = config_for("event")
    one = execute_run(target(), [], cfg, shards=1)
    many = execute_run(target(), [], cfg, shards=3)
    assert_runs_identical(one, many)


def test_aborted_run_identical_across_shard_counts():
    """The fault-injection abort path truncates identically at any N."""
    cfg = config_for("event")
    one = execute_run(target(), noise(), cfg, shards=1, abort_at=0.7)
    many = execute_run(target(), noise(), cfg, shards=3, abort_at=0.7)
    assert one.metadata["aborted"] is True
    assert one.metadata["abort_at"] == 0.7
    assert_runs_identical(one, many)


def test_window_banks_identical_across_shard_counts():
    """Assembled vectors and labels agree: the full datagen pipeline."""
    targets = [target()]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=2,
                                            ranks=2, scale=0.1),)),
    ]
    banks = {
        n: collect_windows(targets, scenarios, config_for("batch"),
                           executor=SweepExecutor(shards=n))
        for n in (1, 3)
    }
    assert np.array_equal(banks[1].X, banks[3].X)
    assert np.array_equal(banks[1].levels, banks[3].levels)


def test_cache_key_shard_count_invariant():
    """One key for every shard count; a different key than legacy."""
    job = RunJob(target(), tuple(noise()), config_for("event"))
    keys = {SweepExecutor(shards=n).key_for(job) for n in (1, 2, 8)}
    assert len(keys) == 1
    assert SweepExecutor().key_for(job) not in keys


def test_run_cache_shared_across_shard_counts(tmp_path):
    """A cache warmed at shards=1 satisfies shards=4 without simulating."""
    job = RunJob(target(), tuple(noise()), config_for("batch"))
    cold = SweepExecutor(shards=1, cache=RunCache(tmp_path))
    first = cold.run_one(job)
    assert cold.runs_executed == 1
    warm = SweepExecutor(shards=4, cache=RunCache(tmp_path))
    second = warm.run_one(job)
    assert warm.runs_executed == 0
    assert second.records == first.records


def test_invalid_shard_parameters_rejected():
    with pytest.raises(ValueError, match="shards"):
        execute_run(target(), [], config_for(), shards=0)
    with pytest.raises(ValueError, match="shards"):
        SweepExecutor(shards=0)
    # The protocol's lookahead is the per-RPC latency; a zero-latency
    # cluster has no lookahead and a window could never make progress.
    cfg = config_for()
    client = dataclasses.replace(cfg.cluster.client, rpc_latency=0.0)
    broken = dataclasses.replace(
        cfg, cluster=dataclasses.replace(cfg.cluster, client=client))
    with pytest.raises(ValueError, match="rpc_latency"):
        execute_run(target(), [], broken, shards=2)


def test_trace_spans_identical_across_shard_counts():
    """Traced runs emit one span stream whatever the shard count.

    Domains record into per-domain tracers merged in domain-index order
    with ``domain{d}`` labels, so the stream never depends on which
    process hosted a domain — ids, parents, names, sim timestamps and
    attrs all agree between ``--shards 1`` and ``--shards 3``.
    """
    from repro.obs import trace as _trace

    def spans_for(n):
        saved = _trace.TRACER
        _trace.TRACER = tracer = _trace.Tracer(trace_id="t-shard")
        try:
            execute_run(target(), noise(), config_for("event"), shards=n)
        finally:
            _trace.TRACER = saved
        return [s.to_dict() for s in tracer.spans]

    one, many = spans_for(1), spans_for(3)
    assert len(one) > 0
    assert one == many
    assert any(s["attrs"].get("worker", "").startswith("domain")
               for s in one)


def test_sharded_metadata_marks_run():
    """Sharded runs are distinguishable in manifests but not by count."""
    cfg = config_for("event")
    one = execute_run(target(), [], cfg, shards=1)
    many = execute_run(target(), [], cfg, shards=2)
    assert one.metadata["sharded"] is True
    assert one.metadata == many.metadata  # no shard count leaks out


def test_cache_key_window_policy_invariant():
    """The window policy, like the shard count, is an executor knob:
    one cache key whatever the policy, so a cache warmed under one
    policy keeps hitting under the other."""
    job = RunJob(target(), tuple(noise()), config_for("event"))
    keys = {
        SweepExecutor(shards=2, window_policy=policy).key_for(job)
        for policy in (None, "fixed", "adaptive", "adaptive:cap=0.01")
    }
    assert len(keys) == 1


def test_run_cache_shared_across_window_policies(tmp_path):
    """A cache warmed under fixed windows satisfies adaptive runs
    without simulating."""
    job = RunJob(target(), tuple(noise()), config_for("batch"))
    cold = SweepExecutor(shards=1, window_policy="fixed",
                         cache=RunCache(tmp_path))
    first = cold.run_one(job)
    assert cold.runs_executed == 1
    warm = SweepExecutor(shards=1, window_policy="adaptive",
                         cache=RunCache(tmp_path))
    second = warm.run_one(job)
    assert warm.runs_executed == 0
    assert second.records == first.records
