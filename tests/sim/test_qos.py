"""Tests for token-bucket QoS."""

import numpy as np
import pytest

from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.sim.engine import AllOf, Environment
from repro.sim.qos import QoSPolicy, TokenBucket


class TestTokenBucket:
    def test_burst_passes_instantly(self):
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=1000.0)

        def proc():
            yield bucket.consume(1000.0)
            return env.now

        assert env.run(until=env.process(proc())) == pytest.approx(0.0)

    def test_sustained_rate_enforced(self):
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=100.0)

        def proc():
            for _ in range(5):
                yield bucket.consume(100.0)
            return env.now

        # First 100 from the initial burst; 4 more at 1 s each.
        assert env.run(until=env.process(proc())) == pytest.approx(4.0)

    def test_fifo_no_starvation(self):
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=200.0)
        order = []

        def consumer(tag, size, delay):
            yield env.timeout(delay)
            yield bucket.consume(size)
            order.append(tag)

        env.process(consumer("big", 200.0, 0.0))
        env.process(consumer("small1", 10.0, 0.001))
        env.process(consumer("small2", 10.0, 0.002))
        env.run()
        assert order == ["big", "small1", "small2"]

    def test_zero_consume_immediate(self):
        env = Environment()
        bucket = TokenBucket(env, rate=1.0, burst=1.0)

        def proc():
            yield bucket.consume(0)
            return env.now

        assert env.run(until=env.process(proc())) == 0.0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            TokenBucket(env, rate=0, burst=1)
        bucket = TokenBucket(env, rate=1.0, burst=10.0)
        with pytest.raises(ValueError):
            bucket.consume(11.0)
        with pytest.raises(ValueError):
            bucket.consume(-1.0)


class TestQoSPolicy:
    def test_unlimited_jobs_pass_through(self):
        env = Environment()
        policy = QoSPolicy(env)

        def proc():
            yield policy.admit("anyjob", 10**9)
            yield policy.admit(None, 10**9)
            return env.now

        assert env.run(until=env.process(proc())) == 0.0

    def test_limit_and_clear(self):
        env = Environment()
        policy = QoSPolicy(env)
        policy.limit("noise", rate=100.0, burst=100.0)
        assert policy.is_limited("noise")

        def proc():
            yield policy.admit("noise", 100.0)  # burst
            yield policy.admit("noise", 100.0)  # +1 s
            t_limited = env.now
            policy.clear("noise")
            yield policy.admit("noise", 10**6)  # unlimited again
            return (t_limited, env.now)

        t_limited, t_final = env.run(until=env.process(proc()))
        assert t_limited == pytest.approx(1.0)
        assert t_final == pytest.approx(1.0)


def test_ost_qos_throttles_one_job_only():
    """A limited job's writes slow down; an unlimited job is unaffected."""

    def run(limited: bool):
        cluster = Cluster()
        if limited:
            for ost in cluster.osts:
                ost.qos.limit("noisy", rate=10 * MIB, burst=MIB)
        env = cluster.env

        def writer(job, path):
            sess = cluster.session(job, 0, 0 if job == "noisy" else 1)
            yield from sess.create(path)
            for i in range(8):
                yield from sess.write(path, i * MIB, MIB)

        p1 = env.process(writer("noisy", "/n"))
        p2 = env.process(writer("calm", "/c"))
        env.run(until=AllOf(env, [p1, p2]))
        recs = cluster.collector.records
        noisy = np.mean([r.duration for r in recs
                         if r.job == "noisy" and r.op.value == "write"])
        calm = np.mean([r.duration for r in recs
                        if r.job == "calm" and r.op.value == "write"])
        return noisy, calm

    free_noisy, free_calm = run(limited=False)
    lim_noisy, lim_calm = run(limited=True)
    assert lim_noisy > 3 * free_noisy  # throttled hard
    assert lim_calm < 2 * free_calm  # bystander barely affected


class TestConsumeBatch:
    def test_grant_times_match_sequential_consume(self):
        """The closed form must reproduce per-request FIFO drain times."""
        sizes = [60.0, 50.0, 10.0, 80.0, 1.0]

        env_a = Environment()
        seq = TokenBucket(env_a, rate=100.0, burst=100.0)
        grants: list[float] = []

        def consumer():
            for s in sizes:
                yield seq.consume(s)
                grants.append(env_a.now)

        env_a.run(until=env_a.process(consumer()))

        env_b = Environment()
        batch = TokenBucket(env_b, rate=100.0, burst=100.0)
        times = batch.consume_batch(sizes)
        assert times.shape == (len(sizes),)
        np.testing.assert_allclose(times, grants, atol=1e-12, rtol=0)

    def test_level_prededuction_queues_later_arrivals_behind_batch(self):
        """A consume() issued right after a batch must wait for the
        pre-sold credit to be earned back, exactly as FIFO would."""
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=100.0)
        last_grant = bucket.consume_batch([100.0, 100.0])[-1]

        def straggler():
            yield bucket.consume(50.0)
            return env.now

        granted_at = env.run(until=env.process(straggler()))
        assert granted_at == pytest.approx(last_grant + 0.5)

    def test_empty_batch_returns_empty(self):
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=100.0)
        assert bucket.consume_batch([]).size == 0

    def test_rejects_busy_queue_and_bad_sizes(self):
        env = Environment()
        bucket = TokenBucket(env, rate=100.0, burst=100.0)
        bucket.consume(100.0)
        bucket.consume(100.0)  # second consumer queues; bucket is busy
        with pytest.raises(RuntimeError):
            bucket.consume_batch([10.0])
        env.run()
        with pytest.raises(ValueError):
            bucket.consume_batch([-1.0])
        with pytest.raises(ValueError):
            bucket.consume_batch([1000.0])
