"""Tests for the rotational disk model and diskstats counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MIB, SECTOR_SIZE
from repro.sim.disk import DiskModel, DiskParams, DiskStats


def test_sequential_access_has_no_positioning_cost():
    model = DiskModel(DiskParams())
    first = model.service_time(0, 2048)  # includes initial "seek" from LBA 0? no: head at 0
    # Head starts at 0 and request starts at 0 -> pure transfer.
    expected = 2048 * SECTOR_SIZE / DiskParams().sequential_bandwidth
    assert first == pytest.approx(expected)
    # Contiguous follow-up: again pure transfer.
    second = model.service_time(2048, 2048)
    assert second == pytest.approx(expected)


def test_random_access_pays_seek_and_rotation():
    params = DiskParams()
    model = DiskModel(params)
    model.service_time(0, 8)
    far = model.service_time(params.total_sectors // 2, 8)
    near = 8 * SECTOR_SIZE / params.sequential_bandwidth
    assert far > near + params.seek_min + params.rotational_latency_avg * 0.9
    # Full-stroke seek bounded by ~2x average seek + rotation + transfer.
    assert far < 2 * params.seek_avg + params.rotational_latency_avg + near + 1e-9


def test_seek_cost_grows_with_distance():
    params = DiskParams()
    m1 = DiskModel(params)
    m1.service_time(0, 8)
    short = m1.service_time(10_000, 8)
    m2 = DiskModel(params)
    m2.service_time(0, 8)
    long = m2.service_time(params.total_sectors - 8, 8)
    assert long > short


def test_interleaved_streams_slower_than_single_stream():
    """Two interleaved sequential streams must cost more than one stream of
    the same total size — the core read/read interference mechanism."""
    params = DiskParams()
    single = DiskModel(params)
    t_single = sum(single.service_time(i * 64, 64) for i in range(64))

    inter = DiskModel(params)
    base_a, base_b = 0, params.total_sectors // 2
    t_inter = 0.0
    for i in range(32):
        t_inter += inter.service_time(base_a + i * 64, 64)
        t_inter += inter.service_time(base_b + i * 64, 64)
    assert t_inter > 3 * t_single


def test_rotational_latency_matches_rpm():
    assert DiskParams(rpm=7200).rotational_latency_avg == pytest.approx(60 / 7200 / 2)


def test_service_time_rejects_bad_args():
    model = DiskModel(DiskParams())
    with pytest.raises(ValueError):
        model.service_time(0, 0)
    with pytest.raises(ValueError):
        model.service_time(-1, 8)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10**9),
                          st.integers(min_value=1, max_value=2560)),
                min_size=1, max_size=50))
def test_service_time_always_positive(requests):
    model = DiskModel(DiskParams())
    for lba, sectors in requests:
        assert model.service_time(lba, sectors) > 0


class TestDiskStats:
    def test_complete_accounting(self):
        stats = DiskStats()
        stats.on_enqueue(0.0)
        stats.on_complete(0.01, is_write=False, sectors=8, service=0.01)
        assert stats.reads_completed == 1
        assert stats.sectors_read == 8
        assert stats.in_flight == 0
        assert stats.io_ticks == pytest.approx(0.01)
        assert stats.weighted_time == pytest.approx(0.01)

    def test_weighted_time_counts_queue_depth(self):
        stats = DiskStats()
        stats.on_enqueue(0.0)
        stats.on_enqueue(0.0)
        stats.observe(1.0)
        assert stats.io_ticks == pytest.approx(1.0)
        assert stats.weighted_time == pytest.approx(2.0)

    def test_merge_counters(self):
        stats = DiskStats()
        stats.on_merge(is_write=True)
        stats.on_merge(is_write=False)
        assert stats.writes_merged == 1
        assert stats.reads_merged == 1

    def test_time_backwards_rejected(self):
        stats = DiskStats()
        stats.observe(1.0)
        with pytest.raises(ValueError):
            stats.observe(0.5)

    def test_overcompletion_rejected(self):
        stats = DiskStats()
        stats.on_enqueue(0.0)
        with pytest.raises(RuntimeError):
            stats.on_complete(0.1, is_write=False, sectors=8, service=0.1, nrequests=2)

    def test_snapshot_contains_all_fields(self):
        stats = DiskStats()
        snap = stats.snapshot(0.0)
        expected = {
            "reads_completed", "reads_merged", "sectors_read", "time_reading",
            "writes_completed", "writes_merged", "sectors_written",
            "time_writing", "queue_insertions", "in_flight", "io_ticks",
            "weighted_time",
        }
        assert set(snap) == expected


class TestServiceBatch:
    def test_matches_sequential_service_times_bitwise(self):
        """One vectorised call must equal N sequential calls bit for bit
        (the batch backend's equivalence contract at the device layer)."""
        lbas = [0, 2048, 10_000_000, 10_002_048, 512]
        secs = [2048, 2048, 2048, 64, 128]
        a = DiskModel(DiskParams())
        sequential = [a.service_time(l, s) for l, s in zip(lbas, secs)]
        b = DiskModel(DiskParams())
        batch = b.service_batch(lbas, secs)
        assert batch.tolist() == sequential
        assert a._head_lba == b._head_lba

    def test_empty_batch_is_noop(self):
        model = DiskModel(DiskParams())
        model.service_time(4096, 64)
        head = model._head_lba
        assert model.service_batch([], []).size == 0
        assert model._head_lba == head

    def test_rejects_bad_batches(self):
        model = DiskModel(DiskParams())
        with pytest.raises(ValueError):
            model.service_batch([0], [0])
        with pytest.raises(ValueError):
            model.service_batch([-1], [8])
