"""Tests for the extent allocator and OST."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.sim.ost import ExtentAllocator


class TestExtentAllocator:
    def test_sequential_access_allocates_contiguously(self):
        alloc = ExtentAllocator(chunk_bytes=MIB)
        segs = alloc.resolve(1, 0, 4 * MIB)
        assert segs == [(0, 4 * MIB)]

    def test_interleaved_objects_are_interleaved_on_disk(self):
        alloc = ExtentAllocator(chunk_bytes=MIB)
        a0 = alloc.resolve(1, 0, MIB)[0][0]
        b0 = alloc.resolve(2, 0, MIB)[0][0]
        a1 = alloc.resolve(1, MIB, MIB)[0][0]
        assert a0 == 0
        assert b0 == MIB
        assert a1 == 2 * MIB  # object 1's second chunk lands after object 2's

    def test_repeated_access_resolves_to_same_extent(self):
        alloc = ExtentAllocator(chunk_bytes=MIB)
        first = alloc.resolve(7, 0, 2 * MIB)
        second = alloc.resolve(7, 0, 2 * MIB)
        assert first == second

    def test_sub_chunk_offsets(self):
        alloc = ExtentAllocator(chunk_bytes=MIB)
        alloc.resolve(1, 0, MIB)
        segs = alloc.resolve(1, 1000, 500)
        assert segs == [(1000, 500)]

    def test_capacity_enforced(self):
        alloc = ExtentAllocator(chunk_bytes=MIB, capacity_bytes=2 * MIB)
        alloc.resolve(1, 0, 2 * MIB)
        with pytest.raises(RuntimeError, match="full"):
            alloc.resolve(2, 0, MIB)

    def test_bad_extent_rejected(self):
        alloc = ExtentAllocator()
        with pytest.raises(ValueError):
            alloc.resolve(1, -1, 10)
        with pytest.raises(ValueError):
            alloc.resolve(1, 0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=3),
                  st.integers(min_value=0, max_value=8 * MIB),
                  st.integers(min_value=1, max_value=2 * MIB)),
        min_size=1, max_size=30))
    def test_resolution_covers_extent_without_gaps(self, accesses):
        alloc = ExtentAllocator(chunk_bytes=MIB)
        for obj, offset, size in accesses:
            segs = alloc.resolve(obj, offset, size)
            assert sum(n for _, n in segs) == size
            for dev_off, nbytes in segs:
                assert dev_off >= 0
                assert nbytes > 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=3),
                  st.integers(min_value=0, max_value=63)),
        min_size=2, max_size=40, unique=True))
    def test_distinct_chunks_never_share_device_space(self, chunks):
        """Two different (object, chunk) pairs map to disjoint extents."""
        alloc = ExtentAllocator(chunk_bytes=MIB)
        starts = {}
        for obj, chunk in chunks:
            seg = alloc.resolve(obj, chunk * MIB, MIB)
            assert len(seg) == 1
            starts[(obj, chunk)] = seg[0][0]
        offsets = sorted(starts.values())
        for a, b in zip(offsets, offsets[1:]):
            assert b - a >= MIB


class TestOST:
    def test_write_then_read_round_trip(self):
        cluster = Cluster()
        env = cluster.env
        ost = cluster.osts[0]

        def proc():
            yield ost.write(1, 0, MIB)
            t0 = env.now
            yield ost.read(1, 0, MIB)
            return env.now - t0

        dt = env.run(until=env.process(proc()))
        assert ost.cache.read_hits == 1
        assert dt < 1e-3  # cache hit, memory speed

    def test_cold_read_takes_disk_time(self):
        cluster = Cluster()
        env = cluster.env
        ost = cluster.osts[0]

        def proc():
            t0 = env.now
            yield ost.read(1, 0, MIB)
            return env.now - t0

        dt = env.run(until=env.process(proc()))
        assert dt > 5e-3  # at least seek + transfer
        assert ost.device.stats.reads_completed >= 1
