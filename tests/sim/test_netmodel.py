"""Tests for the max-min fair-share flow network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import AllOf, Environment
from repro.sim.netmodel import FlowNetwork, Link


def run_transfers(specs, capacities):
    """Run transfers (size, link_indices, start_delay); return finish times."""
    env = Environment()
    net = FlowNetwork(env)
    links = [Link(f"l{i}", c) for i, c in enumerate(capacities)]
    finishes = {}

    def one(i, size, link_idx, delay):
        yield env.timeout(delay)
        yield net.transfer(size, tuple(links[j] for j in link_idx))
        finishes[i] = env.now

    procs = [env.process(one(i, *spec)) for i, spec in enumerate(specs)]
    env.run(until=AllOf(env, procs))
    return finishes, net


def test_single_flow_full_bandwidth():
    finishes, _ = run_transfers([(1000.0, (0,), 0.0)], [100.0])
    assert finishes[0] == pytest.approx(10.0)


def test_two_flows_share_one_link_equally():
    finishes, _ = run_transfers(
        [(1000.0, (0,), 0.0), (1000.0, (0,), 0.0)], [100.0]
    )
    # Both progress at 50 B/s until both finish at t=20.
    assert finishes[0] == pytest.approx(20.0)
    assert finishes[1] == pytest.approx(20.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    finishes, _ = run_transfers(
        [(500.0, (0,), 0.0), (1500.0, (0,), 0.0)], [100.0]
    )
    # Equal share 50 B/s: flow0 done at 10. Flow1 has 1000 left, now 100 B/s.
    assert finishes[0] == pytest.approx(10.0)
    assert finishes[1] == pytest.approx(20.0)


def test_bottleneck_is_the_slowest_link_on_path():
    finishes, _ = run_transfers([(1000.0, (0, 1), 0.0)], [100.0, 10.0])
    assert finishes[0] == pytest.approx(100.0)


def test_max_min_allocation_across_links():
    # f0 on links (0,1); f1 on link 1 only; link0 cap 100, link1 cap 30.
    # Max-min: both flows bottlenecked on link1 at 15 B/s each.
    finishes, _ = run_transfers(
        [(150.0, (0, 1), 0.0), (150.0, (1,), 0.0)], [100.0, 30.0]
    )
    assert finishes[0] == pytest.approx(10.0)
    assert finishes[1] == pytest.approx(10.0)


def test_unbottlenecked_flow_gets_leftover():
    # f0 on (0,); f1 on (0,1). link0=100, link1=20.
    # f1 limited to 20 by link1; f0 gets the remaining 80.
    finishes, _ = run_transfers(
        [(800.0, (0,), 0.0), (200.0, (0, 1), 0.0)], [100.0, 20.0]
    )
    assert finishes[0] == pytest.approx(10.0)
    assert finishes[1] == pytest.approx(10.0)


def test_staggered_arrival_reallocates():
    # Flow0 alone for 5s (500 done), then shares with flow1.
    finishes, _ = run_transfers(
        [(1000.0, (0,), 0.0), (250.0, (0,), 5.0)], [100.0]
    )
    # From t=5: 50 B/s each. Flow1 done at t=10; flow0 then has 250 left
    # at 100 B/s -> t=12.5.
    assert finishes[1] == pytest.approx(10.0)
    assert finishes[0] == pytest.approx(12.5)


def test_zero_size_transfer_completes_immediately():
    finishes, _ = run_transfers([(0.0, (0,), 1.0)], [100.0])
    assert finishes[0] == pytest.approx(1.0)


def test_negative_size_rejected():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    with pytest.raises(ValueError):
        net.transfer(-1.0, (link,))


def test_link_requires_positive_capacity():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


def test_no_flows_remain_after_all_complete():
    finishes, net = run_transfers(
        [(100.0, (0,), 0.0), (100.0, (0,), 0.5)], [100.0]
    )
    assert net.active_flows == 0


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    cap=st.floats(min_value=1.0, max_value=1e6),
)
def test_conservation_and_capacity_bound(sizes, cap):
    """Total delivered bytes equal total offered; single link never exceeds
    capacity (finish no earlier than total/capacity)."""
    specs = [(s, (0,), 0.0) for s in sizes]
    finishes, net = run_transfers(specs, [cap])
    total = sum(sizes)
    latest = max(finishes.values())
    assert latest >= total / cap * (1 - 1e-6)
    assert net.bytes_delivered == pytest.approx(total, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e5),  # size
            st.integers(min_value=0, max_value=2),  # client link
            st.integers(min_value=3, max_value=4),  # server link
            st.floats(min_value=0.0, max_value=5.0),  # start delay
        ),
        min_size=1,
        max_size=10,
    )
)
def test_multilink_flows_all_complete(flows):
    specs = [(size, (c, s), d) for size, c, s, d in flows]
    finishes, net = run_transfers(specs, [100.0] * 5)
    assert len(finishes) == len(specs)
    assert net.active_flows == 0
