"""Tests for the namespace and striping layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MIB
from repro.sim.filesystem import FileSystem, StripeLayout


def test_create_assigns_round_robin_targets():
    fs = FileSystem(n_osts=4)
    files = [fs.create(f"/f{i}") for i in range(8)]
    targets = [f.layout.osts[0] for f in files]
    assert targets == [0, 1, 2, 3, 0, 1, 2, 3]


def test_create_duplicate_raises():
    fs = FileSystem(n_osts=2)
    fs.create("/f")
    with pytest.raises(FileExistsError):
        fs.create("/f")


def test_lookup_missing_raises():
    with pytest.raises(FileNotFoundError):
        FileSystem(n_osts=2).lookup("/missing")


def test_unlink_removes():
    fs = FileSystem(n_osts=2)
    fs.create("/f")
    fs.unlink("/f")
    assert "/f" not in fs
    with pytest.raises(FileNotFoundError):
        fs.unlink("/f")


def test_stripe_count_all_osts():
    fs = FileSystem(n_osts=6)
    f = fs.create("/wide", stripe_count=-1)
    assert sorted(f.layout.osts) == list(range(6))


def test_stripe_count_clamped_to_osts():
    fs = FileSystem(n_osts=3)
    f = fs.create("/wide", stripe_count=10)
    assert f.layout.stripe_count == 3


def test_ensure_is_idempotent():
    fs = FileSystem(n_osts=2)
    a = fs.ensure("/data", 10 * MIB)
    b = fs.ensure("/data", 5 * MIB)
    assert a is b
    assert b.size == 10 * MIB


def test_object_ids_unique():
    fs = FileSystem(n_osts=3)
    f1 = fs.create("/a", stripe_count=3)
    f2 = fs.create("/b", stripe_count=3)
    ids = set(f1.layout.objects) | set(f2.layout.objects)
    assert len(ids) == 6


class TestStripeMapping:
    def layout(self, stripe_count=3, stripe_size=MIB):
        return StripeLayout(
            stripe_size=stripe_size,
            osts=tuple(range(stripe_count)),
            objects=tuple(100 + i for i in range(stripe_count)),
        )

    def test_single_stripe_extent(self):
        pieces = self.layout().map_extent(0, 1000)
        assert pieces == [(0, 100, 0, 1000)]

    def test_extent_spanning_stripes(self):
        pieces = self.layout().map_extent(MIB - 10, 20)
        assert pieces == [(0, 100, MIB - 10, 10), (1, 101, 0, 10)]

    def test_second_stripe_round(self):
        # Offset 3 MiB with 3 stripes wraps to OST 0, object offset 1 MiB.
        pieces = self.layout().map_extent(3 * MIB, 100)
        assert pieces == [(0, 100, MIB, 100)]

    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError):
            self.layout().map_extent(-1, 10)
        with pytest.raises(ValueError):
            self.layout().map_extent(0, 0)

    @settings(max_examples=100, deadline=None)
    @given(
        offset=st.integers(min_value=0, max_value=64 * MIB),
        size=st.integers(min_value=1, max_value=16 * MIB),
        stripe_count=st.integers(min_value=1, max_value=6),
    )
    def test_mapping_is_a_partition(self, offset, size, stripe_count):
        """Mapped pieces exactly cover the extent, with no overlap, and each
        piece stays inside one stripe."""
        layout = self.layout(stripe_count=stripe_count)
        pieces = layout.map_extent(offset, size)
        assert sum(p[3] for p in pieces) == size
        # Pieces are contiguous in file order.
        pos = offset
        for ost, obj, obj_off, nbytes in pieces:
            stripe_no = pos // layout.stripe_size
            assert ost == layout.osts[stripe_no % stripe_count]
            assert obj == layout.objects[stripe_no % stripe_count]
            expected_obj_off = (stripe_no // stripe_count) * layout.stripe_size + (
                pos - stripe_no * layout.stripe_size
            )
            assert obj_off == expected_obj_off
            # A piece never crosses a stripe boundary.
            assert (pos % layout.stripe_size) + nbytes <= layout.stripe_size
            pos += nbytes
        assert pos == offset + size


def test_layout_validation():
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=0, osts=(0,), objects=(1,))
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=MIB, osts=(0, 1), objects=(1,))
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=MIB, osts=(), objects=())
