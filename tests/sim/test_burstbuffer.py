"""Tests for the node-local burst buffer tier."""

import numpy as np
import pytest

from repro.common.units import GIB, MIB
from repro.sim.burstbuffer import (
    BurstBuffer,
    BurstBufferedSession,
    BurstBufferParams,
)
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import AllOf
from repro.workloads.base import launch_interference
from repro.workloads.io500 import make_io500_task


def make_bb_session(cluster, job="app", rank=0, node=0, **params):
    inner = cluster.session(job, rank, node)
    return BurstBufferedSession.attach(
        inner, BurstBufferParams(**params) if params else None
    )


def test_params_validation():
    with pytest.raises(ValueError):
        BurstBufferParams(capacity_bytes=0)
    with pytest.raises(ValueError):
        BurstBufferParams(write_bandwidth=0)


def test_writes_absorbed_at_local_speed():
    cluster = Cluster()
    sess = make_bb_session(cluster)
    env = cluster.env

    def body():
        yield from sess.create("/f")
        for i in range(8):
            yield from sess.write("/f", i * MIB, MIB)

    env.run(until=env.process(body()))
    writes = [r for r in cluster.collector.for_job("app")
              if r.op.value == "write"]
    assert len(writes) == 8
    # NVMe-speed absorb: ~0.5 ms per MiB, far below PFS latency.
    assert max(r.duration for r in writes) < 2e-3
    assert writes[0].servers == tuple()


def test_buffered_data_drains_to_pfs():
    cluster = Cluster()
    sess = make_bb_session(cluster)
    env = cluster.env

    def body():
        yield from sess.create("/f")
        for i in range(4):
            yield from sess.write("/f", i * MIB, MIB)

    env.run(until=env.process(body()))
    env.run()  # let the drainer finish
    assert sess.buffer.level == 0
    assert sess.buffer.drained_bytes == 4 * MIB
    # The PFS devices really received the data.
    flushed = sum(cluster.server_counters(s)["sectors_written"]
                  for s in cluster.servers)
    assert flushed * 512 >= 4 * MIB


def test_reads_of_resident_data_served_locally():
    cluster = Cluster()
    sess = make_bb_session(cluster, capacity_bytes=GIB)
    env = cluster.env
    served = {}

    def body():
        yield from sess.create("/f")
        yield from sess.write("/f", 0, MIB)
        # Still resident (drainer may not have finished): local read.
        t0 = env.now
        yield from sess.read("/f", 0, MIB)
        served["latency"] = env.now - t0

    env.run(until=env.process(body()))
    assert served["latency"] < 1e-3


def test_capacity_backpressure():
    cluster = Cluster()
    sess = make_bb_session(cluster, capacity_bytes=4 * MIB)
    env = cluster.env

    def body():
        yield from sess.create("/f")
        for i in range(16):
            yield from sess.write("/f", i * MIB, MIB)

    env.run(until=env.process(body()))
    # 16 MiB through a 4 MiB buffer: must have waited on the drain path,
    # i.e. total time >= PFS time for the overflow portion.
    assert env.now > 12 * MIB / cluster.config.net_bandwidth
    env.run()
    assert sess.buffer.level == 0


def test_oversized_write_rejected():
    cluster = Cluster()
    sess = make_bb_session(cluster, capacity_bytes=MIB)

    def body():
        yield from sess.create("/f")
        yield from sess.write("/f", 0, 2 * MIB)

    with pytest.raises(ValueError, match="larger than"):
        cluster.env.run(until=cluster.env.process(body()))


def test_metadata_ops_pass_through():
    cluster = Cluster()
    sess = make_bb_session(cluster)
    env = cluster.env

    def body():
        yield from sess.mkdir("/d")
        yield from sess.create("/d/f")
        yield from sess.stat("/d/f")
        yield from sess.close("/d/f")

    env.run(until=env.process(body()))
    ops = [r.op.value for r in cluster.collector.for_job("app")]
    assert ops == ["mkdir", "create", "stat", "close"]


def test_burst_buffer_equivalent_across_backends():
    """Burst-buffered runs agree between the event and batch backends.

    Mirrors the batch-equivalence style of tests/sim/test_batch_backend:
    the wrapped session, the hidden drain session and the interference
    all route through the active backend, and the batch contract says
    every primitive timing event lands at the identical simulated
    instant — so records, drain totals and server counters must be
    byte-identical across backends.
    """

    def run(backend: str):
        cluster = Cluster(ClusterConfig(sim_backend=backend))
        env = cluster.env
        noise = make_io500_task("ior-easy-write", name="noise", ranks=2,
                                scale=0.1)
        launch_interference(cluster, noise, [4, 5], seed=1, record=False)
        sess = make_bb_session(cluster, capacity_bytes=8 * MIB)

        def body():
            yield from sess.create("/f")
            for i in range(16):  # 16 MiB through an 8 MiB buffer:
                yield from sess.write("/f", i * MIB, MIB)  # backpressure
            for i in range(4):
                yield from sess.read("/f", i * MIB, MIB)
            yield from sess.stat("/f")

        env.run(until=env.process(body()))
        env.run(until=env.now + 0.5)  # drain finishes under live noise
        assert sess.buffer.level == 0
        records = [
            (r.job, r.rank, r.op_id, r.op, r.path, r.offset, r.size,
             r.servers, r.start, r.end)
            for r in cluster.collector.for_job("app")
        ]
        counters = [(server, sorted(cluster.server_counters(server).items()))
                    for server in cluster.servers]
        return records, sess.buffer.drained_bytes, counters

    assert run("event") == run("batch")


def test_burst_buffer_shields_writes_from_interference():
    """The related-work claim: under heavy write noise, a burst-buffered
    writer's op latency stays near its quiet latency."""

    def run(buffered: bool, with_noise: bool):
        cluster = Cluster()
        env = cluster.env
        if with_noise:
            noise = make_io500_task("ior-easy-write", name="noise", ranks=3,
                                    scale=0.25)
            launch_interference(cluster, noise, [4, 5, 6], seed=1,
                                record=False)
            env.run(until=1.0)
        inner = cluster.session("app", 0, 0)
        sess = (BurstBufferedSession.attach(inner) if buffered else inner)

        def body():
            yield from sess.create("/f")
            for i in range(16):
                yield from sess.write("/f", i * MIB, MIB)

        env.run(until=env.process(body()))
        writes = [r for r in cluster.collector.for_job("app")
                  if r.op.value == "write"]
        return float(np.mean([r.duration for r in writes]))

    direct_noisy = run(buffered=False, with_noise=True)
    bb_noisy = run(buffered=True, with_noise=True)
    bb_quiet = run(buffered=True, with_noise=False)
    assert bb_noisy < direct_noisy / 3  # shielded
    assert bb_noisy < 5 * bb_quiet  # and close to its quiet self
