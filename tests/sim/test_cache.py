"""Tests for the write-back page cache."""

import pytest

from repro.common.units import KIB, MIB
from repro.sim.cache import CacheParams, PageCache
from repro.sim.disk import DiskModel, DiskParams
from repro.sim.engine import AllOf, Environment
from repro.sim.ost import ExtentAllocator
from repro.sim.scheduler import BlockDevice


def make_cache(env=None, **params):
    env = env or Environment()
    device = BlockDevice(env, DiskModel(DiskParams()))
    alloc = ExtentAllocator()
    cache = PageCache(env, device, CacheParams(**params), alloc.resolve)
    return env, cache, device


def test_write_completes_at_memory_speed_when_cache_empty():
    env, cache, _ = make_cache()

    def proc():
        yield env.process(cache.write(1, 0, MIB))
        return env.now

    t = env.run(until=env.process(proc()))
    assert t == pytest.approx(MIB / CacheParams().memcpy_bandwidth)


def test_dirty_data_is_flushed_to_disk():
    env, cache, device = make_cache()

    def proc():
        yield env.process(cache.write(1, 0, MIB))

    env.run(until=env.process(proc()))
    env.run()  # let the flusher drain
    assert cache.dirty_bytes == 0
    assert device.stats.sectors_written == MIB // 512


def test_writers_throttled_when_over_dirty_limit():
    env, cache, _ = make_cache(capacity_bytes=8 * MIB, dirty_limit_fraction=0.25)
    # dirty limit = 2 MiB; write 8 x 1 MiB: writers must block on the disk.
    finish = {}

    def writer(i):
        yield env.process(cache.write(1, i * MIB, MIB))
        finish[i] = env.now

    procs = [env.process(writer(i)) for i in range(8)]
    env.run(until=AllOf(env, procs))
    assert cache.throttle_events > 0
    # Throttled writes take at least the disk time for the overflow bytes.
    disk_time_per_mib = MIB / DiskParams().sequential_bandwidth
    assert max(finish.values()) >= 5 * disk_time_per_mib


def test_read_after_write_hits_cache():
    env, cache, device = make_cache()

    def proc():
        yield env.process(cache.write(1, 0, MIB))
        yield env.process(cache.read(1, 0, MIB))

    env.run(until=env.process(proc()))
    assert cache.read_hits == 1
    assert cache.read_misses == 0
    assert device.stats.reads_completed == 0


def test_cold_read_misses_and_reads_disk():
    env, cache, device = make_cache()

    def proc():
        yield env.process(cache.read(1, 0, MIB))

    env.run(until=env.process(proc()))
    assert cache.read_misses == 1
    assert device.stats.sectors_read >= MIB // 512


def test_readahead_turns_sequential_reads_into_hits():
    env, cache, _ = make_cache(readahead_bytes=2 * MIB)

    def proc():
        for i in range(8):
            yield env.process(cache.read(1, i * 256 * KIB, 256 * KIB))

    env.run(until=env.process(proc()))
    # First read establishes the stream (no readahead yet); the second
    # miss arms readahead and covers the remaining six reads.
    assert cache.read_misses == 2
    assert cache.read_hits == 6


def test_random_reads_get_no_readahead():
    env, cache, device = make_cache(readahead_bytes=2 * MIB)

    def proc():
        # Single-shot reads of distinct objects (mdtest-hard style).
        for obj in range(1, 5):
            yield env.process(cache.read(obj, 0, 4 * KIB))

    env.run(until=env.process(proc()))
    assert cache.read_misses == 4
    # No readahead: the device moved only ~4 KiB per read.
    assert device.stats.sectors_read <= 4 * (4 * KIB // 512) + 8


def test_lru_eviction_bounds_cached_chunks():
    env, cache, _ = make_cache(capacity_bytes=1 * MIB, chunk_bytes=256 * KIB,
                               readahead_bytes=0)

    def proc():
        for i in range(16):
            yield env.process(cache.read(1, i * 256 * KIB, 256 * KIB))
        # Re-reading the first chunk must miss: it was evicted.
        yield env.process(cache.read(1, 0, 256 * KIB))

    env.run(until=env.process(proc()))
    assert cache.read_misses == 17
    assert cache.cached_chunk_count <= 4


def test_oversized_single_write_rejected():
    env, cache, _ = make_cache(capacity_bytes=4 * MIB, dirty_limit_fraction=0.25)

    def proc():
        yield env.process(cache.write(1, 0, 2 * MIB))

    with pytest.raises(ValueError, match="dirty limit"):
        env.run(until=env.process(proc()))


def test_zero_size_operations_rejected():
    env, cache, _ = make_cache()
    with pytest.raises(ValueError):
        next(cache.write(1, 0, 0))
    with pytest.raises(ValueError):
        next(cache.read(1, 0, 0))


def test_flush_marks_chunks_clean_but_cached():
    env, cache, device = make_cache()

    def proc():
        yield env.process(cache.write(1, 0, MIB))

    env.run(until=env.process(proc()))
    env.run()
    assert cache.dirty_bytes == 0
    assert cache.dirty_chunk_count == 0
    assert cache.cached_chunk_count > 0

    def reader():
        yield env.process(cache.read(1, 0, MIB))

    env.run(until=env.process(reader()))
    assert cache.read_hits == 1
