"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    CountEvent,
    Environment,
    Event,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(1.5)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for d in (0.5, 0.25, 0.25):
            yield env.timeout(d)
            times.append(env.now)

    env.run(until=env.process(proc()))
    assert times == pytest.approx([0.5, 0.75, 1.0])


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_value_passed_to_waiter():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(1.0)
        ev.succeed("payload")

    def waiter():
        value = yield ev
        return value

    env.process(trigger())
    p = env.process(waiter())
    assert env.run(until=p) == "payload"


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_failed_event_raises_in_process():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(0.1)
        ev.fail(RuntimeError("boom"))

    def waiter():
        with pytest.raises(RuntimeError, match="boom"):
            yield ev
        return "handled"

    env.process(trigger())
    p = env.process(waiter())
    assert env.run(until=p) == "handled"


def test_process_exception_propagates_to_run():
    env = Environment()

    def bad():
        yield env.timeout(0.1)
        raise ValueError("dead")

    with pytest.raises(ValueError, match="dead"):
        env.run(until=env.process(bad()))


def test_process_yielding_non_event_fails():
    env = Environment()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="must yield Event"):
        env.run(until=env.process(bad()))


def test_yield_already_fired_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("old")

    def proc():
        yield env.timeout(1.0)  # ev fires long before this
        value = yield ev
        return (env.now, value)

    now, value = env.run(until=env.process(proc()))
    assert now == pytest.approx(1.0)  # no extra delay
    assert value == "old"


def test_allof_waits_for_all_children():
    env = Environment()

    def worker(delay, tag):
        yield env.timeout(delay)
        return tag

    def parent():
        procs = [env.process(worker(d, i)) for i, d in enumerate((0.3, 0.1, 0.2))]
        values = yield AllOf(env, procs)
        return (env.now, values)

    now, values = env.run(until=env.process(parent()))
    assert now == pytest.approx(0.3)
    assert values == [0, 1, 2]  # original order, not completion order


def test_allof_empty_fires_immediately():
    env = Environment()

    def parent():
        values = yield AllOf(env, [])
        return values

    assert env.run(until=env.process(parent())) == []


def test_allof_propagates_failure():
    env = Environment()

    def ok():
        yield env.timeout(0.5)

    def bad():
        yield env.timeout(0.1)
        raise RuntimeError("child failed")

    def parent():
        yield AllOf(env, [env.process(ok()), env.process(bad())])

    with pytest.raises(RuntimeError, match="child failed"):
        env.run(until=env.process(parent()))


def test_run_until_float_deadline():
    env = Environment()
    hits = []

    def proc():
        while True:
            yield env.timeout(1.0)
            hits.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert hits == pytest.approx([1.0, 2.0, 3.0])
    assert env.now == pytest.approx(3.5)


def test_run_until_event_on_drained_queue_raises():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=ev)


def test_deterministic_fifo_ordering_of_simultaneous_events():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_nested_processes():
    env = Environment()

    def inner():
        yield env.timeout(0.2)
        return "inner-done"

    def outer():
        value = yield env.process(inner())
        return value

    assert env.run(until=env.process(outer())) == "inner-done"


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    p = env.process(proc())
    assert p.is_alive
    env.run(until=p)
    assert not p.is_alive


def test_run_until_failed_event_reraises():
    """A failed stop event must surface its exception, not return it."""
    env = Environment()
    ev = Event(env)

    def saboteur():
        yield env.timeout(1.5)
        ev.fail(RuntimeError("boom"))

    env.process(saboteur())
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=ev)
    assert env.now == pytest.approx(1.5)


def test_allof_with_already_failed_child():
    """A child that failed before the AllOf was built must fail the
    conjunction immediately, not leave it waiting forever."""
    env = Environment()
    bad = Event(env)
    bad.fail(RuntimeError("dead on arrival"))
    env.run()  # deliver the failure; bad is now fired-and-failed
    assert bad._fired and not bad._ok

    ok = Event(env)
    ok.succeed("fine")
    conj = AllOf(env, [ok, bad])
    with pytest.raises(RuntimeError, match="dead on arrival"):
        env.run(until=conj)


def test_allof_failed_child_among_pending():
    """First failure wins even while other children are still pending."""
    env = Environment()
    slow = Event(env)

    def failer():
        yield env.timeout(0.5)
        raise RuntimeError("mid-flight failure")

    conj = AllOf(env, [env.process(failer()), slow])
    with pytest.raises(RuntimeError, match="mid-flight failure"):
        env.run(until=conj)


def test_count_event_zero_fires_immediately():
    """A zero-length batch's completion event succeeds on the next tick."""
    env = Environment()
    done = CountEvent(env, 0)
    assert done.remaining == 0
    assert env.run(until=done) == []
    assert env.now == 0.0


def test_count_event_fires_on_last_completion():
    env = Environment()
    done = CountEvent(env, 3)

    def worker(delay):
        yield env.timeout(delay)
        done.complete()

    for delay in (1.0, 3.0, 2.0):
        env.process(worker(delay))
    env.run(until=done)
    assert env.now == pytest.approx(3.0)
    assert done.remaining == 0


def test_count_event_over_completion_raises():
    env = Environment()
    done = CountEvent(env, 1)
    done.complete()
    with pytest.raises(SimulationError):
        done.complete()


def test_count_event_negative_expected_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        CountEvent(env, -1)


def test_after_runs_callback_at_delay():
    env = Environment()
    seen: list[float] = []
    env.after(2.0, lambda _ev: seen.append(env.now))
    env.after(1.0, lambda _ev: seen.append(env.now))
    env.run()
    assert seen == [1.0, 2.0]


def test_defer_runs_callback_same_instant_fifo():
    """defer() fires at the current timestamp, after already-queued
    same-time events (the batch backend's bookkeeping-tick primitive)."""
    env = Environment()
    seen: list[str] = []
    env.after(0.0, lambda _ev: seen.append("after"))
    env.defer(lambda _ev: seen.append("defer"))
    env.run()
    assert env.now == 0.0
    assert seen == ["after", "defer"]
