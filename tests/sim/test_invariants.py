"""Property-based invariant tests across the simulator stack.

These go after conservation laws rather than specific values: nothing the
workloads submit may be lost, duplicated or served out of thin air,
regardless of arrival pattern.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import KIB, MIB
from repro.sim.cache import CacheParams, PageCache
from repro.sim.cluster import Cluster
from repro.sim.disk import DiskModel, DiskParams
from repro.sim.engine import AllOf, Environment
from repro.sim.ost import ExtentAllocator
from repro.sim.scheduler import BlockDevice


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**7),   # lba
        st.integers(min_value=1, max_value=2048),    # sectors
        st.booleans(),                               # is_write
        st.floats(min_value=0.0, max_value=0.05),    # submit delay
    ),
    min_size=1, max_size=40,
))
def test_block_scheduler_conserves_requests(requests):
    """Every submitted request completes exactly once; sector counters
    account for every sector exactly once (merging included)."""
    env = Environment()
    dev = BlockDevice(env, DiskModel(DiskParams()))
    completions = []

    def submit(i, lba, sectors, is_write, delay):
        yield env.timeout(delay)
        yield dev.submit(lba, sectors, is_write)
        completions.append(i)

    procs = [env.process(submit(i, *req)) for i, req in enumerate(requests)]
    env.run(until=AllOf(env, procs))
    assert sorted(completions) == list(range(len(requests)))
    stats = dev.stats
    n_reads = sum(1 for r in requests if not r[2])
    n_writes = len(requests) - n_reads
    assert stats.reads_completed == n_reads
    assert stats.writes_completed == n_writes
    # Merged dispatches may cover gap-free unions, so sectors moved are
    # at least the sectors requested per direction.
    read_sectors = sum(s for _, s, w, _ in requests if not w)
    write_sectors = sum(s for _, s, w, _ in requests if w)
    assert stats.sectors_read >= read_sectors
    assert stats.sectors_written >= write_sectors
    assert dev.queue_depth == 0


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),       # object id
        st.integers(min_value=0, max_value=32),      # MiB offset
        st.integers(min_value=1, max_value=1024),    # KiB size
    ),
    min_size=1, max_size=25,
))
def test_cache_write_conservation(writes):
    """All dirty bytes eventually reach the device; dirty gauge drains to
    zero; no throttled writer is left stranded."""
    env = Environment()
    dev = BlockDevice(env, DiskModel(DiskParams()))
    alloc = ExtentAllocator()
    cache = PageCache(env, dev, CacheParams(capacity_bytes=8 * MIB), alloc.resolve)

    def writer(obj, off_mib, size_kib):
        yield env.process(cache.write(obj, off_mib * MIB, size_kib * KIB))

    procs = [env.process(writer(*w)) for w in writes]
    env.run(until=AllOf(env, procs))
    env.run()  # drain the flusher completely
    assert cache.dirty_bytes == 0
    assert not cache._throttled
    total_kib = sum(s for _, _, s in writes)
    # Sector rounding makes the device move at least the written bytes.
    assert dev.stats.sectors_written * 512 >= total_kib * KIB


@settings(max_examples=10, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=3),
    files_per_job=st.integers(min_value=1, max_value=3),
    mib_per_file=st.integers(min_value=1, max_value=4),
)
def test_cluster_end_to_end_conservation(n_jobs, files_per_job, mib_per_file):
    """Client-visible writes equal trace-recorded bytes; every op in the
    trace has positive duration and valid servers."""
    cluster = Cluster()
    env = cluster.env

    def writer(sess, path):
        yield from sess.create(path)
        for i in range(mib_per_file):
            yield from sess.write(path, i * MIB, MIB)

    procs = []
    for j in range(n_jobs):
        for f in range(files_per_job):
            sess = cluster.session(f"job{j}", f, (j + f) % 7)
            procs.append(env.process(writer(sess, f"/j{j}/f{f}")))
    env.run(until=AllOf(env, procs))
    recs = cluster.collector.records
    written = sum(r.size for r in recs if r.op.value == "write")
    assert written == n_jobs * files_per_job * mib_per_file * MIB
    for r in recs:
        assert r.end >= r.start
        assert r.servers, f"op {r.key} touched no servers"


def test_network_conservation_under_cluster_load():
    """Bytes delivered by the flow network match payload bytes moved."""
    cluster = Cluster()
    env = cluster.env
    sess = cluster.session("job", 0, 0)

    def body():
        yield from sess.create("/f")
        for i in range(8):
            yield from sess.write("/f", i * MIB, MIB)
        for i in range(8):
            yield from sess.read("/f", i * MIB, MIB)

    env.run(until=env.process(body()))
    assert cluster.net.bytes_delivered == pytest.approx(16 * MIB, rel=1e-9)
