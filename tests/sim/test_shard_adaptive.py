"""The adaptive window policy: byte-identity and the λ-safety invariant.

``WindowPolicy("adaptive")`` (the default) elides coordinator barriers
two ways — root-quiet widened spans and guarded domain-ahead rounds
(:mod:`repro.sim.shard` module docs) — while the run's records, server
samples, duration and metadata stay byte-identical to the fixed-λ
protocol at every shard count, on both request backends, including the
fault/abort path.  These tests pin that contract, the λ-safety invariant
of every widened span (no cross-domain effect may land before a span's
reached end), the policy spec parsing, and the ``n_domains == 1``
bypass.
"""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentConfig, experiment_cluster
from repro.obs.metrics import REGISTRY
from repro.sim.shard import WindowPolicy, execute_run_sharded

from tests.sim.test_shard_equivalence import (
    assert_runs_identical,
    config_for,
    noise,
    target,
)


# -- policy spec parsing ------------------------------------------------------


def test_parse_fixed_and_adaptive():
    assert WindowPolicy.parse("fixed").mode == "fixed"
    assert not WindowPolicy.parse("fixed").adaptive
    assert WindowPolicy.parse("adaptive").adaptive
    assert WindowPolicy.parse("adaptive").cap is None


def test_parse_adaptive_cap():
    policy = WindowPolicy.parse("adaptive:cap=0.01")
    assert policy.adaptive and policy.cap == 0.01


@pytest.mark.parametrize("spec", [
    "", "bogus", "adaptive:cap=", "adaptive:cap=zero", "adaptive:cap=-1",
    "adaptive:cap=0", "fixed:cap=0.01", "adaptive:x=1",
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        WindowPolicy.parse(spec)


def test_resolve_passthrough_and_default():
    policy = WindowPolicy(mode="fixed")
    assert WindowPolicy.resolve(policy) is policy
    assert WindowPolicy.resolve(None).adaptive
    assert WindowPolicy.resolve("fixed").mode == "fixed"


def test_cap_must_clear_sample_interval():
    cfg = config_for("batch")
    with pytest.raises(ValueError, match="sample_interval"):
        execute_run_sharded(target(), noise(), cfg,
                            window_policy=f"adaptive:cap={cfg.sample_interval}")


# -- byte-identity ------------------------------------------------------------


@pytest.mark.parametrize("backend", ["event", "batch"])
def test_adaptive_matches_fixed_across_shard_counts(backend):
    """fixed/shards=1 is the reference; adaptive reproduces it exactly
    at every shard count, on both backends."""
    cfg = config_for(backend)
    ref = execute_run_sharded(target(), noise(), cfg, shards=1,
                              window_policy="fixed")
    for shards in (1, 2, 3):
        run = execute_run_sharded(target(), noise(), cfg, shards=shards,
                                  window_policy="adaptive")
        assert_runs_identical(ref, run)


def test_adaptive_pays_fewer_windows():
    cfg = config_for("batch")
    REGISTRY.reset()
    execute_run_sharded(target(), noise(), cfg, window_policy="fixed")
    fixed = REGISTRY.counter("shard.windows").value
    REGISTRY.reset()
    execute_run_sharded(target(), noise(), cfg, window_policy="adaptive")
    adaptive = REGISTRY.counter("shard.windows").value
    elided = REGISTRY.counter("shard.windows_elided").value
    assert adaptive < fixed
    assert elided > 0
    # Every elided sub-window is a barrier the fixed policy paid: the
    # two counts must close the books against the fixed total.
    assert adaptive + elided <= fixed


def test_adaptive_abort_path_identical():
    """Fault injection under adaptive windows truncates identically."""
    cfg = config_for("batch")
    ref = execute_run_sharded(target(), noise(), cfg, shards=1,
                              abort_at=0.7, window_policy="fixed")
    run = execute_run_sharded(target(), noise(), cfg, shards=3,
                              abort_at=0.7, window_policy="adaptive")
    assert ref.metadata["aborted"] is True
    assert_runs_identical(ref, run)


def test_adaptive_capped_still_identical():
    """A tiny cap only shrinks spans, never changes output."""
    cfg = config_for("batch")
    ref = execute_run_sharded(target(), noise(), cfg, window_policy="fixed")
    run = execute_run_sharded(target(), noise(), cfg,
                              window_policy="adaptive:cap=0.001")
    assert_runs_identical(ref, run)


# -- λ-safety invariant (property test over the audit stream) ----------------


def test_widened_spans_respect_lambda_safety():
    """Every widened span proves no cross-domain effect precedes its end.

    The audit hook records, after each span, the earliest undelivered
    message effect and both sides' next event times.  λ-safety means no
    effect time < the span's reached end: for root-quiet spans the
    domains were untouched and must still clear the end; for guarded
    rounds the root ran to the end, so its posts' effects must all land
    at or past it.
    """
    cfg = config_for("batch")
    audit: list = []
    execute_run_sharded(target(), noise(), cfg,
                        window_policy=WindowPolicy(mode="adaptive",
                                                   audit=audit))
    assert audit, "adaptive run elided no spans"
    kinds = {entry["kind"] for entry in audit}
    assert kinds <= {"root", "guarded"}
    for entry in audit:
        begin, end = entry["begin"], entry["end"]
        assert begin < end <= entry["planned"]
        assert end - begin <= cfg.sample_interval + 1e-12
        # No undelivered effect may precede the span end.
        assert entry["min_effect"] >= end
        if entry["kind"] == "root":
            # Root-quiet: domains untouched, their horizon cleared the
            # span and still clears its reached end.
            assert entry["domain_next"] >= end
        else:
            # Guarded round: the root was frozen during the domain
            # lockstep and then ran to the end; any reaction it posted
            # lands at or past it (asserted via min_effect above), and
            # its own queue cleared the span.
            assert entry["root_next"] >= end
            assert entry["subwindows"] >= 0
            if entry["completions"]:
                # The first-completion guard: a completing round stops
                # within λ of its first completion, so the whole span
                # past the completion sub-window start is ≤ λ wide.
                assert end <= entry["planned"]
    # Both elision mechanisms must actually engage on this workload.
    assert "root" in kinds and "guarded" in kinds


# -- n_domains == 1 bypass ----------------------------------------------------


def single_domain_config(backend: str = "batch") -> ExperimentConfig:
    cluster = dataclasses.replace(experiment_cluster(), n_oss=1,
                                  osts_per_oss=2, sim_backend=backend)
    return ExperimentConfig(cluster=cluster, window_size=0.25,
                            sample_interval=0.125, warmup=0.5, seed=0)


def test_single_domain_bypass_equivalence():
    """One OSS domain: the bookkeeping bypass changes nothing observable,
    at either shard count or policy."""
    cfg = single_domain_config()
    assert cfg.cluster.n_domains == 1
    ref = execute_run_sharded(target(), noise(), cfg, shards=1,
                              window_policy="fixed")
    for shards, policy in ((1, "adaptive"), (2, "adaptive"), (2, "fixed")):
        run = execute_run_sharded(target(), noise(), cfg, shards=shards,
                                  window_policy=policy)
        assert_runs_identical(ref, run)


def test_single_domain_adaptive_elides():
    cfg = single_domain_config()
    REGISTRY.reset()
    execute_run_sharded(target(), noise(), cfg, window_policy="fixed")
    fixed = REGISTRY.counter("shard.windows").value
    REGISTRY.reset()
    execute_run_sharded(target(), noise(), cfg, window_policy="adaptive")
    adaptive = REGISTRY.counter("shard.windows").value
    assert adaptive < fixed
