"""Cross-backend equivalence of the batched request fast path.

The contract of ``--sim-backend batch`` (:mod:`repro.sim.batch`) is that
it issues the identical primitive timing events at identical simulated
instants as the per-request event path — so traces, server samples,
window vectors and labels all agree. These tests pin that contract on
the seed scenarios: the acceptance bound is 1e-9, but the construction
gives bit-identical results, which is what the assertions check.
"""

import dataclasses

import numpy as np
import pytest

from repro.common.records import OpType
from repro.common.units import MIB
from repro.experiments.datagen import Scenario, collect_windows
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    execute_run,
    experiment_cluster,
)
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import AllOf
from repro.workloads.io500 import make_io500_task


def config_for(backend: str) -> ExperimentConfig:
    cluster = dataclasses.replace(experiment_cluster(), sim_backend=backend)
    return ExperimentConfig(cluster=cluster, window_size=0.25,
                            sample_interval=0.125, warmup=0.5, seed=0)


def seed_scenarios():
    return [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=2,
                                            ranks=2, scale=0.2),)),
    ]


def seed_targets():
    return [
        make_io500_task("ior-easy-write", ranks=2, scale=0.1),
        make_io500_task("ior-easy-read", ranks=2, scale=0.1),
        make_io500_task("mdt-hard-write", ranks=2, scale=0.1),
    ]


def test_window_banks_identical_across_backends():
    """Vectors and labels of the full seed grid agree between backends."""
    event = collect_windows(seed_targets(), seed_scenarios(),
                            config_for("event"), n_jobs=1)
    batch = collect_windows(seed_targets(), seed_scenarios(),
                            config_for("batch"), n_jobs=1)
    assert event.X.shape == batch.X.shape
    np.testing.assert_allclose(event.X, batch.X, atol=1e-9, rtol=0)
    assert np.array_equal(event.X, batch.X)  # exact, not just close
    assert np.array_equal(event.levels, batch.levels)


def test_run_traces_and_server_samples_identical():
    """Record-by-record and sample-by-sample run-level equivalence."""
    target = make_io500_task("ior-easy-write", ranks=2, scale=0.1)
    noise = [InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                              scale=0.1)]
    runs = {
        backend: execute_run(target, noise, config_for(backend))
        for backend in ("event", "batch")
    }
    ev, ba = runs["event"], runs["batch"]
    assert ev.servers == ba.servers
    assert ev.duration == pytest.approx(ba.duration, abs=1e-9)
    assert len(ev.records) == len(ba.records)
    for re_, rb in zip(ev.records, ba.records):
        assert (re_.job, re_.rank, re_.op_id, re_.op, re_.path,
                re_.offset, re_.size, re_.servers) == \
               (rb.job, rb.rank, rb.op_id, rb.op, rb.path,
                rb.offset, rb.size, rb.servers)
        assert re_.start == pytest.approx(rb.start, abs=1e-9)
        assert re_.end == pytest.approx(rb.end, abs=1e-9)
    assert len(ev.server_samples) == len(ba.server_samples)
    for (te, se, me), (tb, sb, mb) in zip(ev.server_samples,
                                          ba.server_samples):
        assert te == pytest.approx(tb, abs=1e-9)
        assert se == sb
        assert me.keys() == mb.keys()
        for key in me:
            assert me[key] == pytest.approx(mb[key], abs=1e-9)


def test_backend_is_part_of_run_cache_key():
    """Event and batch runs must never share a cache entry."""
    from repro.parallel.cachekey import run_key

    target = seed_targets()[0]
    assert (run_key(target, [], config_for("event"))
            != run_key(target, [], config_for("batch")))


def test_zero_length_batch_finishes_immediately():
    """An empty BatchRequest must complete its op instead of waiting on
    piece completions that never come (and record a zero-duration op)."""
    from repro.sim.batch import BatchRequest, _DataOpDriver
    from repro.sim.engine import Event

    cluster = Cluster(ClusterConfig(sim_backend="batch"))
    sess = cluster.session("job", 0, 0)
    env = cluster.env
    env.run(until=AllOf(env, [env.process(sess.create("/zero"))]))

    f = cluster.fs.lookup("/zero")
    req = BatchRequest(OpType.WRITE, "/zero", 0, 0, [])
    assert len(req) == 0
    assert req.ost_idx.shape == (0,)
    assert req.nbytes.dtype == np.int64

    done = Event(env)
    before = env.now
    _DataOpDriver(sess, req, f, env.now, done, None).begin()
    env.run(until=done)  # no pieces: fires at the same instant
    assert env.now == before
    rec = cluster.collector.records[-1]
    assert rec.op is OpType.WRITE and rec.size == 0
    assert rec.start == rec.end == before


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="sim_backend"):
        ClusterConfig(sim_backend="vectorised")
