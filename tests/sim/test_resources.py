"""Tests for semaphores, barriers and stores."""

import pytest

from repro.sim.engine import Environment
from repro.sim.resources import Barrier, Semaphore, Store


def test_semaphore_limits_concurrency():
    env = Environment()
    sem = Semaphore(env, 2)
    active = []
    peak = []

    def worker(i):
        yield sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield env.timeout(1.0)
        active.remove(i)
        sem.release()

    for i in range(6):
        env.process(worker(i))
    env.run()
    assert max(peak) == 2
    assert env.now == pytest.approx(3.0)  # 6 workers, 2 at a time, 1s each


def test_semaphore_fifo_order():
    env = Environment()
    sem = Semaphore(env, 1)
    order = []

    def worker(i):
        yield sem.acquire()
        order.append(i)
        yield env.timeout(0.1)
        sem.release()

    for i in range(4):
        env.process(worker(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_semaphore_over_release_raises():
    env = Environment()
    sem = Semaphore(env, 1)
    with pytest.raises(RuntimeError):
        sem.release()


def test_semaphore_rejects_zero_capacity():
    with pytest.raises(ValueError):
        Semaphore(Environment(), 0)


def test_barrier_releases_all_parties_together():
    env = Environment()
    bar = Barrier(env, 3)
    released = []

    def party(i, delay):
        yield env.timeout(delay)
        yield bar.wait()
        released.append((i, env.now))

    for i, d in enumerate((0.1, 0.5, 0.3)):
        env.process(party(i, d))
    env.run()
    assert [t for _, t in released] == pytest.approx([0.5, 0.5, 0.5])


def test_barrier_is_reusable():
    env = Environment()
    bar = Barrier(env, 2)
    times = []

    def party(delay):
        for _ in range(2):
            yield env.timeout(delay)
            yield bar.wait()
            times.append(env.now)

    env.process(party(1.0))
    env.process(party(2.0))
    env.run()
    assert times == pytest.approx([2.0, 2.0, 4.0, 4.0])


def test_store_fifo_and_blocking_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    def producer():
        yield env.timeout(1.0)
        store.put("a")
        store.put("b")
        yield env.timeout(1.0)
        store.put("c")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert [i for i, _ in got] == ["a", "b", "c"]
    assert got[0][1] == pytest.approx(1.0)
    assert got[2][1] == pytest.approx(2.0)


def test_store_get_after_put_returns_immediately():
    env = Environment()
    store = Store(env)
    store.put(1)
    assert len(store) == 1

    def consumer():
        item = yield store.get()
        return item

    assert env.run(until=env.process(consumer())) == 1
