"""Tests for the oversubscribed-core network option."""

import pytest

from repro.common.units import MIB
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import AllOf


def run_parallel_writers(config, n_writers=6, size=16 * MIB):
    cluster = Cluster(config)
    env = cluster.env

    def writer(sess, path):
        yield from sess.create(path)
        offset = 0
        while offset < size:
            yield from sess.write(path, offset, MIB)
            offset += MIB

    procs = []
    for i in range(n_writers):
        sess = cluster.session("job", i, i % config.n_client_nodes)
        procs.append(env.process(writer(sess, f"/f{i}")))
    env.run(until=AllOf(env, procs))
    return env.now


def test_default_has_no_core_link():
    cluster = Cluster()
    assert cluster.core_link is None
    a, b = cluster.client_links[0], cluster.oss_links[0]
    assert cluster.route(a, b) == (a, b)


def test_core_link_inserted_in_route():
    cluster = Cluster(ClusterConfig(core_bandwidth=2e9))
    a, b = cluster.client_links[0], cluster.oss_links[0]
    route = cluster.route(a, b)
    assert len(route) == 3
    assert route[1] is cluster.core_link


def test_oversubscribed_core_throttles_aggregate():
    """6 writers over 6 nodes: non-blocking fabric sustains ~6 GB/s of NIC
    capacity; a 1.5 GB/s core caps the aggregate and slows everyone."""
    free = run_parallel_writers(ClusterConfig(core_bandwidth=None))
    capped = run_parallel_writers(ClusterConfig(core_bandwidth=1.5e9))
    assert capped > 1.5 * free


def test_generous_core_is_invisible():
    free = run_parallel_writers(ClusterConfig(core_bandwidth=None))
    wide = run_parallel_writers(ClusterConfig(core_bandwidth=100e9))
    assert wide == pytest.approx(free, rel=0.01)


def test_validation():
    with pytest.raises(ValueError):
        ClusterConfig(core_bandwidth=0.0)
