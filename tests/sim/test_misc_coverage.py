"""Coverage for corners the main suites skim over."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.records import OpType
from repro.common.units import KIB, MIB
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import AllOf, Environment
from repro.sim.netmodel import FlowNetwork, Link


class TestLinkUtilization:
    def test_zero_when_idle(self):
        link = Link("l", 100.0)
        assert link.utilization == 0.0

    def test_full_under_saturating_flow(self):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 100.0)
        net.transfer(1000.0, (link,))
        env.run(until=1.0)
        assert link.utilization == pytest.approx(1.0)

    def test_shared_flows_sum_to_capacity(self):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 100.0)
        for _ in range(4):
            net.transfer(10_000.0, (link,))
        env.run(until=1.0)
        assert link.utilization == pytest.approx(1.0)


class TestMDSJournal:
    def test_journal_offset_wraps(self):
        from repro.sim.mds import MDS, MDSParams

        cluster = Cluster()
        mds = cluster.mds
        wrap = 128 * 1024 * KIB
        mds._journal_offset = wrap - mds.params.journal_write_bytes
        first = mds._journal_extent()
        assert first == wrap - mds.params.journal_write_bytes
        assert mds._journal_offset == 0  # wrapped
        assert mds._journal_extent() == 0


class TestStripeSizeOverride:
    def test_custom_stripe_size_applied(self):
        cluster = Cluster()
        f = cluster.fs.create("/f", stripe_count=2, stripe_size=4 * MIB)
        assert f.layout.stripe_size == 4 * MIB
        pieces = f.layout.map_extent(0, 8 * MIB)
        assert pieces[0][3] == 4 * MIB  # first piece fills one stripe

    def test_session_create_passes_stripe_size(self):
        cluster = Cluster()
        sess = cluster.session("j", 0, 0)

        def body():
            yield from sess.create("/g", stripe_count=2, stripe_size=2 * MIB)

        cluster.env.run(until=cluster.env.process(body()))
        assert cluster.fs.lookup("/g").layout.stripe_size == 2 * MIB


class TestRpcWindows:
    def test_windows_are_per_ost(self):
        cluster = Cluster()
        node = cluster.nodes[0]
        w0 = node.rpc_window(0)
        w1 = node.rpc_window(1)
        assert w0 is not w1
        assert node.rpc_window(0) is w0  # cached

    def test_mds_window_limits_metadata_concurrency(self):
        cfg = ClusterConfig()
        cluster = Cluster(cfg)
        env = cluster.env
        n = 64

        def one(i):
            sess = cluster.session("j", i, 0)  # all on node 0
            yield from sess.mkdir(f"/d{i}")

        procs = [env.process(one(i)) for i in range(n)]
        env.run(until=AllOf(env, procs))
        # All completed despite the shared per-node MDS window.
        meta = [r for r in cluster.collector.records if r.op is OpType.MKDIR]
        assert len(meta) == n


class TestClusterValidation:
    def test_bad_topologies_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_client_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_oss=0)
        with pytest.raises(ValueError):
            ClusterConfig(net_bandwidth=0)

    def test_session_node_index_wraps(self):
        cluster = Cluster()
        sess = cluster.session("j", 0, node_index=100)
        assert sess.node in cluster.nodes


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=2.0), min_size=1,
                max_size=20))
def test_engine_time_is_monotone(delays):
    """Observed times across arbitrary concurrent timeouts never regress."""
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert env.now == pytest.approx(max(delays))
