"""Tests for FaultPlan: validation, determinism, serialisation."""

import pickle

import pytest

from repro.faults import FAULT_SPEC_FIELDS, FaultPlan, parse_fault_spec


class TestValidation:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.has_telemetry_faults
        assert not plan.affects_simulation
        assert not plan.has_worker_faults

    @pytest.mark.parametrize("field", [
        "sample_drop_rate", "sample_delay_rate", "sample_duplicate_rate",
        "window_blank_rate", "run_abort_rate", "worker_kill_rate",
        "worker_flaky_rate", "worker_stall_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: -0.1})
        FaultPlan(**{field: 1.0})  # bounds themselves are legal

    @pytest.mark.parametrize("field", [
        "sample_delay_max", "clock_skew_max", "run_abort_after",
        "worker_stall_seconds",
    ])
    def test_nonnegatives(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: -1.0})

    def test_domain_classification(self):
        assert FaultPlan(sample_drop_rate=0.1).has_telemetry_faults
        assert FaultPlan(clock_skew_max=0.1).has_telemetry_faults
        assert FaultPlan(run_abort_rate=0.1).affects_simulation
        assert FaultPlan(worker_kill_rate=0.1).has_worker_faults
        assert not FaultPlan(worker_kill_rate=0.1).has_telemetry_faults
        assert not FaultPlan(sample_drop_rate=0.1).affects_simulation


class TestDeterminism:
    def test_decisions_replay_bit_identically(self):
        plan = FaultPlan(seed=7, worker_kill_rate=0.4,
                         worker_flaky_rate=0.3, run_abort_rate=0.5)
        replay = FaultPlan(seed=7, worker_kill_rate=0.4,
                           worker_flaky_rate=0.3, run_abort_rate=0.5)
        keys = [f"key-{i}" for i in range(50)]
        assert [plan.kills_worker(k) for k in keys] == \
               [replay.kills_worker(k) for k in keys]
        assert [plan.worker_is_flaky(k, 1) for k in keys] == \
               [replay.worker_is_flaky(k, 1) for k in keys]
        assert [plan.run_abort_time(k) for k in keys] == \
               [replay.run_abort_time(k) for k in keys]

    def test_seed_changes_decisions(self):
        keys = [f"key-{i}" for i in range(200)]
        a = [FaultPlan(seed=1, worker_kill_rate=0.5).kills_worker(k)
             for k in keys]
        b = [FaultPlan(seed=2, worker_kill_rate=0.5).kills_worker(k)
             for k in keys]
        assert a != b

    def test_attempts_are_independent_for_flaky(self):
        plan = FaultPlan(seed=3, worker_flaky_rate=0.5)
        outcomes = {plan.worker_is_flaky("k", a) for a in range(30)}
        assert outcomes == {True, False}

    def test_kill_is_attempt_independent(self):
        plan = FaultPlan(seed=3, worker_kill_rate=0.5)
        killed = [k for k in (f"key-{i}" for i in range(40))
                  if plan.kills_worker(k)]
        assert killed  # rate 0.5 over 40 keys: some die
        for k in killed:  # and they die every time they are asked
            assert plan.kills_worker(k)

    def test_rate_extremes(self):
        assert not FaultPlan(worker_kill_rate=0.0).kills_worker("k")
        assert FaultPlan(worker_kill_rate=1.0).kills_worker("k")
        assert FaultPlan(run_abort_rate=1.0,
                         run_abort_after=2.5).run_abort_time("j") == 2.5
        assert FaultPlan().run_abort_time("j") is None

    def test_stall_returns_configured_seconds(self):
        plan = FaultPlan(worker_stall_rate=1.0, worker_stall_seconds=0.25)
        assert plan.worker_stall("k", 0) == 0.25
        assert FaultPlan().worker_stall("k", 0) == 0.0


class TestSerialisation:
    def test_digest_stable_and_sensitive(self):
        a = FaultPlan(seed=1, sample_drop_rate=0.2)
        assert a.digest() == FaultPlan(seed=1, sample_drop_rate=0.2).digest()
        assert a.digest() != FaultPlan(seed=1, sample_drop_rate=0.3).digest()

    def test_sim_material_excludes_other_domains(self):
        plan = FaultPlan(seed=5, run_abort_rate=0.3, sample_drop_rate=0.9,
                         worker_kill_rate=0.9)
        material = plan.sim_material()
        assert material == {"seed": 5, "run_abort_rate": 0.3,
                            "run_abort_after": 1.0}

    def test_round_trips_through_dict_and_pickle(self):
        plan = FaultPlan(seed=9, sample_drop_rate=0.1, worker_kill_rate=0.2)
        assert FaultPlan(**plan.to_dict()) == plan
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSpecParsing:
    def test_parse_round_trip(self):
        plan = parse_fault_spec("drop=0.2, kill=0.5, seed=3")
        assert plan.sample_drop_rate == 0.2
        assert plan.worker_kill_rate == 0.5
        assert plan.seed == 3

    def test_every_shorthand_maps_to_a_field(self):
        fields = {f for f in FaultPlan.__dataclass_fields__}
        assert set(FAULT_SPEC_FIELDS.values()) <= fields

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("nosuchthing=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_fault_spec("drop=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_spec("drop")

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError, match="sample_drop_rate"):
            parse_fault_spec("drop=2.0")

    def test_empty_spec_is_fault_free(self):
        assert parse_fault_spec("") == FaultPlan()
