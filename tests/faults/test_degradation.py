"""Tests for explicit missing-data handling in vector assembly.

Gap policies, gap masks and the never-NaN guarantee: telemetry gaps are
masked and imputed, and anything non-finite is rejected loudly before it
can reach training or inference.
"""

import numpy as np
import pytest

from repro.common.records import ServerId, ServerKind
from repro.common.windows import iter_windows, window_index, window_indices
from repro.core.dataset import Dataset
from repro.monitor.aggregator import (
    GAP_POLICIES,
    MonitoredRun,
    assemble_vectors,
    assert_finite,
)
from repro.monitor.schema import CLIENT_FEATURES, SERVER_METRICS

OST0 = ServerId(ServerKind.OST, 0)
OST1 = ServerId(ServerKind.OST, 1)
BASE = len(CLIENT_FEATURES)


def metrics_row(value: float) -> dict[str, float]:
    return {name: value for name in SERVER_METRICS}


def gappy_run() -> MonitoredRun:
    """Three 1s windows; OST1 has samples only in windows 0 and 2.

    Sample at time ``t`` belongs to the window containing ``t - 0.125``
    (half the 0.25 sample interval), so ``t=0.25`` → window 0, etc.
    """
    samples = []
    for tick in range(1, 13):  # t = 0.25 .. 3.0
        t = tick * 0.25
        samples.append((t, OST0, metrics_row(1.0)))
        window = window_index(t - 0.125, 1.0)
        if window != 1:
            samples.append((t, OST1, metrics_row(float(window + 1))))
    return MonitoredRun(job="job", records=[], server_samples=samples,
                        servers=[OST0, OST1], duration=3.0, metadata={})


class TestGapPolicies:
    def test_mask_marks_sampled_cells(self):
        X, windows, mask = assemble_vectors(gappy_run(), 1.0, 0.25,
                                            return_mask=True)
        assert windows == [0, 1, 2]
        assert mask.shape == (3, 2)
        assert mask[:, 0].all()                      # OST0 fully observed
        assert list(mask[:, 1]) == [True, False, True]

    def test_zero_policy_leaves_gap_cells_zero(self):
        X, _, mask = assemble_vectors(gappy_run(), 1.0, 0.25,
                                      gap_policy="zero", return_mask=True)
        assert np.all(X[1, 1, BASE:] == 0.0)

    def test_mean_policy_imputes_server_mean(self):
        X, _ = assemble_vectors(gappy_run(), 1.0, 0.25, gap_policy="mean")
        # OST1's observed windows are 0 (metric value 1) and 2 (value 3);
        # the imputed gap must be their element-wise mean.
        expected = (X[0, 1, BASE:] + X[2, 1, BASE:]) / 2
        assert np.allclose(X[1, 1, BASE:], expected)
        assert X[1, 1, BASE:].any()  # actually filled, not zero

    def test_carry_policy_repeats_last_observed_window(self):
        X, _ = assemble_vectors(gappy_run(), 1.0, 0.25, gap_policy="carry")
        assert np.array_equal(X[1, 1, BASE:], X[0, 1, BASE:])

    def test_policies_agree_on_observed_cells(self):
        run = gappy_run()
        results = [assemble_vectors(run, 1.0, 0.25, gap_policy=p)[0]
                   for p in GAP_POLICIES]
        for X in results[1:]:
            assert np.array_equal(X[:, 0, :], results[0][:, 0, :])
            assert np.array_equal(X[0, 1, :], results[0][0, 1, :])
            assert np.array_equal(X[2, 1, :], results[0][2, 1, :])

    def test_fully_unobserved_server_stays_zero(self):
        run = gappy_run()
        run.server_samples = [row for row in run.server_samples
                              if row[1] != OST1]
        for policy in GAP_POLICIES:
            X, _, mask = assemble_vectors(run, 1.0, 0.25, gap_policy=policy,
                                          return_mask=True)
            assert not mask[:, 1].any()
            assert np.all(X[:, 1, BASE:] == 0.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="gap_policy"):
            assemble_vectors(gappy_run(), 1.0, 0.25, gap_policy="magic")

    def test_gap_metrics_published(self):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.counter("monitor.gap_cells").value
        assemble_vectors(gappy_run(), 1.0, 0.25)
        assert REGISTRY.counter("monitor.gap_cells").value == before + 1
        assert REGISTRY.gauge("monitor.gap_fraction").value == \
            pytest.approx(1 / 6)


class TestFiniteGuards:
    def test_assert_finite_passes_clean_arrays(self):
        X = np.ones((2, 3))
        assert assert_finite(X) is X

    def test_assert_finite_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            assert_finite(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            assert_finite(np.array([np.inf]), context="here")

    def test_assemble_rejects_nan_in_samples(self):
        run = gappy_run()
        run.server_samples[0][2]["ios_completed"] = float("nan")
        with pytest.raises(ValueError, match="non-finite"):
            assemble_vectors(run, 1.0, 0.25)

    def test_dataset_rejects_non_finite_features(self):
        X = np.zeros((4, 2, BASE + len(SERVER_METRICS) * 3))
        y = np.zeros(4, dtype=int)
        X[1, 0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            Dataset(X, y)

    def test_window_helpers_reject_non_finite_times(self):
        with pytest.raises(ValueError):
            window_index(float("nan"), 1.0)
        with pytest.raises(ValueError):
            window_index(float("inf"), 1.0)
        with pytest.raises(ValueError):
            window_indices(np.array([0.5, np.nan]), 1.0)
        with pytest.raises(ValueError):
            list(iter_windows(float("inf"), 1.0))
