"""Tests for post-hoc telemetry fault injection."""

import pytest

from repro.common.units import MIB
from repro.faults import (
    FaultPlan,
    apply_faults,
    blank_client_windows,
    inject_sample_faults,
    sample_clock_skews,
)
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.server_monitor import ServerMonitor
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload


@pytest.fixture(scope="module")
def clean_run():
    cluster = Cluster()
    monitor = ServerMonitor(cluster, sample_interval=0.05)
    monitor.start()
    workload = IorWorkload(IorConfig(mode="easy", access="write", ranks=4,
                                     bytes_per_rank=256 * MIB))
    handle = launch(cluster, workload, [0, 1], 1)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 0.05)
    return MonitoredRun(
        job=workload.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
        metadata={},
    )


class TestSampleFaults:
    def test_zero_rates_are_identity(self, clean_run):
        samples, stats = inject_sample_faults(
            clean_run.server_samples, FaultPlan(), clean_run.job,
            clean_run.duration)
        assert samples == clean_run.server_samples
        assert stats.samples_dropped == 0
        assert stats.samples_in == len(clean_run.server_samples)

    def test_drop_rate_one_loses_everything(self, clean_run):
        samples, stats = inject_sample_faults(
            clean_run.server_samples, FaultPlan(sample_drop_rate=1.0),
            clean_run.job, clean_run.duration)
        assert samples == []
        assert stats.samples_dropped == len(clean_run.server_samples)

    def test_injection_replays_bit_identically(self, clean_run):
        plan = FaultPlan(seed=11, sample_drop_rate=0.3,
                         sample_delay_rate=0.3, sample_delay_max=1.0,
                         sample_duplicate_rate=0.2, clock_skew_max=0.05)
        first, s1 = inject_sample_faults(
            clean_run.server_samples, plan, clean_run.job, clean_run.duration)
        second, s2 = inject_sample_faults(
            clean_run.server_samples, plan, clean_run.job, clean_run.duration)
        assert first == second
        assert s1.to_dict() == s2.to_dict()
        assert s1.samples_dropped > 0
        assert s1.samples_delayed > 0
        assert s1.samples_duplicated > 0

    def test_delay_reorders_but_keeps_sample_times(self, clean_run):
        plan = FaultPlan(seed=1, sample_delay_rate=0.5, sample_delay_max=2.0)
        samples, stats = inject_sample_faults(
            clean_run.server_samples, plan, clean_run.job,
            clean_run.duration)
        assert stats.samples_delayed > 0
        times = [t for t, _, _ in samples]
        assert times != sorted(times)  # delivery order != sample-time order
        # No sample time was invented: all come from the original stream.
        original = {t for t, _, _ in clean_run.server_samples}
        assert {t for t, _, _ in samples} <= original

    def test_late_delivery_past_duration_is_lost(self, clean_run):
        plan = FaultPlan(seed=2, sample_delay_rate=1.0,
                         sample_delay_max=10 * clean_run.duration)
        samples, stats = inject_sample_faults(
            clean_run.server_samples, plan, clean_run.job,
            clean_run.duration)
        assert stats.samples_lost_late > 0
        assert len(samples) == (len(clean_run.server_samples)
                                - stats.samples_lost_late)

    def test_clock_skew_is_per_server_and_order_independent(self, clean_run):
        plan = FaultPlan(seed=4, clock_skew_max=0.1)
        servers = list(clean_run.servers)
        forward = sample_clock_skews(plan, servers, clean_run.job)
        backward = sample_clock_skews(plan, servers[::-1], clean_run.job)
        assert forward == backward
        assert all(-0.1 <= s <= 0.1 for s in forward.values())
        assert len(set(forward.values())) > 1  # servers skew differently


class TestWindowBlanking:
    def test_zero_rate_is_identity(self, clean_run):
        records, stats = blank_client_windows(
            clean_run.records, FaultPlan(), clean_run.job, clean_run.job,
            0.5, clean_run.duration)
        assert records == clean_run.records
        assert stats.windows_blanked == 0

    def test_blanking_removes_target_windows_only(self, clean_run):
        plan = FaultPlan(seed=0, window_blank_rate=0.5)
        records, stats = blank_client_windows(
            clean_run.records, plan, clean_run.job, clean_run.job,
            0.25, clean_run.duration)
        assert stats.windows_blanked > 0
        assert stats.records_blanked > 0
        assert len(records) == len(clean_run.records) - stats.records_blanked
        # Replay determinism.
        again, _ = blank_client_windows(
            clean_run.records, plan, clean_run.job, clean_run.job,
            0.25, clean_run.duration)
        assert records == again


class TestApplyFaults:
    def test_apply_faults_is_pure_and_annotated(self, clean_run):
        plan = FaultPlan(seed=6, sample_drop_rate=0.4,
                         window_blank_rate=0.3)
        n_samples = len(clean_run.server_samples)
        n_records = len(clean_run.records)
        before = REGISTRY.counter("faults.samples_dropped").value
        faulted = apply_faults(clean_run, plan, window_size=0.25)
        # Original untouched.
        assert len(clean_run.server_samples) == n_samples
        assert len(clean_run.records) == n_records
        # Faulted copy is degraded and self-describing.
        assert len(faulted.server_samples) < n_samples
        assert faulted.metadata["faults"]["plan"] == plan.digest()
        assert faulted.metadata["faults"]["samples_dropped"] > 0
        assert REGISTRY.counter("faults.samples_dropped").value > before
        assert faulted.duration == clean_run.duration
        assert faulted.servers == clean_run.servers
