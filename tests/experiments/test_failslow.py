"""Tests for fail-slow fault injection and transfer scoring."""

import pytest

from repro.common.units import MIB
from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.failslow import run_failslow_run, run_failslow_transfer
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.sim.cluster import Cluster
from repro.workloads.io500 import make_io500_task


def small_config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.5, seed=0)


def test_inject_slowdown_scales_service_time():
    cluster = Cluster()
    env = cluster.env
    dev = cluster.osts[0].device

    def read():
        t0 = env.now
        yield dev.submit(0, 2048, is_write=False)
        return env.now - t0

    env.run(until=env.process(read()))  # warm-up: park the head at 2048
    healthy = env.run(until=env.process(read()))  # seek back + transfer
    dev.inject_slowdown(10.0)
    slow = env.run(until=env.process(read()))  # identical geometry
    assert slow == pytest.approx(10.0 * healthy, rel=0.05)
    dev.inject_slowdown(1.0)
    restored = env.run(until=env.process(read()))
    assert restored == pytest.approx(healthy, rel=0.05)


def test_inject_slowdown_validation():
    cluster = Cluster()
    with pytest.raises(ValueError):
        cluster.osts[0].device.inject_slowdown(0.0)


def test_failslow_run_degrades_target():
    config = small_config()
    target = make_io500_task("ior-easy-read", ranks=2, scale=0.2)
    baseline = run_failslow_run(target, config, slow_factor=1.0)
    degraded = run_failslow_run(target, config, slow_factor=8.0)
    labeller = DegradationLabeller(window_size=config.window_size)
    levels = labeller.window_levels(baseline.records, degraded.records,
                                    target.name)
    assert levels
    assert max(levels.values()) > 2.0
    assert degraded.metadata["slow_factor"] == 8.0


def test_failslow_onset_spares_early_windows():
    config = small_config()
    target = make_io500_task("ior-easy-read", ranks=2, scale=0.4)
    baseline = run_failslow_run(target, config, slow_factor=1.0)
    degraded = run_failslow_run(target, config, slow_factor=16.0, onset=0.3)
    labeller = DegradationLabeller(window_size=0.25)
    levels = labeller.window_levels(baseline.records, degraded.records,
                                    target.name)
    # Window 0 closes before the fault hits.
    assert levels.get(0, 1.0) < 2.0


def test_failslow_transfer_end_to_end():
    config = small_config()
    targets = [make_io500_task("ior-easy-read", ranks=4, scale=0.3)]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-read", instances=3,
                                            ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    predictor = InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )
    result = run_failslow_transfer(predictor, targets[0], config,
                                   slow_factors=(8.0,))
    assert result.n_windows > 0
    assert result.report.confusion.shape == (2, 2)
    assert sum(result.class_counts) == result.n_windows
    assert "fail-slow" in result.render()
