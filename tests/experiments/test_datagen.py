"""Tests for labelled-dataset generation (small scale)."""

import numpy as np
import pytest

from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
from repro.experiments.datagen import (
    Scenario,
    WindowBank,
    bank_to_dataset,
    collect_windows,
    generate_dataset,
    standard_scenarios,
)
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.monitor.schema import vector_dim
from repro.workloads.io500 import make_io500_task


def small_config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125, warmup=1.0)


def small_targets():
    return [make_io500_task("ior-easy-write", ranks=2, scale=0.1)]


def small_scenarios():
    return [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=3,
                                            ranks=3, scale=0.25),)),
    ]


def test_standard_scenarios_structure():
    scenarios = standard_scenarios(max_level=2, tasks=("a-task",))
    assert scenarios[0].is_baseline
    assert len(scenarios) == 3
    assert scenarios[1].interference[0].instances == 1
    assert scenarios[2].interference[0].instances == 2


def test_collect_windows_shapes():
    bank = collect_windows(small_targets(), small_scenarios(), small_config())
    assert len(bank) > 0
    assert bank.X.shape == (len(bank), 7, vector_dim())
    assert len(bank.sources) == len(bank)
    assert np.isfinite(bank.X).all()
    assert (bank.levels > 0).all()


def test_quiet_scenario_levels_are_one():
    bank = collect_windows(small_targets(), [Scenario("quiet")], small_config())
    assert np.allclose(bank.levels, 1.0, atol=1e-6)


def test_noise_raises_levels():
    bank = collect_windows(small_targets(), small_scenarios(), small_config())
    noisy = [lv for lv, src in zip(bank.levels, bank.sources) if "noise" in src]
    assert max(noisy) > 1.5


def test_bank_to_dataset_binning():
    bank = WindowBank(np.zeros((4, 2, 3)), np.array([1.0, 2.5, 5.0, 30.0]))
    binary = bank_to_dataset(bank, BINARY_THRESHOLDS)
    assert binary.y.tolist() == [0, 1, 1, 1]
    multi = bank_to_dataset(bank, MULTICLASS_THRESHOLDS)
    assert multi.y.tolist() == [0, 1, 2, 2]


def test_generate_dataset_one_shot():
    ds = generate_dataset(small_targets(), small_scenarios(), small_config())
    assert len(ds) > 0
    assert ds.X.shape[2] == vector_dim()


def test_exclude_quiet_windows():
    bank_with = collect_windows(small_targets(), small_scenarios(),
                                small_config(), include_quiet_windows=True)
    bank_without = collect_windows(small_targets(), small_scenarios(),
                                   small_config(), include_quiet_windows=False)
    assert len(bank_without) < len(bank_with)


def test_empty_bank_raises():
    with pytest.raises(RuntimeError):
        WindowBank.concatenate([])
