"""Small-scale integration tests for the figure/table experiment modules.

These use deliberately tiny workloads: they validate plumbing and output
structure, not the paper-shape claims (the benchmarks do that at full
scale).
"""

import numpy as np
import pytest

from repro.core.labeling import MULTICLASS_THRESHOLDS
from repro.experiments.fig1 import run_fig1a, run_fig1b
from repro.experiments.fig3 import (
    collect_io500_bank,
    evaluate_bank,
    run_fig3_io500,
)
from repro.experiments.fig5 import app_scenarios, default_app_targets, run_fig5
from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import Table1Result, run_table1, shape_checks
from repro.experiments.table2 import run_table2
from repro.workloads.apps import EnzoConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.5, seed=0)


@pytest.fixture(scope="module")
def tiny_bank(config):
    return collect_io500_bank(
        config,
        tasks=("ior-easy-write", "ior-easy-read"),
        target_ranks=2,
        target_scale=0.15,
        max_level=1,
        noise_tasks=("ior-easy-write",),
        noise_ranks=3,
        noise_scale=0.25,
    )


class TestTable1:
    def test_mini_matrix_structure(self, config):
        tasks = ("ior-easy-write", "mdt-easy-write")
        result = run_table1(config, tasks=tasks, target_ranks=2,
                            target_scale=0.15, noise_instances=2,
                            noise_ranks=2, noise_scale=0.2)
        assert result.matrix.shape == (2, 2)
        assert (result.matrix > 0).all()
        assert np.isfinite(result.matrix).all()
        assert set(result.standalone_runtime) == set(tasks)
        text = result.render()
        assert "ior-easy-write" in text

    def test_cell_lookup(self):
        result = Table1Result(tasks=("a", "b"),
                              matrix=np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert result.cell("a", "b") == 2.0
        assert result.cell("b", "a") == 3.0

    def test_shape_checks_on_synthetic_matrix(self):
        # A matrix that matches the paper's qualitative structure.
        from repro.workloads.io500 import IO500_TASKS
        m = np.ones((7, 7))
        idx = {t: i for i, t in enumerate(IO500_TASKS)}
        m[idx["ior-easy-read"], idx["ior-easy-read"]] = 29.0
        m[idx["ior-easy-write"], idx["ior-easy-write"]] = 2.7
        m[idx["mdt-hard-write"], idx["ior-easy-write"]] = 26.0
        m[idx["mdt-hard-read"], idx["mdt-hard-write"]] = 4.0
        result = Table1Result(tasks=IO500_TASKS, matrix=m)
        assert all(shape_checks(result).values())


class TestFig1:
    def test_fig1a_series_aligned(self, config):
        enzo = EnzoConfig(ranks=2, cycles=2, grids_per_rank=2,
                          compute_time=0.1)
        result = run_fig1a(config, enzo, max_level=2, noise_scale=0.2)
        lengths = {len(v) for v in result.series.values()}
        assert len(lengths) == 1  # all conditions cover the same op list
        assert "baseline" in result.series
        assert "ior-easy-write-x1" in result.series
        assert len(result.op_labels) == lengths.pop()
        assert result.mean_slowdown("ior-easy-write-x2") > 0

    def test_fig1b_two_noise_types(self, config):
        enzo = EnzoConfig(ranks=2, cycles=2, grids_per_rank=2,
                          compute_time=0.1)
        result = run_fig1b(config, enzo, noise_scale=0.2)
        assert set(result.series) == {"baseline", "data-intensive",
                                      "metadata-intensive"}
        assert result.render()  # smoothed chart renders


class TestTable2:
    def test_catalogue_collected(self, config):
        result = run_table2(config, scale=0.1)
        assert result.n_samples > 0
        assert result.moved("ios_completed")
        assert result.moved("sectors_written")
        assert "metric" in result.render()


class TestFig3Fig4:
    def test_binary_eval_structure(self, tiny_bank):
        result = evaluate_bank(tiny_bank, "tiny-binary")
        assert result.report.confusion.shape == (2, 2)
        assert 0 <= result.report.accuracy <= 1
        assert result.n_windows == len(tiny_bank)
        assert "tiny-binary" in result.render()

    def test_multiclass_eval_structure(self, tiny_bank):
        result = evaluate_bank(tiny_bank, "tiny-3class", MULTICLASS_THRESHOLDS)
        assert result.report.confusion.shape == (3, 3)
        assert len(result.train_counts) == 3

    def test_run_fig3_accepts_prebuilt_bank(self, tiny_bank):
        result = run_fig3_io500(bank=tiny_bank)
        assert result.name == "fig3a-io500"


class TestFig5:
    def test_scenarios_grow_with_level(self):
        scenarios = app_scenarios(max_level=2)
        assert scenarios[0].is_baseline
        assert scenarios[1].name == "io500-light"
        assert len(scenarios) == 4  # quiet, light, x1, x2
        total = lambda s: sum(spec.instances for spec in s.interference)
        assert total(scenarios[3]) > total(scenarios[2]) > total(scenarios[1])

    def test_default_targets(self):
        targets = default_app_targets()
        assert set(targets) == {"amrex", "enzo", "openpmd"}

    def test_run_fig5_tiny(self, config):
        from repro.workloads.apps import (AmrexConfig, AmrexWorkload,
                                          OpenPMDConfig, OpenPMDWorkload)
        targets = {
            "amrex": AmrexWorkload(AmrexConfig(ranks=2, steps=2,
                                               fab_bytes=2 * 1024 * 1024)),
            "openpmd": OpenPMDWorkload(OpenPMDConfig(ranks=2, iterations=3)),
        }
        result = run_fig5(config, targets=targets, max_level=1,
                          noise_scale=0.2)
        assert set(result.results) == {"amrex", "openpmd"}
        assert result.render()
