"""Small-scale tests for the device ablation and cross-cluster modules."""

import numpy as np
import pytest

from repro.experiments.cross_cluster import CrossClusterResult, run_cross_cluster
from repro.experiments.devices import DeviceAblationResult, run_device_ablation
from repro.experiments.runner import ExperimentConfig
from repro.sim.disk import DiskParams, FlashModel, FlashParams, make_disk_model


class TestFlashModel:
    def test_no_positioning_cost(self):
        model = FlashModel(FlashParams())
        near = model.service_time(0, 8)
        model2 = FlashModel(FlashParams())
        model2.service_time(0, 8)
        far = model2.service_time(FlashParams().total_sectors - 8, 8)
        assert near == pytest.approx(far)

    def test_faster_than_hdd_random(self):
        from repro.sim.disk import DiskModel

        flash = FlashModel(FlashParams())
        hdd = DiskModel(DiskParams())
        hdd.service_time(0, 8)
        flash.service_time(0, 8)
        assert flash.service_time(10**8, 8) < hdd.service_time(10**8, 8)

    def test_validation(self):
        model = FlashModel(FlashParams())
        with pytest.raises(ValueError):
            model.service_time(0, 0)
        with pytest.raises(ValueError):
            model.service_time(-1, 8)

    def test_factory_dispatch(self):
        from repro.sim.disk import DiskModel

        assert isinstance(make_disk_model(FlashParams()), FlashModel)
        assert isinstance(make_disk_model(DiskParams()), DiskModel)
        with pytest.raises(TypeError):
            make_disk_model(object())


def test_device_ablation_structure():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=0.5, seed=0)
    result = run_device_ablation(config, target_scale=0.1,
                                 noise_instances=1, noise_ranks=2,
                                 noise_scale=0.1)
    assert isinstance(result, DeviceAblationResult)
    for device in ("hdd", "ssd"):
        for cell in ("read_read", "write_write", "read_vs_write"):
            v = result.cell(device, cell)
            assert np.isfinite(v) and v > 0
    assert "hdd" in result.render()


def test_cross_cluster_structure():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=0.5, seed=0)
    result = run_cross_cluster(
        config,
        target_tasks=("ior-easy-write",),
        target_scale=0.5,
        max_level=2,
        noise_scale=0.25,
    )
    assert isinstance(result, CrossClusterResult)
    assert set(result.scores) == {
        "kernel-retrained-on-B",
        "settransformer-zero-shot",
        "settransformer-retrained-on-B",
    }
    assert result.n_windows_a > 0
    assert result.n_windows_b > 0
    # Cluster B really has a different topology: its confusion matrices
    # come from 9-server vectors, which the zero-shot transformer handled.
    assert "cluster B" in result.render()
