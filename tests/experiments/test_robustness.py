"""Tests for the robustness experiment (F1 under telemetry faults)."""

import pytest

from repro.experiments.robustness import RobustnessResult, run_robustness
from repro.experiments.runner import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=0.5, seed=0)
    return run_robustness(
        config,
        target_scale=0.2,
        noise_scale=0.15,
        max_level=1,
        drop_rates=(0.0, 0.5),
        blank_rates=(0.0, 0.5),
        gap_policies=("zero", "mean"),
        slow_factors=(8.0,),
        epochs=10,
    )


def test_grid_is_fully_populated(result):
    # 2 policies x (2 drop rates + 2 blank rates) = 8 cells.
    assert len(result.rows) == 8
    for row in result.rows:
        assert row["fault"] in ("drop", "blank")
        assert row["policy"] in ("zero", "mean")
        assert 0.0 <= row["macro_f1"] <= 1.0
        assert 0.0 <= row["gap_fraction"] <= 1.0
        assert row["n_windows"] > 0
    assert result.n_eval_windows > 0
    assert sum(result.class_counts) > 0


def test_rate_zero_is_policy_invariant(result):
    """With no faults there are no gaps, so every policy scores the same."""
    reference = [row for row in result.rows
                 if row["rate"] == 0.0 and row["policy"] == "zero"]
    for row in result.rows:
        if row["rate"] == 0.0:
            match = next(r for r in reference if r["fault"] == row["fault"])
            assert row["macro_f1"] == match["macro_f1"]
            assert row["gap_fraction"] == 0.0


def test_dropping_samples_creates_gaps(result):
    for policy in ("zero", "mean"):
        curve = result.curve("drop", policy)
        assert curve[0][0] == 0.0 and curve[-1][0] == 0.5
        gappy = [row for row in result.rows
                 if row["fault"] == "drop" and row["rate"] == 0.5
                 and row["policy"] == policy]
        assert gappy[0]["gap_fraction"] > 0.0


def test_render_and_report(result):
    text = result.render()
    assert "robustness" in text
    assert "macroF1" in text
    report = result.to_report()
    assert report["experiment"] == "robustness"
    assert len(report["rows"]) == len(result.rows)
    import json

    json.dumps(report)  # the CI artifact must be JSON-serialisable


def test_curve_helper_sorts_by_rate():
    result = RobustnessResult(rows=[
        {"fault": "drop", "rate": 0.4, "policy": "zero", "macro_f1": 0.5},
        {"fault": "drop", "rate": 0.0, "policy": "zero", "macro_f1": 0.9},
        {"fault": "blank", "rate": 0.2, "policy": "zero", "macro_f1": 0.7},
    ])
    assert result.curve("drop", "zero") == [(0.0, 0.9), (0.4, 0.5)]


def test_unknown_gap_policy_rejected():
    with pytest.raises(ValueError, match="gap policy"):
        run_robustness(gap_policies=("interpolate",))
