"""Tests for prediction-driven mitigation (small scale)."""

import pytest

from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.mitigation import MitigationResult, run_mitigation
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.workloads.io500 import make_io500_task


@pytest.fixture(scope="module")
def setup():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    targets = [make_io500_task("ior-easy-write", ranks=4, scale=0.3)]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=3,
                                            ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    predictor = InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )
    return config, predictor


def test_mitigation_compares_three_policies(setup):
    config, predictor = setup
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.3)
    result = run_mitigation(predictor, target, config)
    assert set(result.mean_latency) == {"none", "predictive", "static"}
    for v in result.mean_latency.values():
        assert v > 0
    assert "policy" in result.render()


def test_predictive_mitigation_helps_target(setup):
    config, predictor = setup
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.3)
    result = run_mitigation(predictor, target, config)
    # Throttling the noise when (and only when) interference is predicted
    # must improve the target vs doing nothing.
    assert result.improvement("predictive") > 1.2
    assert result.alarms >= 1
    # Targeted, not uniform: on a quiet control run the policy never
    # fires (false alarms would throttle innocent jobs).
    assert result.quiet_false_alarm_time < config.window_size


def test_static_policy_throttles_whole_run(setup):
    config, predictor = setup
    target = make_io500_task("ior-easy-write", ranks=2, scale=0.1)
    result = run_mitigation(predictor, target, config)
    assert result.throttled_time["static"] > 0
