"""Tests for the ASCII reporting helpers."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    moving_average,
    render_matrix,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_contains_labels_and_values(self):
        text = render_table(["r1", "r2"], ["c1", "c2"],
                            np.array([[1.5, 2.0], [3.25, 4.0]]))
        assert "r1" in text and "c2" in text
        assert "1.50" in text and "3.25" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["r1"], ["c1", "c2"], np.zeros((2, 2)))

    def test_custom_format(self):
        text = render_table(["r"], ["c"], np.array([[1234.5]]), fmt="{:.0f}")
        assert "1234" in text


class TestMovingAverage:
    def test_window_one_is_identity(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(moving_average(v, 1), v)

    def test_constant_series_unchanged(self):
        v = np.full(10, 7.0)
        assert np.allclose(moving_average(v, 3), 7.0)

    def test_output_length_preserved(self):
        v = np.arange(20, dtype=float)
        assert len(moving_average(v, 5)) == 20

    def test_smooths_spikes(self):
        v = np.zeros(11)
        v[5] = 10.0
        smoothed = moving_average(v, 5)
        assert smoothed.max() < 5.0
        assert smoothed.sum() == pytest.approx(10.0, rel=0.1)

    def test_window_larger_than_series(self):
        v = np.array([1.0, 3.0])
        out = moving_average(v, 10)
        assert len(out) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)

    def test_empty_series(self):
        assert len(moving_average(np.array([]), 3)) == 0


class TestRenderSeries:
    def test_renders_with_legend(self):
        text = render_series({"a": np.array([1, 2, 3.0]),
                              "b": np.array([3, 2, 1.0])})
        assert "o=a" in text and "x=b" in text
        assert "max=" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})

    def test_zero_series_safe(self):
        text = render_series({"flat": np.zeros(5)})
        assert "max=" in text


def test_render_matrix_block():
    text = render_matrix("panel", np.array([[3, 1], [0, 4]]), ["neg", "pos"])
    assert "== panel ==" in text
    assert "neg" in text and "pos" in text
