"""Tests for the paired-run experiment harness (small scale)."""

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    execute_run,
    experiment_cluster,
    run_pair,
)
from repro.workloads.io500 import make_io500_task


def small_config(**kwargs):
    defaults = dict(window_size=0.25, sample_interval=0.125, warmup=0.25)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def small_target(task="ior-easy-write"):
    return make_io500_task(task, ranks=2, scale=0.05)


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(target_nodes=())
    with pytest.raises(ValueError):
        ExperimentConfig(target_nodes=(99,))
    with pytest.raises(ValueError):
        ExperimentConfig(window_size=0)
    with pytest.raises(ValueError):
        InterferenceSpec("ior-easy-write", instances=0)


def test_noise_nodes_disjoint_from_target_nodes():
    config = small_config()
    assert set(config.noise_nodes).isdisjoint(config.target_nodes)
    assert set(config.noise_nodes) | set(config.target_nodes) == set(range(7))


def test_execute_run_collects_trace_and_samples():
    run = execute_run(small_target(), [], small_config())
    assert run.job == "ior-easy-write"
    assert any(r.job == run.job for r in run.records)
    assert run.server_samples
    assert run.duration > 0
    assert run.metadata["instances"] == 0


def test_interference_affects_servers_but_is_not_traced():
    noise = [InterferenceSpec("mdt-easy-write", instances=1, ranks=2, scale=0.05)]
    run = execute_run(small_target(), noise, small_config())
    # Noise ops are deliberately untraced (nothing consumes them) ...
    jobs = {r.job for r in run.records}
    assert not any(j.startswith("noise-") for j in jobs)
    assert run.metadata["interference"] == ["mdt-easy-write"]
    # ... but their server-side footprint is visible to the monitors.
    mdt_ops = sum(m["mds_ops_completed"] for _, s, m in run.server_samples
                  if s.kind.value == "mdt")
    target_meta = sum(1 for r in run.records if r.op.is_metadata)
    assert mdt_ops > target_meta


def test_target_ops_identical_across_pair():
    noise = [InterferenceSpec("ior-easy-write", instances=2, ranks=2, scale=0.1)]
    pair = run_pair(small_target(), noise, small_config())
    # Records land in completion order, which legitimately differs under
    # contention; the op *set keyed by (rank, op_id)* must be identical.
    key = lambda r: (r.rank, r.op_id)
    base_ops = sorted(
        ((r.rank, r.op_id, r.op, r.path, r.offset, r.size)
         for r in pair.baseline.records if r.job == "ior-easy-write"),
    )
    interf_ops = sorted(
        ((r.rank, r.op_id, r.op, r.path, r.offset, r.size)
         for r in pair.interfered.records if r.job == "ior-easy-write"),
    )
    assert base_ops == interf_ops


def test_warmup_delays_target_start():
    config = small_config(warmup=1.0)
    noise = [InterferenceSpec("ior-easy-write", instances=1, ranks=1, scale=0.05)]
    run = execute_run(small_target(), noise, config)
    target_start = min(r.start for r in run.records if r.job == run.job)
    assert target_start >= 1.0


def test_baseline_has_no_warmup():
    run = execute_run(small_target(), [], small_config(warmup=1.0))
    target_start = min(r.start for r in run.records if r.job == run.job)
    assert target_start < 0.5


def test_experiment_cluster_shrinks_cache():
    cfg = experiment_cluster(cache_mib=32)
    assert cfg.cache.capacity_bytes == 32 * 1024 * 1024
    assert cfg.n_osts == 6  # topology unchanged
