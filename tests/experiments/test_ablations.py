"""Smoke tests for the ablation harness on synthetic window banks."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    _permute_servers,
    run_feature_ablation,
    run_model_ablation,
)
from repro.experiments.datagen import WindowBank
from repro.monitor.schema import CLIENT_FEATURES, vector_dim


def synthetic_bank(n=800, servers=7, seed=0):
    """A bank whose levels are driven by both a client and a server
    feature of the hottest server, so every ablation arm has signal.

    Levels keep a margin around the 2x binary threshold so the task is
    cleanly separable (the ablation tests measure the harness, not label
    noise robustness)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.2, size=(n, servers, vector_dim()))
    hot = rng.integers(0, servers, size=n)
    intensity = rng.uniform(0.5, 6.0, size=n)
    intensity = np.where(np.abs(intensity - 2.0) < 0.5,
                         intensity + np.sign(intensity - 2.0 + 1e-9),
                         intensity)
    X[np.arange(n), hot, 0] += 2.0 * intensity          # a client feature
    X[np.arange(n), hot, len(CLIENT_FEATURES)] += 2.0 * intensity  # a server one
    return WindowBank(X, intensity, sources=["synthetic"] * n)


@pytest.fixture(scope="module")
def bank():
    return synthetic_bank()


def test_permute_servers_is_a_permutation():
    X = np.arange(2 * 3 * 4, dtype=float).reshape(2, 3, 4)
    Xp = _permute_servers(X, seed=1)
    for i in range(2):
        orig = {tuple(row) for row in X[i]}
        perm = {tuple(row) for row in Xp[i]}
        assert orig == perm


def test_model_ablation_covers_all_arms(bank):
    result = run_model_ablation(bank)
    for arm in ("kernel-net", "flat-mlp", "logistic-regression",
                "random-forest"):
        assert arm in result.scores
        assert f"{arm}/permuted-servers" in result.scores
        assert 0.0 <= result.scores[arm] <= 1.0
    assert "ablation" in result.render()


def test_kernel_beats_flat_under_permutation(bank):
    result = run_model_ablation(bank)
    s = result.scores
    assert s["kernel-net/permuted-servers"] >= s["flat-mlp/permuted-servers"]


def test_feature_ablation_arms(bank):
    result = run_feature_ablation(bank)
    assert set(result.scores) == {"client+server", "client-only", "server-only"}
    # Both families were given signal in the synthetic bank.
    assert result.scores["client-only"] > 0.5
    assert result.scores["server-only"] > 0.5
