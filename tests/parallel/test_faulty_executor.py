"""Tests for the executor's resilience layer: watchdog, retry, quarantine.

The acceptance criterion for the fault-injection PR: a sweep with a
worker kill rate >= 20% completes, quarantines the poisoned runs, and
the surviving runs are bit-identical to a fault-free serial sweep.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.faults import FaultPlan
from repro.parallel import PairJob, RunCache, RunJob, SweepExecutor

from tests.parallel.test_executor import (  # noqa: F401 (shared fixtures)
    small_config,
    small_targets,
)


def make_jobs(n=5):
    """n distinct small jobs (different noise scales → different keys)."""
    return [
        RunJob(small_targets()[0],
               (InterferenceSpec("ior-easy-write", instances=1, ranks=2,
                                 scale=0.1 + 0.02 * i),),
               small_config(), seed_salt=f"j{i}")
        for i in range(n)
    ]


def find_kill_plan(executor_keys, min_killed=1, max_killed=None):
    """A seed whose kill decisions poison some but not all of the keys."""
    max_killed = max_killed or len(executor_keys) - 1
    for seed in range(100):
        plan = FaultPlan(seed=seed, worker_kill_rate=0.4)
        killed = sum(plan.kills_worker(k) for k in executor_keys)
        if min_killed <= killed <= max_killed:
            return plan
    raise AssertionError("no suitable seed found")  # pragma: no cover


class TestValidation:
    def test_bad_resilience_params_rejected(self):
        with pytest.raises(ValueError, match="run_timeout"):
            SweepExecutor(run_timeout=0)
        with pytest.raises(ValueError, match="retries"):
            SweepExecutor(retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SweepExecutor(retry_backoff=-0.1)


class TestWorkerCrashes:
    def test_kill_rate_quarantines_and_sweep_completes(self):
        """Kill rate >= 20%: the sweep finishes, poisoned runs come back
        as None, survivors are bit-identical to a fault-free serial run."""
        jobs = make_jobs(5)
        clean = SweepExecutor(n_jobs=1)
        clean_runs = clean.run_many(jobs)

        probe = SweepExecutor(n_jobs=1)
        keys = [probe.key_for(j) for j in jobs]
        plan = find_kill_plan(keys, min_killed=1, max_killed=3)
        killed = {k for k in keys if plan.kills_worker(k)}
        assert len(killed) / len(keys) >= 0.2

        faulty = SweepExecutor(n_jobs=2, fault_plan=plan, retries=1,
                               retry_backoff=0.01)
        runs = faulty.run_many(jobs)
        assert len(runs) == len(jobs)
        for key, clean_run, run in zip(keys, clean_runs, runs):
            if key in killed:
                assert run is None
                assert key in faulty.quarantined
            else:
                assert run is not None
                assert run.records == clean_run.records
                assert run.duration == clean_run.duration
                assert run.server_samples == clean_run.server_samples
        # Kills are persistent: every quarantined run burned all attempts.
        for info in faulty.quarantined.values():
            assert info["attempts"] == 2
            assert len(info["errors"]) == 2
            assert "injected" in info["errors"][0]

    def test_quarantine_is_deterministic_across_executors(self):
        jobs = make_jobs(5)
        probe = SweepExecutor()
        plan = find_kill_plan([probe.key_for(j) for j in jobs])
        a = SweepExecutor(fault_plan=plan, retries=0)
        b = SweepExecutor(n_jobs=2, fault_plan=plan, retries=0)
        a.run_many(jobs)
        b.run_many(jobs)
        assert set(a.quarantined) == set(b.quarantined)
        assert a.quarantined  # the plan poisoned something

    def test_flaky_workers_succeed_with_retries(self):
        """Transient (per-attempt) failures: with enough retries every
        run completes and nothing is quarantined."""
        jobs = make_jobs(3)
        plan = FaultPlan(seed=2, worker_flaky_rate=0.5)
        executor = SweepExecutor(n_jobs=2, fault_plan=plan, retries=5,
                                 retry_backoff=0.0)
        runs = executor.run_many(jobs)
        assert all(run is not None for run in runs)
        assert not executor.quarantined

    def test_fault_report_shape(self):
        jobs = make_jobs(3)
        probe = SweepExecutor()
        plan = find_kill_plan([probe.key_for(j) for j in jobs])
        executor = SweepExecutor(fault_plan=plan, retries=1,
                                 retry_backoff=0.0)
        executor.run_many(jobs)
        report = executor.fault_report()
        assert report["plan"]["worker_kill_rate"] == 0.4
        assert report["retries_used"] >= 1
        for entry in report["quarantined"]:
            assert {"key", "target", "attempts", "errors"} <= set(entry)
        stats = executor.stats()
        assert stats["retries"] == 1
        assert stats["faults"]["quarantined"] == report["quarantined"]


class TestTimeouts:
    def test_stalled_run_times_out_and_is_quarantined(self):
        """A stalled worker exceeds the watchdog deadline, is terminated,
        and (with no retries) quarantined; healthy runs still finish."""
        jobs = make_jobs(2)
        plan = FaultPlan(seed=0, worker_stall_rate=1.0,
                         worker_stall_seconds=30.0)
        executor = SweepExecutor(n_jobs=2, fault_plan=plan,
                                 run_timeout=0.5, retries=0)
        runs = executor.run_many(jobs)
        assert runs == [None, None]
        assert executor.timeouts == 2
        assert len(executor.quarantined) == 2
        for info in executor.quarantined.values():
            assert "timeout" in info["errors"][0]

    def test_generous_timeout_passes_healthy_runs(self):
        jobs = make_jobs(2)
        executor = SweepExecutor(n_jobs=2, run_timeout=120.0, retries=1)
        runs = executor.run_many(jobs)
        assert all(run is not None for run in runs)
        assert executor.timeouts == 0
        assert not executor.quarantined


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        """Completed runs persist even when others are quarantined: a
        re-run without faults only executes the previously-failed runs."""
        jobs = make_jobs(4)
        probe = SweepExecutor()
        keys = [probe.key_for(j) for j in jobs]
        plan = find_kill_plan(keys, min_killed=1, max_killed=3)
        survivors = [k for k in keys if not plan.kills_worker(k)]

        first = SweepExecutor(cache=RunCache(tmp_path / "c"),
                              fault_plan=plan, retries=0)
        first.run_many(jobs)
        assert len(first.quarantined) == len(keys) - len(survivors)

        resumed = SweepExecutor(cache=RunCache(tmp_path / "c"))
        runs = resumed.run_many(jobs)
        assert all(run is not None for run in runs)
        assert resumed.runs_executed == len(keys) - len(survivors)
        assert resumed.cache.hits == len(survivors)


class TestSimulationAborts:
    @staticmethod
    def long_job():
        """A bare target big enough that aborting at t=0.4 cuts it off."""
        from repro.workloads.io500 import make_io500_task

        return RunJob(make_io500_task("ior-easy-write", ranks=2, scale=4.0),
                      (), small_config())

    def test_abort_changes_cache_key_and_truncates_run(self):
        job = self.long_job()
        clean = SweepExecutor()
        plan = FaultPlan(seed=3, run_abort_rate=1.0, run_abort_after=0.4)
        faulty = SweepExecutor(fault_plan=plan)
        assert clean.key_for(job) != faulty.key_for(job)

        clean_run = clean.run_many([job])[0]
        aborted_run = faulty.run_many([job])[0]
        assert aborted_run.metadata.get("aborted") is True
        assert aborted_run.metadata["abort_at"] == 0.4
        assert aborted_run.duration < clean_run.duration
        assert len(aborted_run.records) < len(clean_run.records)

    def test_abort_replays_bit_identically(self):
        job = self.long_job()
        plan = FaultPlan(seed=3, run_abort_rate=1.0, run_abort_after=0.4)
        a = SweepExecutor(fault_plan=plan).run_many([job])[0]
        b = SweepExecutor(fault_plan=plan).run_many([job])[0]
        assert a.records == b.records
        assert a.server_samples == b.server_samples

    def test_worker_faults_stay_out_of_cache_key(self):
        job = make_jobs(1)[0]
        plain = SweepExecutor()
        worker_faults = SweepExecutor(
            fault_plan=FaultPlan(worker_kill_rate=0.9, worker_stall_rate=0.5))
        assert plain.key_for(job) == worker_faults.key_for(job)


def test_pairs_with_quarantined_member_come_back_none():
    from repro.experiments.datagen import Scenario, collect_windows
    from tests.parallel.test_executor import small_scenarios

    targets = small_targets()
    scenarios = small_scenarios()
    # Poison everything: every pair must be skipped, and collect_windows
    # must then report it has nothing rather than crash.
    plan = FaultPlan(worker_kill_rate=1.0)
    executor = SweepExecutor(fault_plan=plan, retries=0)
    with pytest.raises(RuntimeError, match="no labelled windows"):
        collect_windows(targets, scenarios, small_config(),
                        executor=executor)
    assert executor.quarantined
    pairs = executor.run_pairs([
        PairJob(targets[0], tuple(scenarios[1].interference), small_config(),
                seed_salt="x")
    ])
    assert pairs == [None]
