"""Tests for the sweep executor: dedup, caching, parallel determinism."""

import numpy as np
import pytest

from repro.experiments.datagen import Scenario, collect_windows
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.parallel import PairJob, RunCache, RunJob, SweepExecutor, resolve_n_jobs
from repro.workloads.io500 import make_io500_task


def small_config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.5, seed=0)


def small_targets():
    return [make_io500_task("ior-easy-write", ranks=2, scale=0.1)]


def small_scenarios():
    return [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=2,
                                            ranks=2, scale=0.2),)),
    ]


def test_resolve_n_jobs():
    assert resolve_n_jobs(3) == 3
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs(None) >= 1
    assert resolve_n_jobs(0) >= 1
    assert resolve_n_jobs(-2) >= 1


def test_baseline_shared_across_scenarios():
    """2 pairs = 4 runs requested, but the quiet scenario's 'interfered'
    run has no noise, so it deduplicates onto the shared baseline:
    only 2 simulations execute."""
    executor = SweepExecutor(n_jobs=1)
    target = small_targets()[0]
    pairs = [PairJob(target, tuple(s.interference), small_config(),
                     seed_salt=s.name) for s in small_scenarios()]
    paired = executor.run_pairs(pairs)
    assert len(paired) == 2
    assert executor.runs_executed == 2
    assert executor.runs_deduplicated == 2
    assert paired[0].baseline is paired[1].baseline
    assert paired[0].interfered is paired[0].baseline  # quiet == baseline


def test_run_one_matches_direct_execution():
    from repro.experiments.runner import execute_run

    cfg = small_config()
    target = small_targets()[0]
    direct = execute_run(target, [], cfg)
    via_executor = SweepExecutor().run_one(RunJob(target, (), cfg))
    assert via_executor.job == direct.job
    assert via_executor.records == direct.records
    assert via_executor.duration == direct.duration


def test_parallel_bit_identical_to_serial():
    """The acceptance criterion: n_jobs=4 must produce the exact same
    WindowBank as n_jobs=1, bit for bit."""
    serial = collect_windows(small_targets(), small_scenarios(),
                             small_config(), n_jobs=1)
    parallel = collect_windows(small_targets(), small_scenarios(),
                               small_config(), n_jobs=4)
    assert np.array_equal(serial.X, parallel.X)
    assert np.array_equal(serial.levels, parallel.levels)
    assert serial.sources == parallel.sources


def test_warm_cache_executes_zero_runs(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = SweepExecutor(cache=RunCache(cache_dir))
    bank_cold = collect_windows(small_targets(), small_scenarios(),
                                small_config(), executor=cold)
    assert cold.runs_executed > 0

    warm = SweepExecutor(cache=RunCache(cache_dir))
    bank_warm = collect_windows(small_targets(), small_scenarios(),
                                small_config(), executor=warm)
    assert warm.runs_executed == 0
    assert warm.cache.hits > 0
    assert warm.cache.misses == 0
    assert np.array_equal(bank_cold.X, bank_warm.X)
    assert np.array_equal(bank_cold.levels, bank_warm.levels)


def test_cache_replay_survives_window_size_change(tmp_path):
    """window_size is post-processing: re-binning at another size must
    be pure cache replay."""
    from dataclasses import replace

    cache_dir = tmp_path / "cache"
    cold = SweepExecutor(cache=RunCache(cache_dir))
    collect_windows(small_targets(), small_scenarios(), small_config(),
                    executor=cold)

    warm = SweepExecutor(cache=RunCache(cache_dir))
    rebinned = collect_windows(small_targets(), small_scenarios(),
                               replace(small_config(), window_size=0.5),
                               executor=warm)
    assert warm.runs_executed == 0
    assert len(rebinned) > 0


def test_executor_accepts_path_as_cache(tmp_path):
    executor = SweepExecutor(cache=tmp_path / "c")
    assert isinstance(executor.cache, RunCache)


def test_stats_shape(tmp_path):
    executor = SweepExecutor(n_jobs=2, cache=tmp_path / "c")
    stats = executor.stats()
    assert stats["n_jobs"] == 2
    assert stats["runs_executed"] == 0
    assert set(stats["cache"]) >= {"hits", "misses", "stores", "errors"}
    assert SweepExecutor().stats()["cache"] is None


def test_init_worker_attach_and_detach():
    """The pool initializer installs exactly the tracer state a worker
    needs: a fresh tracer under the parent's trace id when traced, no
    tracer at all (even a fork-inherited one) when untraced — and the
    heavy simulation modules are hot either way."""
    import sys

    from repro.obs import trace as _trace
    from repro.obs.distributed import TraceContext
    from repro.parallel import init_worker

    saved = _trace.get()
    try:
        tracer = init_worker(TraceContext(trace_id="t-init",
                                          worker="w0").to_dict())
        assert tracer is not None and tracer.trace_id == "t-init"
        assert _trace.get() is tracer
        assert "repro.experiments.runner" in sys.modules
        assert "repro.sim.batch" in sys.modules

        assert init_worker(None) is None
        assert _trace.get() is None  # inherited tracer detached
    finally:
        _trace.TRACER = saved


def test_pool_initializer_keeps_parallel_results_identical():
    """Moving one-time setup into the initializer must not change what
    the pool produces: same banks as serial, still bit for bit."""
    serial = collect_windows(small_targets(), small_scenarios(),
                             small_config(), n_jobs=1)
    pooled = collect_windows(small_targets(), small_scenarios(),
                             small_config(), n_jobs=2)
    assert np.array_equal(serial.X, pooled.X)
    assert np.array_equal(serial.levels, pooled.levels)


def test_executor_shards_validation():
    with pytest.raises(ValueError, match="shards"):
        SweepExecutor(shards=0)
    assert SweepExecutor(shards=2).shards == 2
    assert SweepExecutor().shards is None


def test_parallel_merges_worker_metrics(tmp_path):
    """Worker registries ship back with the runs: after a parallel sweep
    the parent registry must show the simulation counters a serial sweep
    would have recorded."""
    from repro.obs.metrics import REGISTRY

    jobs = [
        RunJob(small_targets()[0],
               (InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                                 scale=0.1 * (i + 1)),),
               small_config(), seed_salt=f"m{i}")
        for i in range(2)
    ]
    before = REGISTRY.counter("monitor.server_samples").value
    SweepExecutor(n_jobs=2).run_many(jobs)
    after = REGISTRY.counter("monitor.server_samples").value
    assert after > before
