"""Shard-worker liveness: a dead or wedged worker must raise a
descriptive ShardWorkerError instead of deadlocking the coordinator."""

import pytest

from repro.experiments.runner import experiment_cluster
from repro.parallel import ProcessDomainGroup, ShardWorkerError


@pytest.fixture()
def group():
    config = experiment_cluster()
    g = ProcessDomainGroup(config, list(range(config.n_domains)),
                           sample_interval=0.25, n_workers=1)
    yield g
    g.close()


def test_recv_timeout_validation():
    config = experiment_cluster()
    with pytest.raises(ValueError, match="recv_timeout"):
        ProcessDomainGroup(config, list(range(config.n_domains)),
                           sample_interval=0.25, n_workers=1,
                           recv_timeout=0.0)


def test_dead_worker_raises_named_error(group):
    """Kill the worker mid-run: the next pipe read must name the worker
    and the domains it hosted instead of blocking forever."""
    worker = group._workers[0]
    worker["proc"].terminate()
    worker["proc"].join(timeout=10)
    with pytest.raises(ShardWorkerError) as err:
        group._recv(worker, waiting_for="its window reply")
    message = str(err.value)
    assert "shard0" in message
    assert "domain" in message
    for d in worker["domains"]:
        assert str(d) in message
    assert "its window reply" in message


def test_unresponsive_worker_hits_recv_timeout():
    """A live worker that never answers trips the bounded wait."""
    config = experiment_cluster()
    group = ProcessDomainGroup(config, list(range(config.n_domains)),
                               sample_interval=0.25, n_workers=1,
                               recv_timeout=0.3)
    try:
        # Nothing was sent, so the worker (alive, blocked on its own
        # recv) will never reply.
        with pytest.raises(ShardWorkerError, match="no its final results"):
            group._recv(group._workers[0],
                        waiting_for="its final results")
        assert group._workers[0]["proc"].is_alive()
    finally:
        group.close()


def test_healthy_group_still_finishes(group):
    """The liveness machinery must not break the clean path."""
    result = group.finish()
    assert result["events"] >= 0
    assert isinstance(result["samples"], list)
