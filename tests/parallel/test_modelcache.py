"""Tests for the on-disk content-addressed model cache."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.parallel.modelcache import ModelCache

KEY = "cd" + "1" * 38


def small_dataset(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(80, 3, 5))
    hot = rng.integers(0, 3, size=80)
    intensity = rng.uniform(0, 6, size=80)
    X[np.arange(80), hot, 0] += intensity
    y = (intensity > 3).astype(int)
    return Dataset(X, y, feature_names=("a", "b", "c", "d", "e"))


@pytest.fixture(scope="module")
def predictor():
    return InterferencePredictor.train(
        small_dataset(), BINARY_THRESHOLDS,
        config=TrainConfig(epochs=4, seed=0), restarts=1)


def test_miss_then_hit_round_trip(tmp_path, predictor):
    cache = ModelCache(tmp_path / "cache")
    assert cache.get(KEY) is None
    cache.put(KEY, predictor, material={"why": "test"})
    assert KEY in cache
    back = cache.get(KEY)
    assert back is not None
    X = small_dataset().X
    assert np.array_equal(back.predict_proba(X), predictor.predict_proba(X))
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["stores"] == 1
    assert len(cache) == 1


def test_put_is_idempotent(tmp_path, predictor):
    cache = ModelCache(tmp_path / "cache")
    cache.put(KEY, predictor)
    cache.put(KEY, predictor)
    assert cache.stats()["stores"] == 1
    assert len(cache) == 1


def test_spec_file_written(tmp_path, predictor):
    cache = ModelCache(tmp_path / "cache")
    cache.put(KEY, predictor, material={"kind": "trained-predictor"})
    spec = cache.path_for(KEY) / "spec.json"
    assert spec.exists()
    assert "trained-predictor" in spec.read_text()


def test_corrupt_entry_is_a_miss_and_removed(tmp_path, predictor):
    """A garbled model file reads as a miss, the entry is dropped, and a
    retrain can store the slot again — never a crashed experiment."""
    cache = ModelCache(tmp_path / "cache")
    cache.put(KEY, predictor)
    (cache.path_for(KEY) / "model.npz").write_bytes(b"garbage")
    assert cache.get(KEY) is None
    assert cache.stats()["errors"] == 1
    assert not cache.path_for(KEY).exists()
    cache.put(KEY, predictor)
    assert cache.get(KEY) is not None


def test_short_key_rejected(tmp_path):
    cache = ModelCache(tmp_path / "cache")
    with pytest.raises(ValueError):
        cache.path_for("ab")
