"""Tests for the parallel training executor.

The load-bearing contract: whatever mix of parallelism, caching,
deduplication and supervision is in play, the returned predictors are
bit-identical to the serial restart loop's.
"""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.parallel import ModelCache, TrainExecutor, TrainJob

CFG = TrainConfig(epochs=5, patience=3, seed=0)


def small_dataset(seed=0, n=90, n_classes=2):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 0.3, size=(n, 3, 5))
    hot = rng.integers(0, 3, size=n)
    intensity = rng.uniform(0, 3 * n_classes, size=n)
    X[np.arange(n), hot, 0] += intensity
    y = np.minimum((intensity // 3).astype(int), n_classes - 1)
    return Dataset(X, y, feature_names=("a", "b", "c", "d", "e"))


def assert_same_predictor(p, q, X):
    __tracebackhide__ = True
    for a, b in zip(p.model.params(), q.model.params()):
        assert np.array_equal(a.value, b.value)
    assert np.array_equal(p.normalizer.mean, q.normalizer.mean)
    assert np.array_equal(p.normalizer.std, q.normalizer.std)
    assert np.array_equal(p.predict_proba(X), q.predict_proba(X))


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def serial_reference(dataset):
    return InterferencePredictor.train(dataset, BINARY_THRESHOLDS,
                                       config=CFG, restarts=3)


def test_parallel_restarts_bit_identical_to_serial(dataset,
                                                   serial_reference):
    trainer = TrainExecutor(n_jobs=2)
    predictor = trainer.train_predictor(dataset,
                                        thresholds=BINARY_THRESHOLDS,
                                        config=CFG, restarts=3)
    assert trainer.trainings_executed == 3
    assert_same_predictor(serial_reference, predictor, dataset.X)
    assert predictor.history.val_loss == serial_reference.history.val_loss


def test_supervised_path_bit_identical(dataset, serial_reference):
    trainer = TrainExecutor(n_jobs=2, run_timeout=300.0, retries=1)
    predictor = trainer.train_predictor(dataset,
                                        thresholds=BINARY_THRESHOLDS,
                                        config=CFG, restarts=3)
    assert_same_predictor(serial_reference, predictor, dataset.X)
    assert not trainer.quarantined


def test_serial_executor_path_bit_identical(dataset, serial_reference):
    predictor = TrainExecutor(n_jobs=1).train_predictor(
        dataset, thresholds=BINARY_THRESHOLDS, config=CFG, restarts=3)
    assert_same_predictor(serial_reference, predictor, dataset.X)


def test_batch_deduplicates_equal_jobs(dataset):
    trainer = TrainExecutor(n_jobs=2)
    job = TrainJob(dataset, thresholds=BINARY_THRESHOLDS, config=CFG,
                   restarts=2)
    out = trainer.train_predictors([job, job, job])
    assert trainer.jobs_deduplicated == 2
    assert trainer.trainings_executed == 2  # one job's restarts only
    assert out[0] is out[1] is out[2]


def test_distinct_recipes_do_not_collide(dataset):
    trainer = TrainExecutor(n_jobs=2)
    ds3 = small_dataset(seed=5, n=120, n_classes=3)
    out = trainer.train_predictors([
        TrainJob(dataset, thresholds=BINARY_THRESHOLDS, config=CFG,
                 restarts=2),
        TrainJob(ds3, thresholds=MULTICLASS_THRESHOLDS,
                 config=TrainConfig(epochs=5, patience=3, seed=1),
                 seed=1, restarts=2),
    ])
    assert trainer.jobs_deduplicated == 0
    assert out[0].n_classes == 2
    assert out[1].n_classes == 3


def test_cold_then_warm_cache(tmp_path, dataset, serial_reference):
    cache_dir = tmp_path / "models"
    cold = TrainExecutor(n_jobs=2, cache=ModelCache(cache_dir))
    first = cold.train_predictor(dataset, thresholds=BINARY_THRESHOLDS,
                                 config=CFG, restarts=3)
    assert cold.trainings_executed == 3

    warm = TrainExecutor(n_jobs=2, cache=ModelCache(cache_dir))
    second = warm.train_predictor(dataset, thresholds=BINARY_THRESHOLDS,
                                  config=CFG, restarts=3)
    assert warm.trainings_executed == 0  # pure recall, zero training
    assert warm.cache.hits == 1
    assert_same_predictor(serial_reference, first, dataset.X)
    assert_same_predictor(first, second, dataset.X)


def test_corrupt_cache_entry_retrains(tmp_path, dataset):
    cache_dir = tmp_path / "models"
    cold = TrainExecutor(n_jobs=1, cache=ModelCache(cache_dir))
    job = TrainJob(dataset, thresholds=BINARY_THRESHOLDS, config=CFG,
                   restarts=2)
    first = cold.train_predictors([job])[0]
    key = cold.key_for(job)
    (cold.cache.path_for(key) / "model.npz").write_bytes(b"garbage")

    again = TrainExecutor(n_jobs=1, cache=ModelCache(cache_dir))
    second = again.train_predictors([job])[0]
    assert again.cache.errors == 1
    assert again.trainings_executed == 2  # retrained after the drop
    assert_same_predictor(first, second, dataset.X)


def test_salt_changes_key(dataset):
    job = TrainJob(dataset, config=CFG)
    plain = TrainExecutor(n_jobs=1).key_for(job)
    salted = TrainExecutor(n_jobs=1, salt="v2").key_for(job)
    assert plain != salted


def test_invalid_inputs_rejected_before_any_work(dataset):
    trainer = TrainExecutor(n_jobs=2)
    with pytest.raises(ValueError):
        trainer.train_predictor(dataset, thresholds=BINARY_THRESHOLDS,
                                config=CFG, restarts=0)
    ds3 = small_dataset(seed=5, n=120, n_classes=3)
    with pytest.raises(ValueError):
        trainer.train_predictor(ds3, thresholds=BINARY_THRESHOLDS,
                                config=CFG)
    assert trainer.trainings_executed == 0


def test_quarantined_training_yields_none(dataset):
    """A watchdog-killed restart quarantines its job instead of hanging
    or crashing; single-job train_predictor surfaces it as an error."""
    trainer = TrainExecutor(n_jobs=2, run_timeout=1e-4, retries=0)
    out = trainer.train_predictors([
        TrainJob(dataset, thresholds=BINARY_THRESHOLDS, config=CFG,
                 restarts=2)])
    assert out == [None]
    assert trainer.quarantined
    assert trainer.timeouts >= 1
    with pytest.raises(RuntimeError):
        trainer.train_predictor(dataset, thresholds=BINARY_THRESHOLDS,
                                config=CFG, restarts=2)
