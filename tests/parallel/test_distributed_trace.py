"""Acceptance tests for cross-process trace propagation in the executors.

ISSUE 6's tentpole contract: a ``--jobs 4`` sweep run under an installed
tracer produces ONE merged timeline — wall-clock job spans (queue-wait,
execute, cache probes) from the parent wrapping the simulated-time spans
each worker recorded inside its run — with deterministic structure, and
the merged metrics registry exactly matching a serial execution of the
same job set.
"""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.distributed import WALL_CLOCK
from repro.obs.trace import Tracer
from repro.parallel import RunCache, RunJob, SweepExecutor
from repro.workloads.io500 import make_io500_task


@pytest.fixture(autouse=True)
def _isolate_obs_state():
    previous_tracer = obs_trace.TRACER
    obs_trace.TRACER = None
    obs_metrics.REGISTRY.reset()
    yield
    obs_trace.TRACER = previous_tracer
    obs_metrics.REGISTRY.reset()


def small_config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.25, seed=0)


def four_distinct_jobs():
    """Four jobs with distinct run keys.

    ``run_key`` ignores ``seed_salt`` for interference-free jobs (it only
    seeds noise launches), so distinctness must come from the workload
    config itself — here, the rank count.
    """
    cfg = small_config()
    return [
        RunJob(make_io500_task("ior-easy-write", ranks=r, scale=0.1), (), cfg)
        for r in (1, 2, 3, 4)
    ]


def traced_sweep(n_jobs: int, cache=None) -> tuple[Tracer, dict[str, dict]]:
    """Run the 4-job sweep under a fresh tracer; return (tracer, metrics)."""
    obs_metrics.REGISTRY.reset()
    tracer = obs_trace.install(Tracer(trace_id="sweep-accept"))
    try:
        runs = SweepExecutor(n_jobs=n_jobs, cache=cache).run_many(
            four_distinct_jobs())
    finally:
        obs_trace.uninstall()
    assert all(run is not None for run in runs)
    return tracer, obs_metrics.REGISTRY.snapshot()


def span_index(tracer: Tracer) -> dict[int, object]:
    return {span.span_id: span for span in tracer.spans}


class TestMergedTimeline:
    @pytest.fixture(scope="class")
    def sweep(self):
        return traced_sweep(n_jobs=4)

    def test_one_timeline_with_spans_from_all_four_workers(self, sweep):
        tracer, _ = sweep
        assert all(s.trace_id == "sweep-accept" for s in tracer.spans)
        runs = [s for s in tracer.spans if s.name == "job.run"]
        assert len(runs) == 4
        workers = {s.attrs["worker"] for s in runs}
        assert len(workers) == 4  # one label per distinct job
        # Every worker contributed simulated-time spans from inside its run.
        sim_workers = {s.attrs.get("worker") for s in tracer.spans
                       if s.attrs.get("clock") != WALL_CLOCK}
        assert workers <= sim_workers

    def test_queue_wait_and_execute_phases_nest_under_job_run(self, sweep):
        tracer, _ = sweep
        index = span_index(tracer)
        for name in ("job.queue-wait", "job.execute"):
            children = [s for s in tracer.spans if s.name == name]
            assert len(children) == 4, name
            for child in children:
                parent = index[child.parent_id]
                assert parent.name == "job.run"
                assert parent.attrs["worker"] == child.attrs["worker"]
                assert child.attrs["clock"] == WALL_CLOCK
                assert child.end is not None and child.end >= child.start

    def test_worker_sim_spans_hang_off_their_execute_span(self, sweep):
        tracer, _ = sweep
        index = span_index(tracer)
        executes = {s.span_id: s for s in tracer.spans
                    if s.name == "job.execute"}
        sim_roots = [
            s for s in tracer.spans
            if s.attrs.get("clock") != WALL_CLOCK
            and s.parent_id in executes
        ]
        assert len(sim_roots) >= 4
        # Parent/child ids are consistent throughout the merged trace.
        for span in tracer.spans:
            if span.parent_id is not None:
                assert span.parent_id in index
                assert span.parent_id != span.span_id

    def test_cache_probe_spans_present_when_cache_configured(self, tmp_path):
        tracer, _ = traced_sweep(n_jobs=2, cache=RunCache(tmp_path / "c"))
        probes = [s for s in tracer.spans if s.name == "cache.probe"]
        assert len(probes) == 4
        assert all(s.attrs["clock"] == WALL_CLOCK for s in probes)
        assert all(s.attrs["hit"] is False for s in probes)  # cold cache


class TestDeterminism:
    def test_same_sweep_twice_gives_identical_structure(self):
        def structure(tracer):
            return [(s.span_id, s.parent_id, s.name, s.attrs.get("worker"))
                    for s in tracer.spans]

        first, _ = traced_sweep(n_jobs=4)
        second, _ = traced_sweep(n_jobs=4)
        assert structure(first) == structure(second)

    def test_sim_spans_byte_identical_across_runs(self):
        def sim_dicts(tracer):
            return [s.to_dict() for s in tracer.spans
                    if s.attrs.get("clock") != WALL_CLOCK]

        first, _ = traced_sweep(n_jobs=4)
        second, _ = traced_sweep(n_jobs=4)
        assert sim_dicts(first) == sim_dicts(second)


def comparable(snapshot: dict[str, dict]) -> dict[str, dict]:
    """The metrics covered by the serial/parallel equality contract.

    Executor bookkeeping (``parallel.*``) and per-worker labeled gauges
    are parallel-only by construction; everything else — the simulation
    counters and histograms the workers recorded — must merge to exactly
    what a serial run records.
    """
    return {
        name: doc for name, doc in snapshot.items()
        if not name.startswith("parallel.")
        and "{worker=" not in name
        and doc.get("kind") in ("counter", "histogram")
    }


class TestMetricsMerge:
    def test_parallel_counters_and_histograms_equal_serial(self):
        _, serial = traced_sweep(n_jobs=1)
        _, parallel = traced_sweep(n_jobs=4)
        serial_cmp, parallel_cmp = comparable(serial), comparable(parallel)
        assert serial_cmp  # the contract must cover something
        assert serial_cmp == parallel_cmp

    def test_parallel_health_gauges_recorded(self):
        _, snapshot = traced_sweep(n_jobs=4)
        assert snapshot["parallel.workers_used"]["value"] >= 1
        assert snapshot["parallel.straggler_skew"]["value"] >= 1.0
        busy = [name for name in snapshot
                if name.startswith("parallel.worker_busy_seconds{worker=")]
        assert len(busy) == int(snapshot["parallel.workers_used"]["value"])
        assert snapshot["parallel.queue_wait_seconds"]["count"] == 4

    def test_untraced_parallel_sweep_needs_no_tracer(self):
        obs_metrics.REGISTRY.reset()
        runs = SweepExecutor(n_jobs=4).run_many(four_distinct_jobs())
        assert all(run is not None for run in runs)
        assert obs_trace.get() is None
