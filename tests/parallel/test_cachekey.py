"""Tests for content-addressed run keys."""

from dataclasses import replace

from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.parallel.cachekey import (
    canonical_json,
    run_key,
    run_key_material,
    stable_hash,
    workload_spec,
)
from repro.workloads.io500 import make_io500_task


def small_config(**overrides):
    base = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.5, seed=0)
    return replace(base, **overrides) if overrides else base


def target():
    return make_io500_task("ior-easy-write", ranks=2, scale=0.1)


NOISE = (InterferenceSpec("ior-easy-read", instances=1, ranks=2, scale=0.2),)


def test_key_is_stable_across_fresh_objects():
    k1 = run_key(target(), NOISE, small_config(), seed_salt="s")
    k2 = run_key(target(), NOISE, small_config(), seed_salt="s")
    assert k1 == k2


def test_canonical_json_ignores_dict_insertion_order():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})


def test_workload_spec_distinguishes_instances():
    spec_a = workload_spec(target())
    spec_b = workload_spec(make_io500_task("ior-easy-write", ranks=2,
                                           scale=0.2))
    assert spec_a["type"] == spec_b["type"]
    assert spec_a != spec_b


def test_window_size_excluded_from_key():
    """window_size only parameterises post-processing, so re-binning the
    same sweep at another window size must hit the cache."""
    k1 = run_key(target(), NOISE, small_config(window_size=0.25), seed_salt="s")
    k2 = run_key(target(), NOISE, small_config(window_size=1.0), seed_salt="s")
    assert k1 == k2


def test_sample_interval_changes_key():
    k1 = run_key(target(), NOISE, small_config(), seed_salt="s")
    k2 = run_key(target(), NOISE, small_config(sample_interval=0.0625),
                 seed_salt="s")
    assert k1 != k2


def test_seed_changes_key():
    k1 = run_key(target(), NOISE, small_config(seed=0), seed_salt="s")
    k2 = run_key(target(), NOISE, small_config(seed=1), seed_salt="s")
    assert k1 != k2


def test_baseline_ignores_seed_salt_and_warmup():
    """Both only affect noise launches, so every scenario of a target
    shares one baseline run."""
    k1 = run_key(target(), (), small_config(warmup=0.5), seed_salt="scenario-a")
    k2 = run_key(target(), (), small_config(warmup=2.0), seed_salt="scenario-b")
    assert k1 == k2


def test_interfered_runs_keep_seed_salt_and_warmup():
    k1 = run_key(target(), NOISE, small_config(warmup=0.5), seed_salt="a")
    k2 = run_key(target(), NOISE, small_config(warmup=0.5), seed_salt="b")
    k3 = run_key(target(), NOISE, small_config(warmup=2.0), seed_salt="a")
    assert len({k1, k2, k3}) == 3


def test_interference_mix_changes_key():
    more = NOISE + (InterferenceSpec("mdt-hard-write", instances=1, ranks=2,
                                     scale=0.2),)
    k1 = run_key(target(), NOISE, small_config(), seed_salt="s")
    k2 = run_key(target(), more, small_config(), seed_salt="s")
    assert k1 != k2


def test_extra_salt_changes_key():
    k1 = run_key(target(), NOISE, small_config(), seed_salt="s", salt="")
    k2 = run_key(target(), NOISE, small_config(), seed_salt="s", salt="v2")
    assert k1 != k2


def test_material_is_json_serialisable():
    import json

    material = run_key_material(target(), NOISE, small_config(), seed_salt="s")
    text = json.dumps(material, sort_keys=True)
    assert "ior-easy-write" in text
    assert "window_size" not in text
