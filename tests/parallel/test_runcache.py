"""Tests for the on-disk run cache."""

import numpy as np
import pytest

from repro.common.units import MIB
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.server_monitor import ServerMonitor
from repro.parallel.cache import RunCache
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload

KEY = "ab" + "0" * 38


@pytest.fixture(scope="module")
def sample_run():
    cluster = Cluster()
    monitor = ServerMonitor(cluster, sample_interval=0.25)
    monitor.start()
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=2 * MIB))
    handle = launch(cluster, w, [0, 1], seed=3)
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + 0.5)
    return MonitoredRun(
        job=w.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
    )


def test_miss_then_hit_round_trip(tmp_path, sample_run):
    cache = RunCache(tmp_path / "cache")
    assert cache.get(KEY) is None
    cache.put(KEY, sample_run, material={"why": "test"})
    assert KEY in cache
    back = cache.get(KEY)
    assert back is not None
    assert back.job == sample_run.job
    assert back.records == sample_run.records
    assert back.duration == pytest.approx(sample_run.duration)
    assert len(back.server_samples) == len(sample_run.server_samples)
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["stores"] == 1
    assert len(cache) == 1


def test_put_is_idempotent(tmp_path, sample_run):
    cache = RunCache(tmp_path / "cache")
    cache.put(KEY, sample_run)
    cache.put(KEY, sample_run)
    assert cache.stats()["stores"] == 1
    assert len(cache) == 1


def test_spec_file_written(tmp_path, sample_run):
    cache = RunCache(tmp_path / "cache")
    cache.put(KEY, sample_run, material={"target": "ior"})
    spec = cache.path_for(KEY) / "spec.json"
    assert spec.exists()
    assert "ior" in spec.read_text()


def test_corrupt_entry_is_a_miss_and_removed(tmp_path, sample_run):
    """A truncated/garbled entry must never crash a sweep: it reads as a
    miss, the entry is dropped, and a recompute can store it again."""
    cache = RunCache(tmp_path / "cache")
    cache.put(KEY, sample_run)
    (cache.path_for(KEY) / "run" / "samples.npz").write_bytes(b"garbage")
    assert cache.get(KEY) is None
    assert cache.stats()["errors"] == 1
    assert not cache.path_for(KEY).exists()
    # Recompute path: the slot is writable again.
    cache.put(KEY, sample_run)
    back = cache.get(KEY)
    assert back is not None
    assert np.isfinite(back.duration)


def test_short_key_rejected(tmp_path):
    cache = RunCache(tmp_path / "cache")
    with pytest.raises(ValueError):
        cache.path_for("ab")
