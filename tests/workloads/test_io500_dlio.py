"""Tests for the IO500 task factory and DLIO workloads."""

import pytest

from repro.common.records import OpType
from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.dlio import DLIOConfig, DLIOWorkload
from repro.workloads.io500 import IO500_TASKS, make_io500_task


def run(workload, seed=3):
    cluster = Cluster()
    handle = launch(cluster, workload, [0, 1, 2, 3], seed)
    cluster.env.run(until=handle.done)
    return cluster


def test_task_list_matches_paper_order():
    assert IO500_TASKS == (
        "ior-easy-read", "ior-hard-read", "mdt-hard-read", "ior-easy-write",
        "ior-hard-write", "mdt-easy-write", "mdt-hard-write",
    )


@pytest.mark.parametrize("task", IO500_TASKS)
def test_every_task_builds_and_runs(task):
    w = make_io500_task(task, ranks=2, scale=0.05)
    cluster = run(w)
    assert len(cluster.collector.records) > 0
    assert cluster.env.now > 0


def test_unknown_task_rejected():
    with pytest.raises(ValueError):
        make_io500_task("ior-medium-write")
    with pytest.raises(ValueError):
        make_io500_task("ior-easy-read", scale=0)


def test_custom_name_namespaces_instances():
    a = make_io500_task("ior-easy-write", name="noise0", ranks=1, scale=0.05)
    b = make_io500_task("ior-easy-write", name="noise1", ranks=1, scale=0.05)
    cluster = Cluster()
    ha = launch(cluster, a, [0], 1)
    hb = launch(cluster, b, [1], 1)
    from repro.sim.engine import AllOf
    cluster.env.run(until=AllOf(cluster.env, [ha.done, hb.done]))
    jobs = {r.job for r in cluster.collector.records}
    assert jobs == {"noise0", "noise1"}


class TestDLIO:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DLIOConfig(model="resnet")
        with pytest.raises(ValueError):
            DLIOConfig(model="bert", epochs=0)

    def test_unet3d_reads_shuffled_samples(self):
        cfg = DLIOConfig(model="unet3d", ranks=2, epochs=1, steps_per_epoch=4,
                         sample_bytes=MIB, compute_time=0.01)
        cluster = run(DLIOWorkload(cfg))
        reads = [r for r in cluster.collector.records if r.op is OpType.READ]
        assert len(reads) == 8
        assert all(r.size == MIB for r in reads)
        assert all(r.path.startswith("/dlio-unet3d/data/sample") for r in reads)

    def test_unet3d_checkpoints_once_per_epoch(self):
        cfg = DLIOConfig(model="unet3d", ranks=2, epochs=2, steps_per_epoch=2,
                         sample_bytes=MIB, checkpoint_bytes=2 * MIB,
                         compute_time=0.01)
        cluster = run(DLIOWorkload(cfg))
        writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
        ckpts = {r.path for r in writes}
        assert len(ckpts) == 2  # rank 0, epochs 0 and 1

    def test_bert_reads_small_chunks_from_packed_files(self):
        cfg = DLIOConfig(model="bert", ranks=2, epochs=1, steps_per_epoch=4,
                         batch_read_bytes=256 * 1024, compute_time=0.01)
        cluster = run(DLIOWorkload(cfg))
        reads = [r for r in cluster.collector.records if r.op is OpType.READ]
        assert len(reads) == 8
        assert all(r.size == 256 * 1024 for r in reads)
        assert all("tfrecord" in r.path for r in reads)

    def test_compute_time_dominates_wallclock(self):
        """DLIO spends most of its time computing, so most windows are
        idle — the source of the paper's negative-heavy DLIO dataset."""
        cfg = DLIOConfig(model="unet3d", ranks=1, epochs=1, steps_per_epoch=8,
                         sample_bytes=MIB, compute_time=0.2)
        cluster = run(DLIOWorkload(cfg))
        io_time = sum(r.duration for r in cluster.collector.records)
        assert io_time < 0.5 * cluster.env.now

    def test_deterministic_sample_order_per_seed(self):
        cfg = DLIOConfig(model="unet3d", ranks=1, epochs=1, steps_per_epoch=6,
                         sample_bytes=MIB, compute_time=0.01)

        def order(seed):
            cluster = run(DLIOWorkload(cfg), seed=seed)
            return [r.path for r in cluster.collector.records
                    if r.op is OpType.READ]

        assert order(5) == order(5)
        assert order(5) != order(6)
