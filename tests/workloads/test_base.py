"""Tests for workload launching and interference loops."""

import pytest

from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.workloads.base import launch, launch_interference
from repro.workloads.ior import IorConfig, IorWorkload


def small_write(name="w", ranks=2):
    return IorWorkload(
        IorConfig(mode="easy", access="write", ranks=ranks, bytes_per_rank=MIB),
        name=name,
    )


def test_launch_requires_nodes():
    cluster = Cluster()
    with pytest.raises(ValueError):
        launch(cluster, small_write(), [], 1)
    with pytest.raises(ValueError):
        launch_interference(cluster, small_write(), [], 1)


def test_launch_round_robins_ranks_over_nodes():
    cluster = Cluster()
    handle = launch(cluster, small_write(ranks=4), [2, 5], 1)
    cluster.env.run(until=handle.done)
    # Ranks 0,2 -> node 2; ranks 1,3 -> node 5. All records exist.
    assert len({r.rank for r in cluster.collector.records}) == 4


def test_done_event_fires_when_all_ranks_finish():
    cluster = Cluster()
    handle = launch(cluster, small_write(ranks=3), [0, 1, 2], 1)
    cluster.env.run(until=handle.done)
    assert all(not p.is_alive for p in handle.processes)


def test_interference_loops_until_abandoned():
    cluster = Cluster()
    handle = launch_interference(cluster, small_write(name="noise", ranks=1),
                                 [0], 1)
    assert handle.done is None
    cluster.env.run(until=1.0)
    instances = {r.path.split("/")[2] for r in cluster.collector.records
                 if r.op.value == "write"}
    # Several iterations should have completed within a second.
    assert len(instances) >= 2
    assert all(p.is_alive for p in handle.processes)


def test_target_and_interference_coexist():
    cluster = Cluster()
    launch_interference(cluster, small_write(name="noise", ranks=2), [1, 2], 7)
    target = launch(cluster, small_write(name="target", ranks=1), [0], 7)
    cluster.env.run(until=target.done)
    jobs = {r.job for r in cluster.collector.records}
    assert jobs == {"noise", "target"}
