"""Tests for the application I/O models (Enzo, AMReX, OpenPMD)."""

import pytest

from repro.common.records import OpType, ServerKind
from repro.sim.cluster import Cluster
from repro.workloads.apps import (
    AmrexConfig,
    AmrexWorkload,
    EnzoConfig,
    EnzoWorkload,
    OpenPMDConfig,
    OpenPMDWorkload,
)
from repro.workloads.base import launch


def run(workload, seed=11):
    cluster = Cluster()
    handle = launch(cluster, workload, [0, 1, 2, 3], seed)
    cluster.env.run(until=handle.done)
    return cluster


def op_mix(cluster):
    mix = {}
    for r in cluster.collector.records:
        mix[r.op] = mix.get(r.op, 0) + 1
    return mix


class TestEnzo:
    def test_issues_all_five_op_families(self):
        """The paper: Enzo issues read, write, open, close and stats."""
        cluster = run(EnzoWorkload(EnzoConfig(ranks=2, cycles=2)))
        mix = op_mix(cluster)
        for op in (OpType.READ, OpType.WRITE, OpType.OPEN, OpType.CLOSE,
                   OpType.STAT):
            assert mix.get(op, 0) > 0, f"missing {op}"

    def test_write_sizes_vary_with_refinement_level(self):
        cluster = run(EnzoWorkload(EnzoConfig(ranks=2, cycles=4)))
        sizes = {r.size for r in cluster.collector.records
                 if r.op is OpType.WRITE and "grid" in r.path}
        assert len(sizes) >= 2

    def test_deterministic_op_sequence(self):
        cfg = EnzoConfig(ranks=2, cycles=2)

        def trace(seed):
            cluster = run(EnzoWorkload(cfg), seed=seed)
            return [(r.rank, r.op_id, r.op, r.path, r.size)
                    for r in cluster.collector.records]

        assert trace(3) == trace(3)

    def test_boundary_reads_resolve(self):
        cluster = run(EnzoWorkload(EnzoConfig(ranks=4, cycles=3)))
        peer_reads = [r for r in cluster.collector.records
                      if r.op is OpType.READ and ".g0" in r.path]
        assert len(peer_reads) == 4 * 3  # every rank, every cycle


class TestAmrex:
    def test_write_heavy_mix(self):
        cluster = run(AmrexWorkload(AmrexConfig(ranks=4, steps=2)))
        mix = op_mix(cluster)
        data_written = sum(r.size for r in cluster.collector.records
                           if r.op is OpType.WRITE)
        data_read = sum(r.size for r in cluster.collector.records
                        if r.op is OpType.READ)
        assert data_written > 4 * data_read
        assert mix.get(OpType.MKDIR, 0) == 2  # rank 0, one per step

    def test_level_files_are_striped(self):
        cluster = run(AmrexWorkload(AmrexConfig(ranks=2, steps=1)))
        f = cluster.fs.lookup("/amrex/it0/plt00000/Level_0/Cell_D_00000")
        assert f.layout.stripe_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AmrexConfig(ranks=0)


class TestOpenPMD:
    def test_metadata_intensive_mix(self):
        """OpenPMD represents the paper's metadata-intensive class: more
        metadata ops than data ops."""
        cluster = run(OpenPMDWorkload(OpenPMDConfig(ranks=2, iterations=4)))
        recs = cluster.collector.records
        meta = sum(1 for r in recs if r.op.is_metadata)
        data = sum(1 for r in recs if r.op.is_data)
        assert meta > data

    def test_mdt_receives_most_traffic(self):
        cluster = run(OpenPMDWorkload(OpenPMDConfig(ranks=2, iterations=4)))
        mdt_ops = sum(1 for r in cluster.collector.records
                      if any(s.kind is ServerKind.MDT for s in r.servers))
        assert mdt_ops > len(cluster.collector.records) / 2

    def test_small_record_payloads(self):
        cfg = OpenPMDConfig(ranks=1, iterations=2, records_per_iteration=3)
        cluster = run(OpenPMDWorkload(cfg))
        writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
        assert all(r.size <= cfg.record_bytes for r in writes)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenPMDConfig(iterations=0)
