"""Tests for IOR-like workloads."""

import pytest

from repro.common.records import OpType
from repro.common.rng import derive_rng
from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IOR_HARD_XFER, IorConfig, IorWorkload


def run_workload(workload, nodes=None, seed=1):
    cluster = Cluster()
    handle = launch(cluster, workload, nodes or [0, 1, 2, 3], seed)
    cluster.env.run(until=handle.done)
    return cluster


def test_config_validation():
    with pytest.raises(ValueError):
        IorConfig(mode="medium", access="write")
    with pytest.raises(ValueError):
        IorConfig(mode="easy", access="append")
    with pytest.raises(ValueError):
        IorConfig(mode="easy", access="write", ranks=0)


def test_task_name():
    assert IorConfig(mode="easy", access="write").task_name == "ior-easy-write"


def test_easy_write_file_per_process():
    cfg = IorConfig(mode="easy", access="write", ranks=4, bytes_per_rank=4 * MIB)
    cluster = run_workload(IorWorkload(cfg))
    writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
    paths = {r.path for r in writes}
    assert len(paths) == 4  # one file per rank
    per_rank = sum(r.size for r in writes if r.rank == 0)
    assert per_rank == 4 * MIB


def test_easy_write_is_sequential():
    cfg = IorConfig(mode="easy", access="write", ranks=1, bytes_per_rank=4 * MIB)
    cluster = run_workload(IorWorkload(cfg))
    writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
    offsets = [r.offset for r in writes]
    assert offsets == sorted(offsets)
    assert offsets[0] == 0


def test_hard_write_shared_file_strided():
    cfg = IorConfig(mode="hard", access="write", ranks=4,
                    bytes_per_rank=IOR_HARD_XFER * 8)
    cluster = run_workload(IorWorkload(cfg))
    writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
    assert len({r.path for r in writes}) == 1  # one shared file
    assert all(r.size == IOR_HARD_XFER for r in writes)
    # Rank-strided offsets never collide.
    offsets = [r.offset for r in writes]
    assert len(set(offsets)) == len(offsets)


def test_hard_shared_file_striped_over_all_osts():
    cfg = IorConfig(mode="hard", access="write", ranks=2,
                    bytes_per_rank=IOR_HARD_XFER * 4)
    cluster = run_workload(IorWorkload(cfg))
    f = cluster.fs.lookup(f"/ior-hard-write/it0/shared.dat")
    assert f.layout.stripe_count == cluster.config.n_osts


def test_read_variants_stage_input_files():
    cfg = IorConfig(mode="easy", access="read", ranks=2, bytes_per_rank=2 * MIB)
    cluster = run_workload(IorWorkload(cfg), nodes=[0, 1])
    reads = [r for r in cluster.collector.records if r.op is OpType.READ]
    assert sum(r.size for r in reads) == 4 * MIB


def test_hard_read_uses_staged_shared_file():
    cfg = IorConfig(mode="hard", access="read", ranks=2,
                    bytes_per_rank=IOR_HARD_XFER * 4)
    w = IorWorkload(cfg)
    cluster = run_workload(w, nodes=[0, 1])
    reads = [r for r in cluster.collector.records if r.op is OpType.READ]
    assert {r.path for r in reads} == {"/ior-hard-read/input/shared.dat"}


def test_same_seed_same_op_sequence():
    cfg = IorConfig(mode="easy", access="write", ranks=2, bytes_per_rank=2 * MIB)

    def trace():
        cluster = run_workload(IorWorkload(cfg), nodes=[0, 1], seed=9)
        return [(r.rank, r.op_id, r.op, r.path, r.offset, r.size)
                for r in cluster.collector.records]

    assert trace() == trace()


def test_instance_namespacing_for_interference_loops():
    cfg = IorConfig(mode="easy", access="write", ranks=1, bytes_per_rank=MIB)
    w = IorWorkload(cfg, name="noise")
    cluster = Cluster()
    sess = cluster.session("noise", 0, 0)

    def two_instances():
        yield from w.rank_body(sess, 0, derive_rng(1, "a"), instance=0)
        yield from w.rank_body(sess, 0, derive_rng(1, "b"), instance=1)

    cluster.env.run(until=cluster.env.process(two_instances()))
    paths = {r.path for r in cluster.collector.records if r.op is OpType.WRITE}
    assert paths == {"/noise/it0/rank0.dat", "/noise/it1/rank0.dat"}
