"""Tests for trace replay."""

import pytest

from repro.common.records import OpType
from repro.common.units import MIB
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload
from repro.workloads.replay import TraceReplayWorkload


def record_ior_trace():
    cluster = Cluster()
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=2 * MIB), name="orig")
    handle = launch(cluster, w, [0, 1], seed=3)
    cluster.env.run(until=handle.done)
    return cluster.collector.for_job("orig")


def test_replay_reproduces_op_sequence():
    trace = record_ior_trace()
    replay = TraceReplayWorkload(trace, name="replayed")
    cluster = Cluster()
    handle = launch(cluster, replay, [0, 1], seed=9)
    cluster.env.run(until=handle.done)
    replayed = cluster.collector.for_job("replayed")
    orig_ops = sorted((r.rank, r.op_id, r.op, r.path, r.offset, r.size)
                      for r in trace)
    new_ops = sorted((r.rank, r.op_id, r.op, r.path, r.offset, r.size)
                     for r in replayed)
    assert new_ops == orig_ops


def test_replay_preserves_think_time():
    """A trace with a large gap replays with (at least) that gap."""
    from repro.common.records import IORecord, ServerId, ServerKind

    ost = (ServerId(ServerKind.OST, 0),)
    trace = [
        IORecord("app", 0, 1, OpType.WRITE, "/f", 0, 1024, 0.0, 0.01, ost),
        IORecord("app", 0, 2, OpType.WRITE, "/f", 1024, 1024, 2.0, 2.01, ost),
    ]
    replay = TraceReplayWorkload(trace)
    cluster = Cluster()
    handle = launch(cluster, replay, [0], seed=1)
    cluster.env.run(until=handle.done)
    recs = cluster.collector.for_job("replay")
    assert recs[1].start - recs[0].start >= 2.0 - 0.02


def test_replay_without_think_time_is_back_to_back():
    trace = record_ior_trace()
    replay = TraceReplayWorkload(trace, preserve_think_time=False)
    cluster = Cluster()
    handle = launch(cluster, replay, [0, 1], seed=1)
    cluster.env.run(until=handle.done)
    assert cluster.env.now > 0


def test_replay_stages_read_targets():
    from repro.common.records import IORecord, ServerId, ServerKind

    ost = (ServerId(ServerKind.OST, 0),)
    trace = [IORecord("app", 0, 1, OpType.READ, "/input/data", 0, MIB,
                      0.0, 0.1, ost)]
    replay = TraceReplayWorkload(trace)
    cluster = Cluster()
    handle = launch(cluster, replay, [0], seed=1)
    cluster.env.run(until=handle.done)
    assert "/input/data" in cluster.fs
    reads = [r for r in cluster.collector.for_job("replay")
             if r.op is OpType.READ]
    assert len(reads) == 1


def test_replay_round_trips_through_dxt():
    """record -> DXT text -> parse -> replay."""
    from repro.monitor.darshan import dumps_dxt, loads_dxt

    trace = record_ior_trace()
    replay = TraceReplayWorkload(loads_dxt(dumps_dxt(trace)), name="fromdxt")
    cluster = Cluster()
    handle = launch(cluster, replay, [0, 1], seed=2)
    cluster.env.run(until=handle.done)
    assert len(cluster.collector.for_job("fromdxt")) == len(trace)


def test_validation():
    with pytest.raises(ValueError, match="empty"):
        TraceReplayWorkload([])
    from repro.common.records import IORecord, ServerId, ServerKind

    ost = (ServerId(ServerKind.OST, 0),)
    mixed = [
        IORecord("a", 0, 1, OpType.STAT, "/f", 0, 0, 0.0, 0.1, ost),
        IORecord("b", 0, 1, OpType.STAT, "/f", 0, 0, 0.0, 0.1, ost),
    ]
    with pytest.raises(ValueError, match="mixes jobs"):
        TraceReplayWorkload(mixed)