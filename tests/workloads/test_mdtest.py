"""Tests for MDTest-like workloads."""

import pytest

from repro.common.records import OpType, ServerKind
from repro.sim.cluster import Cluster
from repro.workloads.base import launch
from repro.workloads.mdtest import MDTEST_HARD_BYTES, MDTestConfig, MDTestWorkload


def run_workload(cfg, seed=1):
    cluster = Cluster()
    handle = launch(cluster, MDTestWorkload(cfg), [0, 1, 2, 3], seed)
    cluster.env.run(until=handle.done)
    return cluster


def test_config_validation():
    with pytest.raises(ValueError):
        MDTestConfig(mode="soft", access="write")
    with pytest.raises(ValueError):
        MDTestConfig(mode="easy", access="write", files_per_rank=0)


def test_easy_write_is_pure_metadata():
    cluster = run_workload(MDTestConfig(mode="easy", access="write", ranks=2,
                                        files_per_rank=8))
    recs = cluster.collector.records
    assert all(r.op.is_metadata for r in recs)
    creates = [r for r in recs if r.op is OpType.CREATE]
    assert len(creates) == 16
    # Every metadata op targets the MDT only.
    assert all(s.kind is ServerKind.MDT for r in recs for s in r.servers)


def test_easy_uses_private_directories():
    cluster = run_workload(MDTestConfig(mode="easy", access="write", ranks=4,
                                        files_per_rank=2))
    creates = [r for r in cluster.collector.records if r.op is OpType.CREATE]
    dirs = {r.path.rsplit("/", 1)[0] for r in creates}
    assert len(dirs) == 4


def test_hard_uses_one_shared_directory():
    cluster = run_workload(MDTestConfig(mode="hard", access="write", ranks=4,
                                        files_per_rank=2))
    creates = [r for r in cluster.collector.records if r.op is OpType.CREATE]
    dirs = {r.path.rsplit("/", 1)[0] for r in creates}
    assert len(dirs) == 1


def test_hard_write_carries_data_payload():
    cluster = run_workload(MDTestConfig(mode="hard", access="write", ranks=2,
                                        files_per_rank=4))
    writes = [r for r in cluster.collector.records if r.op is OpType.WRITE]
    assert len(writes) == 8
    assert all(r.size == MDTEST_HARD_BYTES for r in writes)
    assert all(s.kind is ServerKind.OST for r in writes for s in r.servers)


def test_hard_read_stats_and_reads_staged_files():
    cluster = run_workload(MDTestConfig(mode="hard", access="read", ranks=2,
                                        files_per_rank=4))
    recs = cluster.collector.records
    reads = [r for r in recs if r.op is OpType.READ]
    stats = [r for r in recs if r.op is OpType.STAT]
    assert len(reads) == 8
    assert len(stats) == 8


def test_shared_dir_slower_than_private_dirs():
    """mdtest-hard creates serialise on the shared-directory lock."""

    def elapsed(mode):
        cluster = run_workload(MDTestConfig(mode=mode, access="write", ranks=4,
                                            files_per_rank=32))
        return cluster.env.now

    assert elapsed("hard") > 1.3 * elapsed("easy")
