"""End-to-end integration: the paper's full pipeline at miniature scale.

Sweeps a target under noise, labels windows, assembles vectors, trains
the kernel predictor and uses it at "runtime" against a fresh monitored
execution — every paper component in one flow.
"""

import numpy as np
import pytest

from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.runner import ExperimentConfig, InterferenceSpec, run_pair
from repro.monitor.schema import vector_dim
from repro.workloads.io500 import make_io500_task


@pytest.fixture(scope="module")
def pipeline():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    targets = [
        make_io500_task("ior-easy-write", ranks=4, scale=0.3),
        make_io500_task("ior-easy-read", ranks=4, scale=0.3),
    ]
    scenarios = [
        Scenario("quiet"),
        Scenario("w2", (InterferenceSpec("ior-easy-write", instances=2,
                                         ranks=3, scale=0.25),)),
        Scenario("w3", (InterferenceSpec("ior-easy-write", instances=3,
                                         ranks=3, scale=0.25),)),
        Scenario("r2", (InterferenceSpec("ior-easy-read", instances=2,
                                         ranks=3, scale=0.25),)),
        Scenario("r3", (InterferenceSpec("ior-easy-read", instances=3,
                                         ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    dataset = bank_to_dataset(bank, BINARY_THRESHOLDS)
    predictor = InterferencePredictor.train(
        dataset, BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )
    return config, bank, dataset, predictor


def test_bank_covers_both_classes(pipeline):
    _, bank, dataset, _ = pipeline
    assert len(bank) >= 12
    counts = dataset.class_counts()
    assert counts.min() > 0, f"one-sided dataset: {counts}"


def test_predictor_fits_training_distribution(pipeline):
    _, _, dataset, predictor = pipeline
    preds = predictor.predict(dataset.X)
    accuracy = (preds == dataset.y).mean()
    assert accuracy > 0.85


def test_runtime_prediction_on_fresh_run(pipeline):
    """Deploy the predictor against a run it never saw (different seed)."""
    config, _, _, predictor = pipeline
    fresh_config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                                    warmup=1.0, seed=99)
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.3)
    noise = [InterferenceSpec("ior-easy-write", instances=3, ranks=3,
                              scale=0.25)]
    pair = run_pair(target, noise, fresh_config, seed_salt="deploy")
    predictions = predictor.predict_run(pair.interfered,
                                        config.window_size,
                                        config.sample_interval)
    truth = DegradationLabeller(window_size=config.window_size).window_labels(
        pair.baseline.records, pair.interfered.records, target.name
    )
    assert truth, "fresh run produced no labelled windows"
    hits = sum(predictions.get(w) == c for w, c in truth.items())
    assert hits / len(truth) > 0.6


def test_vectors_match_schema(pipeline):
    _, bank, _, _ = pipeline
    assert bank.X.shape[2] == vector_dim()
    assert np.isfinite(bank.X).all()
