"""Tests for the command-line entry point (parsing-level)."""

import pytest

from repro.__main__ import EXPERIMENTS, _RUNNERS, main


def test_every_experiment_has_a_runner():
    from repro.__main__ import EXTENSIONS

    assert set(EXPERIMENTS) | set(EXTENSIONS) == set(_RUNNERS)


def test_list_command(capsys):
    from repro.__main__ import EXTENSIONS

    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == list(EXPERIMENTS) + list(EXTENSIONS)


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure9000"])


def test_table2_fast_runs_end_to_end(tmp_path, capsys):
    """The cheapest experiment actually runs through the CLI."""
    assert main(["table2", "--fast", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "sectors_read" in out
    assert (tmp_path / "table2.txt").exists()
