"""Tests for the command-line entry point (parsing-level)."""

import pytest

from repro.__main__ import EXPERIMENTS, _RUNNERS, main


def test_every_experiment_has_a_runner():
    from repro.__main__ import EXTENSIONS

    assert set(EXPERIMENTS) | set(EXTENSIONS) == set(_RUNNERS)


def test_list_command(capsys):
    from repro.__main__ import EXTENSIONS

    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == list(EXPERIMENTS) + list(EXTENSIONS)


def test_unknown_experiment_rejected(capsys):
    """Unknown names get a one-line error and exit code 2, no traceback."""
    assert main(["figure9000"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "figure9000" in err


def test_bad_jobs_rejected(capsys):
    assert main(["table2", "--jobs", "0"]) == 2
    assert main(["table2", "--jobs", "-4"]) == 2
    assert "error:" in capsys.readouterr().err


def test_bad_run_timeout_and_retries_rejected(capsys):
    assert main(["table2", "--run-timeout", "0"]) == 2
    assert main(["table2", "--retries", "-1"]) == 2
    assert "error:" in capsys.readouterr().err


def test_bad_fault_spec_rejected(capsys):
    assert main(["table2", "--faults", "drop=oops"]) == 2
    assert main(["table2", "--faults", "nosuchkey=1"]) == 2
    err = capsys.readouterr().err
    assert "error: bad --faults spec" in err


def test_unwritable_cache_dir_rejected(capsys):
    """An uncreatable cache dir fails with a one-line error, not a
    traceback.  /proc rejects mkdir for every uid, including root."""
    assert main(["table2", "--fast", "--cache-dir", "/proc/nope/cache"]) == 2
    assert "not writable" in capsys.readouterr().err


def test_table2_fast_runs_end_to_end(tmp_path, capsys):
    """The cheapest experiment actually runs through the CLI."""
    cache_dir = tmp_path / "cache"
    assert main(["table2", "--fast", "--out", str(tmp_path),
                 "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "sectors_read" in out
    assert (tmp_path / "table2.txt").exists()
    assert (tmp_path / "table2.manifest.json").exists()
    assert any(cache_dir.iterdir())  # the run landed in the cache


def test_cli_warm_cache_recorded_in_manifest(tmp_path, capsys):
    """Second identical invocation replays from cache; the manifest's
    sweep stats prove zero simulations ran."""
    from repro.obs.manifest import load_manifest

    cache = ["--cache-dir", str(tmp_path / "cache")]
    assert main(["table2", "--fast", "--out", str(tmp_path / "a"), *cache]) == 0
    assert main(["table2", "--fast", "--out", str(tmp_path / "b"), *cache]) == 0
    capsys.readouterr()
    cold = load_manifest(tmp_path / "a" / "table2.manifest.json")
    warm = load_manifest(tmp_path / "b" / "table2.manifest.json")
    assert cold.extra["sweep"]["runs_executed"] == 1
    assert cold.extra["sweep"]["cache"]["stores"] == 1
    assert warm.extra["sweep"]["runs_executed"] == 0
    assert warm.extra["sweep"]["cache"]["hits"] == 1
    assert warm.extra["sweep"]["n_jobs"] == 1


def test_observability_flags_and_obs_summary(tmp_path, capsys):
    """--trace/--metrics-out write artefacts that `repro obs` can render
    from the files alone."""
    from repro.obs.manifest import load_manifest

    trace_path = tmp_path / "run.trace.jsonl"
    metrics_path = tmp_path / "run.metrics.json"
    # --no-cache: a cache hit would replay the run without simulating,
    # and an unsimulated run emits no spans to trace.
    assert main(["table2", "--fast", "--out", str(tmp_path), "--no-cache",
                 "--trace", str(trace_path),
                 "--metrics-out", str(metrics_path)]) == 0
    capsys.readouterr()
    assert trace_path.exists()
    assert metrics_path.exists()

    manifest = load_manifest(tmp_path / "table2.manifest.json")
    assert manifest.name == "table2"
    assert manifest.seed == 0
    assert manifest.config["fast"] is True
    assert "run" in manifest.timings
    assert manifest.metrics  # metric snapshot travels in the manifest

    assert main(["obs", str(trace_path), str(metrics_path),
                 str(tmp_path / "table2.manifest.json")]) == 0
    out = capsys.readouterr().out
    assert "client.rpc" in out          # span summary table
    assert "monitor.server_samples" in out  # metric table
    assert "table2" in out              # manifest rendering


def test_obs_report_renders_and_exports_chrome_trace(tmp_path, capsys):
    """`obs report` merges all artefacts of one traced run and writes a
    loadable Chrome trace-event JSON."""
    import json

    trace_path = tmp_path / "run.trace.jsonl"
    metrics_path = tmp_path / "run.metrics.json"
    assert main(["table2", "--fast", "--out", str(tmp_path), "--no-cache",
                 "--trace", str(trace_path),
                 "--metrics-out", str(metrics_path)]) == 0
    capsys.readouterr()

    chrome = tmp_path / "trace.chrome.json"
    assert main(["obs", "report", str(trace_path), str(metrics_path),
                 str(tmp_path / "table2.manifest.json"),
                 "--chrome-trace", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "trace id:" in out               # manifest ties to the trace
    assert "-- wall-clock phases --" in out  # profiler summary travelled
    assert "critical path:" in out
    assert "-- simulated-time spans --" in out
    assert "-- metrics --" in out
    assert f"wrote {chrome}" in out

    doc = json.loads(chrome.read_text())
    events = doc["traceEvents"]
    assert any(e["ph"] == "X" for e in events)
    assert any(e["ph"] == "M" and e["args"]["name"] == "simulated time"
               for e in events)
    assert doc["otherData"]["trace_id"]


def test_obs_report_chrome_trace_requires_spans(tmp_path, capsys):
    from repro.obs.export import save_metrics
    from repro.obs.metrics import MetricsRegistry

    metrics_path = save_metrics(MetricsRegistry(),
                                tmp_path / "m.metrics.json")
    assert main(["obs", "report", str(metrics_path),
                 "--chrome-trace", str(tmp_path / "o.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_obs_verbose_flag_configures_logging_once(tmp_path, capsys):
    """`-v` on repeated obs invocations must not stack log handlers."""
    import logging

    from repro.obs.export import save_metrics
    from repro.obs.metrics import MetricsRegistry

    metrics_path = save_metrics(MetricsRegistry(),
                                tmp_path / "m.metrics.json")
    root = logging.getLogger("repro")
    try:
        assert main(["obs", "-v", str(metrics_path)]) == 0
        assert main(["obs", "report", "-v", str(metrics_path)]) == 0
        ours = [h for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1
    finally:
        for handler in list(root.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)


def test_obs_subcommand_reports_bad_files(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert main(["obs", str(bogus)]) == 1
    assert "error:" in capsys.readouterr().out


def test_sim_backend_flag_runs_batch_and_is_recorded(tmp_path, capsys):
    """--sim-backend batch threads into the experiment config (and hence
    the manifest and the run-cache key) and completes end to end."""
    import repro.__main__ as cli
    from repro.obs.manifest import load_manifest

    assert cli._SIM_BACKEND == "event"
    try:
        assert main(["table2", "--fast", "--out", str(tmp_path), "--no-cache",
                     "--sim-backend", "batch"]) == 0
    finally:
        cli._SIM_BACKEND = "event"
    out = capsys.readouterr().out
    assert "sectors_read" in out
    manifest = load_manifest(tmp_path / "table2.manifest.json")
    assert manifest.config["cluster"]["sim_backend"] == "batch"


def test_bad_sim_backend_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["table2", "--sim-backend", "vectorised"])


def test_bench_subcommand_dispatches():
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--help"])
    assert exc.value.code == 0


def test_train_requires_model_out():
    with pytest.raises(SystemExit):
        main(["train"])


def test_train_bad_jobs_rejected(tmp_path, capsys):
    assert main(["train", "--model-out", str(tmp_path / "m.npz"),
                 "--jobs", "0"]) == 2
    assert "error:" in capsys.readouterr().err


def test_predict_requires_model():
    with pytest.raises(SystemExit):
        main(["predict"])


def test_predict_rejects_bad_model_and_run(tmp_path, capsys):
    bogus = tmp_path / "bogus.npz"
    bogus.write_bytes(b"not a model")
    assert main(["predict", "--model", str(bogus)]) == 2
    assert "cannot load model" in capsys.readouterr().err
    assert main(["predict", "--model", str(tmp_path / "missing.npz")]) == 2
    assert "cannot load model" in capsys.readouterr().err


def test_predict_bad_window_args_rejected(tmp_path, capsys):
    assert main(["predict", "--model", str(tmp_path / "m.npz"),
                 "--window-size", "0"]) == 2
    assert main(["predict", "--model", str(tmp_path / "m.npz"),
                 "--sample-interval", "-1"]) == 2
    assert "error:" in capsys.readouterr().err


def test_train_then_predict_end_to_end(tmp_path, capsys):
    """The tentpole's CLI story: train once (model cached and saved to
    npz), rerun warm (zero trainings, identical model file), then score
    a run with the saved model in a fresh process-level entry point."""
    import numpy as np

    model_a = tmp_path / "a.npz"
    model_b = tmp_path / "b.npz"
    common = ["--fast", "--cache-dir", str(tmp_path / "runs"),
              "--model-cache-dir", str(tmp_path / "models")]
    assert main(["train", "--model-out", str(model_a), *common]) == 0
    cold_out = capsys.readouterr().out
    assert "wrote" in cold_out
    assert model_a.exists()

    assert main(["train", "--model-out", str(model_b), *common]) == 0
    warm_out = capsys.readouterr().out
    assert "trained 0 restart(s)" in warm_out  # pure cache recall
    with np.load(model_a) as a, np.load(model_b) as b:
        assert a.files == b.files
        assert all(np.array_equal(a[k], b[k]) for k in a.files)

    assert main(["predict", "--model", str(model_a), "--fast"]) == 0
    out = capsys.readouterr().out
    assert "window" in out
    assert "2 classes" in out


# -- serve --------------------------------------------------------------------


def test_serve_bad_args_rejected(capsys):
    assert main(["serve", "--tenants", "0"]) == 2
    assert main(["serve", "--windows", "-1"]) == 2
    assert main(["serve", "--think", "-0.5"]) == 2
    assert main(["serve", "--queue-depth", "0"]) == 2  # ServeConfig check
    assert "error:" in capsys.readouterr().err


def test_serve_bad_chaos_spec_rejected(capsys):
    assert main(["serve", "--chaos", "floods=0.2"]) == 2
    assert "bad --chaos spec" in capsys.readouterr().err
    assert main(["serve", "--chaos", "flood=lots"]) == 2
    assert "not a number" in capsys.readouterr().err


def test_serve_rejects_bad_model(tmp_path, capsys):
    missing = tmp_path / "missing.npz"
    assert main(["serve", "--model", str(missing), "--tenants", "2"]) == 2
    assert "cannot load model" in capsys.readouterr().err


def test_serve_end_to_end_with_saved_model(tmp_path, capsys):
    """A saved model served to a small chaotic tenant population through
    the real CLI: clean exit, accounted report, obs section, artifacts."""
    import json

    import numpy as np

    from repro.core.dataset import Dataset
    from repro.core.labeling import BINARY_THRESHOLDS
    from repro.core.nn.train import TrainConfig
    from repro.core.predictor import InterferencePredictor

    rng = np.random.default_rng(0)
    X = rng.normal(0, 0.5, size=(80, 3, 5))
    y = (X[:, :, 0].sum(axis=1) > 0).astype(int)
    ds = Dataset(X, y, feature_names=("a", "b", "c", "d", "e"))
    model = tmp_path / "model.npz"
    InterferencePredictor.train(
        ds, BINARY_THRESHOLDS, config=TrainConfig(epochs=4, seed=0),
        restarts=1).save(model)

    report = tmp_path / "soak.json"
    metrics = tmp_path / "metrics.json"
    assert main(["serve", "--model", str(model), "--tenants", "6",
                 "--windows", "4",
                 "--chaos", "flood=0.3,dup=0.3,reorder=0.3,seed=1",
                 "--report-out", str(report),
                 "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "terminal:" in out
    assert "ladder:" in out
    assert "wrote" in out
    doc = json.loads(report.read_text())
    assert doc["errors"] == []
    assert doc["n_tenants"] == 6
    assert sum(doc["terminal"].values()) == 6
    assert metrics.exists()


def test_shards_zero_rejected(capsys):
    assert main(["table2", "--shards", "0"]) == 2
    assert "--shards must be a positive integer" in capsys.readouterr().err


def test_shards_clamped_to_domain_count(capsys):
    """--shards beyond the OSS domain count prints the clamp note (and
    here stops at the next validation error, so nothing actually runs)."""
    assert main(["table2", "--shards", "999", "--run-timeout", "0"]) == 2
    err = capsys.readouterr().err
    assert "clamping" in err
    assert "--shards 999 exceeds" in err


def test_window_policy_requires_shards(capsys):
    assert main(["table2", "--window-policy", "adaptive"]) == 2
    assert "--window-policy requires --shards" in capsys.readouterr().err


def test_window_policy_bad_spec_rejected(capsys):
    assert main(["table2", "--shards", "2",
                 "--window-policy", "eager"]) == 2
    assert "bad --window-policy spec" in capsys.readouterr().err


def test_window_policy_cap_vs_sample_interval(capsys):
    """A cap at or above the experiment sample_interval can never be
    proven safe, so it fails at arg-parse time with the reason."""
    assert main(["table2", "--fast", "--shards", "2",
                 "--window-policy", "adaptive:cap=0.125"]) == 2
    err = capsys.readouterr().err
    assert "cap must be < the experiment sample_interval" in err


def test_window_policy_valid_specs_pass_parsing(capsys):
    """Valid specs get past --window-policy validation (and stop at the
    next validation error, so nothing actually runs)."""
    for spec in ("fixed", "adaptive", "adaptive:cap=0.01"):
        assert main(["table2", "--shards", "2", "--window-policy", spec,
                     "--run-timeout", "-1"]) == 2
        err = capsys.readouterr().err
        assert "window-policy" not in err
        assert "--run-timeout" in err
