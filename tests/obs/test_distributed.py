"""Unit tests for cross-process trace propagation primitives.

Covers the :class:`TraceContext` round-trip, worker attach/detach
semantics, shipment packing, and the deterministic merge: id remapping
in recorded order, re-parenting of worker roots, dangling-parent
fallback, worker labelling, and kernel-counter accumulation.
"""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.distributed import (
    WALL_CLOCK,
    TraceContext,
    attach,
    current_context,
    merge_shipment,
    monotonic_to_wall,
    ship,
    wall_now,
)
from repro.obs.trace import Span, Tracer


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = TraceContext(trace_id="abc", parent_span_id=7, worker="w1")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_round_trips_none_parent(self):
        ctx = TraceContext(trace_id="abc")
        restored = TraceContext.from_dict(ctx.to_dict())
        assert restored.parent_span_id is None
        assert restored.worker == ""

    def test_current_context_none_when_tracing_off(self):
        assert trace.get() is None
        assert current_context() is None

    def test_current_context_carries_trace_id(self):
        with trace.tracing(Tracer(trace_id="deadbeef")):
            ctx = current_context(worker="w3")
        assert ctx == TraceContext(trace_id="deadbeef", worker="w3")


class TestAttach:
    def test_attach_installs_fresh_tracer_with_trace_id(self):
        tracer = attach(TraceContext(trace_id="t1"))
        try:
            assert trace.get() is tracer
            assert tracer.trace_id == "t1"
            assert tracer.spans == []
        finally:
            trace.uninstall()

    def test_attach_accepts_plain_dict(self):
        tracer = attach({"trace_id": "t2"})
        try:
            assert tracer.trace_id == "t2"
        finally:
            trace.uninstall()

    def test_attach_none_detaches_inherited_tracer(self):
        trace.install()
        assert attach(None) is None
        assert trace.get() is None


class TestShipAndMerge:
    def _worker_tracer(self) -> Tracer:
        worker = Tracer(trace_id="t")
        root = worker.start("client.write", 0.0)
        child = worker.start("net.transfer", 0.1, parent=root)
        worker.finish(child, 0.2)
        worker.finish(root, 0.3)
        worker.events_fired = 5
        worker.processes_spawned = 2
        return worker

    def test_ship_none_tracer_is_none(self):
        assert ship(None) is None
        assert merge_shipment(Tracer(), None) == []

    def test_merge_remaps_ids_onto_parent_sequence(self):
        parent = Tracer(trace_id="t")
        existing = parent.start("job.run", 0.0)
        merged = merge_shipment(parent, ship(self._worker_tracer()),
                                parent_span=existing, worker="w0")
        assert [s.span_id for s in merged] == [2, 3]
        root, child = merged
        assert root.parent_id == existing.span_id
        assert child.parent_id == root.span_id

    def test_merge_sets_worker_and_trace_id(self):
        parent = Tracer(trace_id="parent-id")
        merged = merge_shipment(parent, ship(self._worker_tracer()),
                                worker="w7")
        assert all(s.attrs["worker"] == "w7" for s in merged)
        assert all(s.trace_id == "parent-id" for s in merged)

    def test_merge_accumulates_kernel_counters(self):
        parent = Tracer()
        merge_shipment(parent, ship(self._worker_tracer()))
        merge_shipment(parent, ship(self._worker_tracer()))
        assert parent.events_fired == 10
        assert parent.processes_spawned == 4

    def test_dangling_parent_falls_back_to_merge_root(self):
        parent = Tracer()
        anchor = parent.start("job.execute", 0.0)
        orphan = Span(42, 99, "sim.step", 0.0, {})
        shipment = {"trace_id": "", "spans": [orphan.to_dict()],
                    "events_fired": 0, "processes_spawned": 0}
        merged = merge_shipment(parent, shipment, parent_span=anchor)
        assert merged[0].parent_id == anchor.span_id

    def test_two_merges_in_same_order_give_same_ids(self):
        def merged_ids():
            parent = Tracer(trace_id="t")
            a = merge_shipment(parent, ship(self._worker_tracer()),
                               worker="a")
            b = merge_shipment(parent, ship(self._worker_tracer()),
                               worker="b")
            return [s.span_id for s in a + b]

        assert merged_ids() == merged_ids()


class TestWallClock:
    def test_wall_now_is_monotone_and_shares_epoch(self):
        tracer = Tracer()
        t1 = wall_now(tracer)
        t2 = wall_now(tracer)
        assert 0.0 <= t1 <= t2

    def test_monotonic_to_wall_uses_same_epoch(self):
        import time

        tracer = Tracer()
        wall_now(tracer)  # establishes the epoch
        stamp = time.monotonic()
        converted = monotonic_to_wall(tracer, stamp)
        assert converted == pytest.approx(wall_now(tracer), abs=0.05)

    def test_wall_clock_marker_value(self):
        assert WALL_CLOCK == "wall"
