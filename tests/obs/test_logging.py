"""Logging wiring tests for the ``repro`` namespace."""

import io
import logging

from repro.obs.log import configure_logging, get_logger


def _cleanup():
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def test_get_logger_namespacing():
    try:
        assert get_logger().name == "repro"
        assert get_logger("experiments.runner").name == "repro.experiments.runner"
        assert get_logger("repro.core").name == "repro.core"
    finally:
        _cleanup()


def test_configure_logging_emits_to_stream():
    stream = io.StringIO()
    try:
        configure_logging("DEBUG", stream=stream)
        get_logger("experiments.runner").debug("hello %s", "world")
        out = stream.getvalue()
        assert "hello world" in out
        assert "repro.experiments.runner" in out
        assert "DEBUG" in out
    finally:
        _cleanup()


def test_configure_logging_is_idempotent():
    stream = io.StringIO()
    try:
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        root = logging.getLogger("repro")
        ours = [h for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1
    finally:
        _cleanup()


def test_configure_logging_collapses_preexisting_duplicates():
    """Repeated CLI invocations in one process must never stack handlers.

    Even if duplicate marked handlers somehow exist (older versions could
    leave them), one configure_logging call prunes down to exactly one
    and messages are emitted once."""
    stream = io.StringIO()
    root = logging.getLogger("repro")
    try:
        for _ in range(2):
            handler = logging.StreamHandler(stream)
            handler._repro_obs_handler = True
            root.addHandler(handler)
        configure_logging("INFO", stream=stream)
        ours = [h for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1
        get_logger("dup").info("exactly-once")
        assert stream.getvalue().count("exactly-once") == 1
    finally:
        _cleanup()


def test_level_changes_apply():
    stream = io.StringIO()
    try:
        configure_logging("INFO", stream=stream)
        get_logger("y").debug("quiet")
        configure_logging("DEBUG")
        get_logger("y").debug("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out
    finally:
        _cleanup()


def test_unknown_level_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("CHATTY")
