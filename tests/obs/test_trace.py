"""Tracer unit tests: span mechanics, global install, determinism."""

import time

import pytest

from repro.common.units import MIB
from repro.obs import trace
from repro.sim.cluster import Cluster
from repro.sim.engine import Environment
from repro.workloads.base import launch
from repro.workloads.ior import IorConfig, IorWorkload


def run_small_workload():
    """One tiny deterministic IOR run; returns (cluster, workload)."""
    cluster = Cluster()
    w = IorWorkload(IorConfig(mode="easy", access="write", ranks=2,
                              bytes_per_rank=2 * MIB))
    handle = launch(cluster, w, [0, 1], seed=7)
    cluster.env.run(until=handle.done)
    return cluster, w


# -- span mechanics ----------------------------------------------------------


def test_start_finish_and_duration():
    tr = trace.Tracer()
    span = tr.start("phase", 1.0, foo="bar")
    assert span.end is None
    tr.finish(span, 3.5, result="ok")
    assert span.duration == pytest.approx(2.5)
    assert span.attrs == {"foo": "bar", "result": "ok"}


def test_span_ids_sequential_and_parenting():
    tr = trace.Tracer()
    parent = tr.start("outer", 0.0)
    child = tr.start("inner", 0.5, parent=parent)
    by_int = tr.start("inner2", 0.6, parent=parent.span_id)
    assert (parent.span_id, child.span_id, by_int.span_id) == (1, 2, 3)
    assert child.parent_id == parent.span_id
    assert by_int.parent_id == parent.span_id
    assert tr.children_of(parent) == [child, by_int]


def test_double_finish_and_backwards_end_rejected():
    tr = trace.Tracer()
    span = tr.start("x", 2.0)
    with pytest.raises(ValueError, match="before it starts"):
        tr.finish(span, 1.0)
    tr.finish(span, 2.0)
    with pytest.raises(ValueError, match="already finished"):
        tr.finish(span, 3.0)


def test_open_span_duration_raises():
    tr = trace.Tracer()
    span = tr.start("x", 0.0)
    with pytest.raises(ValueError, match="still open"):
        _ = span.duration


def test_context_manager_uses_env_clock():
    tr = trace.Tracer()
    env = Environment()

    def proc():
        with tr.span(env, "work", kind="test"):
            yield env.timeout(1.25)

    env.process(proc())
    env.run()
    (span,) = tr.spans
    assert span.name == "work"
    assert span.duration == pytest.approx(1.25)


def test_to_dict_round_trip():
    tr = trace.Tracer()
    span = tr.start("x", 0.5, parent=None, a=1)
    tr.finish(span, 1.5)
    back = trace.Span.from_dict(span.to_dict())
    assert back.to_dict() == span.to_dict()


def test_summary_aggregates_only_finished_spans():
    tr = trace.Tracer()
    a = tr.start("op", 0.0)
    tr.finish(a, 2.0)
    b = tr.start("op", 1.0)
    tr.finish(b, 2.0)
    tr.start("op", 5.0)  # left open: excluded
    agg = tr.summary()["op"]
    assert agg["count"] == 2
    assert agg["total"] == pytest.approx(3.0)
    assert agg["mean"] == pytest.approx(1.5)
    assert agg["max"] == pytest.approx(2.0)


# -- global install / disabled behaviour -------------------------------------


def test_install_uninstall_cycle():
    assert trace.get() is None
    tr = trace.install()
    assert trace.get() is tr
    assert trace.uninstall() is tr
    assert trace.get() is None


def test_tracing_context_restores_previous():
    outer = trace.install()
    with trace.tracing() as inner:
        assert trace.get() is inner
        assert inner is not outer
    assert trace.get() is outer
    trace.uninstall()


def test_disabled_tracer_records_no_spans():
    """With no tracer installed, a full simulated run records nothing."""
    assert trace.get() is None
    cluster, _ = run_small_workload()
    tr = trace.install()
    assert len(tr.spans) == 0
    assert tr.events_fired == 0
    assert tr.processes_spawned == 0
    assert len(cluster.collector.records) > 0  # the run itself happened


def test_disabled_overhead_is_loose_bounded():
    """The disabled fast path (one global load + None check per kernel
    event) must not add observable cost; a very loose absolute bound
    keeps this robust on slow CI while still catching accidental
    always-on recording."""
    env = Environment()

    def proc():
        for _ in range(50_000):
            yield env.timeout(0.001)

    env.process(proc())
    t0 = time.perf_counter()
    env.run()
    assert time.perf_counter() - t0 < 5.0
    assert trace.get() is None


# -- determinism over the simulator ------------------------------------------


def test_sim_run_produces_expected_span_kinds():
    with trace.tracing() as tr:
        run_small_workload()
    names = {s.name for s in tr.spans}
    assert {"client.write", "client.rpc", "net.transfer", "ost.write",
            "mds.op", "disk.io"} <= names
    assert tr.events_fired > 0
    assert tr.processes_spawned > 0


def test_same_seed_runs_emit_identical_span_streams():
    with trace.tracing() as tr1:
        run_small_workload()
    with trace.tracing() as tr2:
        run_small_workload()
    stream1 = [s.to_dict() for s in tr1.spans]
    stream2 = [s.to_dict() for s in tr2.spans]
    assert stream1 == stream2
    assert (tr1.events_fired, tr1.processes_spawned) == \
        (tr2.events_fired, tr2.processes_spawned)


def test_span_nesting_is_consistent():
    """Every child starts within its parent's interval."""
    with trace.tracing() as tr:
        run_small_workload()
    by_id = {s.span_id: s for s in tr.spans}
    checked = 0
    for span in tr.spans:
        if span.parent_id is None or span.end is None:
            continue
        parent = by_id[span.parent_id]
        assert parent.start <= span.start
        if parent.end is not None:
            assert span.end <= parent.end + 1e-12
        checked += 1
    assert checked > 0
