"""Exporter + summariser tests: JSONL traces, metrics JSON, file sniffing."""

import json

import pytest

from repro.obs.export import (
    load_metrics,
    load_trace,
    save_metrics,
    save_trace,
)
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import (
    render_metrics_table,
    render_span_summary,
    sniff_kind,
    summarise_file,
)
from repro.obs.trace import Tracer


def make_tracer():
    tr = Tracer()
    a = tr.start("client.write", 0.0, job="j", rank=0)
    b = tr.start("client.rpc", 0.1, parent=a, ost=2)
    tr.finish(b, 0.4)
    tr.finish(a, 0.5, op_id=1)
    tr.events_fired = 12
    tr.processes_spawned = 3
    return tr


def test_trace_round_trip(tmp_path):
    tr = make_tracer()
    path = save_trace(tr, tmp_path / "run.trace.jsonl")
    spans = load_trace(path)
    assert [s.to_dict() for s in spans] == [s.to_dict() for s in tr.spans]
    header = json.loads(path.read_text().splitlines()[0])
    assert header["kind"] == "repro-trace"
    assert header["spans"] == 2
    assert header["events_fired"] == 12


def test_trace_round_trip_preserves_open_spans(tmp_path):
    tr = Tracer()
    tr.start("never.finished", 1.0)
    (span,) = load_trace(save_trace(tr, tmp_path / "t.jsonl"))
    assert span.end is None


def test_load_trace_rejects_foreign_and_truncated(tmp_path):
    bad = tmp_path / "x.jsonl"
    bad.write_text('{"kind": "nope"}\n')
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(bad)
    truncated = tmp_path / "y.jsonl"
    lines = save_trace(make_tracer(), tmp_path / "full.jsonl").read_text()
    truncated.write_text("\n".join(lines.splitlines()[:-1]) + "\n")
    with pytest.raises(ValueError, match="declares 2 spans"):
        load_trace(truncated)


def test_metrics_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc(4)
    reg.histogram("b", boundaries=[1.0]).observe(0.5)
    path = save_metrics(reg, tmp_path / "m.metrics.json")
    back = load_metrics(path)
    assert back == reg.snapshot()


def test_sniff_kind_distinguishes_all_three(tmp_path):
    trace_path = save_trace(make_tracer(), tmp_path / "a.jsonl")
    metrics_path = save_metrics(MetricsRegistry(), tmp_path / "b.json")
    manifest_path = write_manifest(
        build_manifest("x", 0, {}, registry=MetricsRegistry()),
        tmp_path / "c.json",
    )
    assert sniff_kind(trace_path) == "trace"
    assert sniff_kind(metrics_path) == "metrics"
    assert sniff_kind(manifest_path) == "manifest"
    other = tmp_path / "d.json"
    other.write_text("{}")
    with pytest.raises(ValueError, match="not a recognised"):
        sniff_kind(other)


def test_summarise_file_renders_each_kind(tmp_path):
    trace_path = save_trace(make_tracer(), tmp_path / "a.jsonl")
    reg = MetricsRegistry()
    reg.counter("hits").inc(7)
    metrics_path = save_metrics(reg, tmp_path / "b.json")
    manifest_path = write_manifest(
        build_manifest("expX", 4, {"fast": False}, registry=reg),
        tmp_path / "c.json",
    )
    assert "client.write" in summarise_file(trace_path)
    assert "hits" in summarise_file(metrics_path)
    assert "expX" in summarise_file(manifest_path)


def test_render_span_summary_orders_by_total_time():
    tr = Tracer()
    short = tr.start("short", 0.0)
    tr.finish(short, 0.1)
    long = tr.start("long", 0.0)
    tr.finish(long, 5.0)
    text = render_span_summary(tr.spans)
    assert text.index("long") < text.index("short")
    assert "2 spans" in text


def test_render_handles_empty_inputs():
    assert "no finished spans" in render_span_summary([])
    assert "no metrics" in render_metrics_table({})
