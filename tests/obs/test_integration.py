"""End-to-end observability: traced paired runs, coverage, determinism.

Backs the PR's acceptance criteria: a traced ``run_pair`` produces a
JSONL span stream that covers client→net→server→disk for every I/O
request of the target workload, and two same-seed runs produce identical
span streams.
"""

import pytest

from repro.common.records import OpType
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    run_pair,
    save_run_with_manifest,
)
from repro.obs import trace
from repro.obs.export import load_trace, save_trace
from repro.obs.manifest import load_manifest
from repro.workloads.io500 import make_io500_task


def small_config(**kwargs):
    defaults = dict(window_size=0.25, sample_interval=0.125, warmup=0.25,
                    seed=3)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def small_target():
    return make_io500_task("ior-easy-write", ranks=2, scale=0.05)


def small_noise():
    return [InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                             scale=0.05)]


@pytest.fixture(scope="module")
def traced_pair():
    with trace.tracing() as tracer:
        pair = run_pair(small_target(), small_noise(), small_config())
    return pair, tracer


def test_trace_covers_every_io_request_end_to_end(traced_pair, tmp_path):
    """client -> rpc -> {net, ost} spans exist for every data record,
    and the trace survives a JSONL round trip."""
    pair, tracer = traced_pair
    spans = load_trace(save_trace(tracer, tmp_path / "pair.trace.jsonl"))
    by_id = {s.span_id: s for s in spans}
    children = {}
    for s in spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)

    client_ops = {}
    for s in spans:
        if s.name.startswith("client.") and s.name != "client.rpc":
            key = (s.attrs["job"], s.attrs["rank"], s.attrs.get("op_id"))
            client_ops[key] = s

    target_data_records = [
        r for r in pair.interfered.records
        if r.job == pair.interfered.job and r.op in (OpType.READ, OpType.WRITE)
    ]
    assert target_data_records
    for rec in target_data_records:
        op_span = client_ops[(rec.job, rec.rank, rec.op_id)]
        assert op_span.name == f"client.{rec.op.value}"
        # Span brackets the recorded operation in simulated time.
        assert op_span.start == pytest.approx(rec.start)
        assert op_span.end == pytest.approx(rec.end)
        rpcs = [c for c in children.get(op_span.span_id, [])
                if c.name == "client.rpc"]
        assert rpcs, f"no RPC spans under {op_span}"
        for rpc in rpcs:
            kid_names = {c.name for c in children.get(rpc.span_id, [])}
            assert "net.transfer" in kid_names
            assert kid_names & {"ost.read", "ost.write"}

    # The storage tier was exercised below the caches too.
    assert any(s.name == "disk.io" for s in spans)
    # Parent links all resolve.
    assert all(s.parent_id in by_id for s in spans if s.parent_id is not None)


def test_metadata_requests_reach_the_mds(traced_pair):
    _, tracer = traced_pair
    meta_spans = [s for s in tracer.spans if s.name in
                  ("client.create", "client.open", "client.close",
                   "client.stat", "client.mkdir", "client.unlink")]
    assert meta_spans
    children = {}
    for s in tracer.spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)
    for span in meta_spans:
        assert any(c.name == "mds.op" for c in children.get(span.span_id, []))


def test_same_seed_pairs_emit_identical_span_streams():
    with trace.tracing() as tr1:
        run_pair(small_target(), small_noise(), small_config())
    with trace.tracing() as tr2:
        run_pair(small_target(), small_noise(), small_config())
    assert [s.to_dict() for s in tr1.spans] == [s.to_dict() for s in tr2.spans]


def test_run_metadata_carries_seed_and_window_config(traced_pair):
    pair, _ = traced_pair
    for run in (pair.baseline, pair.interfered):
        assert run.metadata["seed"] == 3
        assert run.metadata["window_size"] == 0.25
        assert run.metadata["sample_interval"] == 0.125


def test_save_run_with_manifest(tmp_path, traced_pair):
    pair, _ = traced_pair
    config = small_config()
    out = save_run_with_manifest(pair.interfered, config, tmp_path / "run",
                                 timings={"run": 1.0})
    assert (out / "records.dxt").exists()
    assert (out / "samples.npz").exists()
    manifest = load_manifest(out / "manifest.json")
    assert manifest.seed == config.seed
    assert manifest.config["window_size"] == config.window_size
    assert manifest.extra["job"] == pair.interfered.job
    assert manifest.metrics  # snapshot travels with the run
    assert manifest.timings == {"run": 1.0}
