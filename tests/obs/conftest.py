"""Shared fixtures: keep the process-wide tracer/registry state isolated."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _isolate_global_obs_state():
    """Every test starts with no tracer installed and restores it after."""
    previous = obs_trace.TRACER
    obs_trace.TRACER = None
    yield
    obs_trace.TRACER = previous


@pytest.fixture()
def fresh_registry():
    """A throwaway registry (the global one is left untouched)."""
    return obs_metrics.MetricsRegistry()
