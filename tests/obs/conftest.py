"""Shared fixtures: keep the process-wide tracer/registry state isolated."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _isolate_global_obs_state():
    """Every test starts with no tracer/profiler installed; restored after."""
    previous = obs_trace.TRACER
    previous_profiler = obs_profile.PROFILER
    obs_trace.TRACER = None
    obs_profile.PROFILER = None
    yield
    obs_trace.TRACER = previous
    obs_profile.PROFILER = previous_profiler


@pytest.fixture()
def fresh_registry():
    """A throwaway registry (the global one is left untouched)."""
    return obs_metrics.MetricsRegistry()
