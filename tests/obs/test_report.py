"""Tests for the ``repro obs report`` rendering and Chrome trace export."""

from __future__ import annotations

import json

import pytest

from repro.obs.distributed import WALL_CLOCK
from repro.obs.manifest import RunManifest
from repro.obs.report import (
    chrome_trace_doc,
    executor_health,
    render_report,
    save_chrome_trace,
    split_spans,
    worker_breakdown,
)
from repro.obs.trace import Span, Tracer


def _mixed_spans() -> list[Span]:
    tracer = Tracer(trace_id="t")
    job = tracer.start("job.run", 0.0, clock=WALL_CLOCK, worker="w0")
    execute = tracer.start("job.execute", 0.1, parent=job,
                           clock=WALL_CLOCK, worker="w0")
    sim = tracer.start("client.write", 0.0, worker="w0")
    tracer.finish(sim, 2.5)
    tracer.finish(execute, 0.9)
    tracer.finish(job, 1.0)
    main = tracer.start("cache.probe", 1.1, clock=WALL_CLOCK)
    tracer.finish(main, 1.2, hit=False)
    return tracer.spans


class TestSplitAndBreakdown:
    def test_split_by_clock_attr(self):
        sim, wall = split_spans(_mixed_spans())
        assert [s.name for s in sim] == ["client.write"]
        assert {s.name for s in wall} == {"job.run", "job.execute",
                                          "cache.probe"}

    def test_worker_breakdown_buckets_by_label(self):
        rows = worker_breakdown(_mixed_spans())
        assert set(rows) == {"w0", "main"}
        assert rows["w0"]["spans"] == 3
        assert rows["w0"]["sim_busy"] == pytest.approx(2.5)
        assert rows["w0"]["wall_busy"] == pytest.approx(1.8)  # 1.0 + 0.8
        assert rows["main"]["wall_busy"] == pytest.approx(0.1)

    def test_open_spans_count_but_add_no_busy_time(self):
        span = Span(1, None, "open", 0.0, {})
        rows = worker_breakdown([span])
        assert rows["main"]["spans"] == 1
        assert rows["main"]["sim_busy"] == 0.0


class TestExecutorHealth:
    def test_empty_snapshot_gives_no_lines(self):
        assert executor_health({}) == []

    def test_cache_dedup_and_worker_lines(self):
        snapshot = {
            "parallel.cache.hits": {"kind": "counter", "value": 3.0},
            "parallel.cache.misses": {"kind": "counter", "value": 1.0},
            "parallel.runs_requested": {"kind": "counter", "value": 8.0},
            "parallel.runs_deduplicated": {"kind": "counter", "value": 2.0},
            "parallel.retries": {"kind": "counter", "value": 1.0},
            "parallel.straggler_skew": {"kind": "gauge", "value": 1.5},
            "parallel.workers_used": {"kind": "gauge", "value": 2.0},
            "parallel.worker_busy_seconds{worker=w0}":
                {"kind": "gauge", "value": 0.25},
            "parallel.worker_busy_seconds{worker=w1}":
                {"kind": "gauge", "value": 0.75},
        }
        text = "\n".join(executor_health(snapshot))
        assert "run cache: 3 hit(s) / 1 miss(es) (75% hit rate)" in text
        assert "dedup: 2 of 8" in text
        assert "run retries: 1" in text
        assert "straggler skew (slowest run / mean): 1.50x" in text
        assert "workers used: 2" in text
        assert "0.75/0.25" in text  # busiest worker first


class TestChromeTrace:
    def test_clock_domains_become_processes(self):
        doc = chrome_trace_doc(_mixed_spans(), trace_id="abc")
        events = doc["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"simulated time", "wall clock"}
        assert doc["otherData"]["trace_id"] == "abc"
        # Complete events carry microsecond timestamps and durations.
        write = next(e for e in events if e.get("name") == "client.write")
        assert write["ph"] == "X"
        assert write["ts"] == 0.0
        assert write["dur"] == 2.5e6

    def test_workers_become_threads(self):
        doc = chrome_trace_doc(_mixed_spans())
        threads = {e["args"]["name"] for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads == {"w0", "main"}

    def test_open_span_becomes_instant(self):
        doc = chrome_trace_doc([Span(1, None, "open", 0.5, {})])
        event = next(e for e in doc["traceEvents"] if e["ph"] != "M")
        assert event["ph"] == "i"
        assert "dur" not in event

    def test_save_writes_loadable_json(self, tmp_path):
        path = save_chrome_trace(_mixed_spans(), tmp_path / "t" / "out.json",
                                 trace_id="abc")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestRenderReport:
    def test_nothing_supplied(self):
        assert "nothing to report" in render_report()

    def test_spans_render_both_domains_and_workers(self):
        text = render_report(spans=_mixed_spans())
        assert "-- wall-clock spans (jobs, phases) --" in text
        assert "-- simulated-time spans --" in text
        assert "-- per-worker breakdown --" in text
        assert "w0" in text

    def test_manifest_profile_and_metrics_sections(self):
        manifest = RunManifest(
            name="exp", seed=3, config={},
            created_at="2026-01-01T00:00:00+00:00", git_sha=None,
            version="1", python="3", platform="L",
            trace_id="feedc0de",
            metrics={"parallel.cache.hits": {"kind": "counter", "value": 1.0},
                     "parallel.cache.misses": {"kind": "counter",
                                               "value": 0.0}},
            extra={"profile": {
                "sweep": {"count": 1, "total": 2.0, "self": 0.5},
                "sweep/run": {"count": 4, "total": 1.5, "self": 1.5},
            }},
        )
        text = render_report(manifest=manifest)
        assert "trace id:   feedc0de" in text
        assert "-- wall-clock phases --" in text
        assert "critical path: sweep 2.000s > run 1.500s" in text
        assert "-- executor / cache health --" in text
        assert "run cache: 1 hit(s)" in text
        assert "-- metrics --" in text

    def test_explicit_metrics_override_manifest_metrics(self):
        manifest = RunManifest(
            name="exp", seed=0, config={},
            created_at="now", git_sha=None, version="1", python="3",
            platform="L",
            metrics={"old.metric": {"kind": "counter", "value": 1.0}},
        )
        text = render_report(manifest=manifest,
                             metrics={"fresh.metric": {"kind": "counter",
                                                       "value": 2.0}})
        assert "fresh.metric" in text
        assert "old.metric" not in text
