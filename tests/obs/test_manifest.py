"""Run-manifest tests: construction, JSON round-trip, rendering."""

import dataclasses
import json

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_to_dict,
    git_revision,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import render_manifest


def test_config_to_dict_flattens_nested_dataclasses():
    cfg = config_to_dict(ExperimentConfig(seed=9))
    assert cfg["seed"] == 9
    assert cfg["cluster"]["n_client_nodes"] == 7
    json.dumps(cfg)  # must be JSON-safe all the way down


def test_config_to_dict_handles_plain_values():
    assert config_to_dict({"a": (1, 2)}) == {"a": [1, 2]}
    assert config_to_dict(3) == {"value": 3}


def test_build_manifest_captures_process_state():
    reg = MetricsRegistry()
    reg.counter("runs").inc(2)
    m = build_manifest("exp", seed=5, config=ExperimentConfig(seed=5),
                       timings={"run": 1.25}, extra={"note": "t"},
                       registry=reg)
    assert m.name == "exp"
    assert m.seed == 5
    assert m.timings == {"run": 1.25}
    assert m.metrics["runs"]["value"] == 2.0
    assert m.extra == {"note": "t"}
    from repro import __version__
    assert m.version == __version__
    assert m.python.count(".") >= 1
    assert m.created_at  # ISO timestamp


def test_git_revision_in_this_checkout():
    sha = git_revision()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


def test_manifest_json_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.histogram("h", boundaries=[0.1, 1.0]).observe(0.5)
    m = build_manifest("roundtrip", seed=3, config={"k": "v"},
                       timings={"a": 0.5}, registry=reg)
    path = write_manifest(m, tmp_path / "sub" / "manifest.json")
    assert path.exists()
    back = load_manifest(path)
    assert dataclasses.asdict(back) == dataclasses.asdict(m)


def test_manifest_trace_id_round_trip(tmp_path):
    m = build_manifest("traced", seed=1, config={}, trace_id="abcd1234",
                       registry=MetricsRegistry())
    assert m.trace_id == "abcd1234"
    path = write_manifest(m, tmp_path / "manifest.json")
    assert load_manifest(path).trace_id == "abcd1234"


def test_build_manifest_defaults_trace_id_from_installed_tracer():
    from repro.obs import trace

    with trace.tracing(trace.Tracer(trace_id="feedbeef")):
        m = build_manifest("traced", seed=1, config={},
                           registry=MetricsRegistry())
    assert m.trace_id == "feedbeef"


def test_old_manifest_without_trace_id_still_loads(tmp_path):
    # Manifests written before trace propagation existed have no
    # ``trace_id`` key; they must keep loading with the default.
    m = build_manifest("legacy", seed=4, config={},
                       registry=MetricsRegistry())
    doc = m.to_dict()
    del doc["trace_id"]
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(doc))
    back = load_manifest(path)
    assert back.trace_id is None
    assert back.name == "legacy"


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"kind": "something-else", "name": "x"}))
    with pytest.raises(ValueError, match="not a repro manifest"):
        load_manifest(path)


def test_render_manifest_mentions_key_facts():
    m = RunManifest(
        name="table9", seed=11, config={"fast": True},
        created_at="2026-01-01T00:00:00+00:00", git_sha="a" * 40,
        version="1.0.0", python="3.11.7", platform="Linux",
        timings={"run": 2.0},
        metrics={"c": {"kind": "counter", "value": 4.0}},
    )
    text = render_manifest(m)
    assert "table9" in text
    assert "seed:       11" in text
    assert "a" * 40 in text
    assert "run=2.00s" in text
    assert "fast = True" in text
    assert "c" in text and "counter" in text
