"""Metrics registry tests, including the NumPy histogram cross-check."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("x")
    g.set(10)
    g.dec(4)
    g.inc(1)
    assert g.value == pytest.approx(7.0)


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError, match="increasing"):
        Histogram("x", boundaries=[1.0, 1.0, 2.0])
    with pytest.raises(ValueError, match="at least one"):
        Histogram("x", boundaries=[])


def test_histogram_bucketing_matches_numpy_reference():
    """Bucket counts must equal a searchsorted(left) NumPy reference."""
    rng = np.random.default_rng(42)
    values = np.concatenate([
        rng.lognormal(mean=-6, sigma=2.0, size=2000),
        np.array(DEFAULT_TIME_BUCKETS),  # exact boundary hits (le semantics)
        [0.0, 1e9],                      # underflow / overflow
    ])
    hist = Histogram("t", boundaries=DEFAULT_TIME_BUCKETS)
    for v in values:
        hist.observe(v)

    ref = np.bincount(
        np.searchsorted(np.array(DEFAULT_TIME_BUCKETS), values, side="left"),
        minlength=len(DEFAULT_TIME_BUCKETS) + 1,
    )
    assert hist.counts == ref.tolist()
    assert hist.count == len(values)
    assert hist.total == pytest.approx(float(values.sum()))
    assert hist.min == pytest.approx(float(values.min()))
    assert hist.max == pytest.approx(float(values.max()))
    assert hist.mean == pytest.approx(float(values.mean()))


def test_histogram_quantile_estimates():
    hist = Histogram("t", boundaries=[1.0, 2.0, 4.0])
    for v in [0.5, 1.5, 1.6, 3.0, 100.0]:
        hist.observe(v)
    assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 1.0
    # median falls in the (1, 2] bucket -> upper edge 2.0
    assert hist.quantile(0.5) == pytest.approx(2.0)
    # the top observation lives in the overflow bucket -> observed max
    assert hist.quantile(1.0) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_registry_creates_once_and_type_checks():
    reg = MetricsRegistry()
    c1 = reg.counter("a")
    assert reg.counter("a") is c1
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("a")
    with pytest.raises(ValueError, match="different boundaries"):
        reg.histogram("h", boundaries=[1.0, 2.0])
        reg.histogram("h", boundaries=[1.0, 3.0])


def test_registry_snapshot_sorted_and_json_ready():
    import json

    reg = MetricsRegistry()
    reg.counter("z.count").inc(3)
    reg.gauge("a.gauge").set(1.5)
    reg.histogram("m.hist", boundaries=[0.1, 1.0]).observe(0.05)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    json.dumps(snap)  # must be serialisable as-is
    assert snap["z.count"] == {"kind": "counter", "value": 3.0}
    assert snap["m.hist"]["counts"] == [1, 0, 0]


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.reset()
    assert len(reg) == 0
    assert "x" not in reg


def test_empty_histogram_snapshot():
    snap = Histogram("t", boundaries=[1.0]).to_dict()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0


def test_merge_snapshot_counters_sum_and_histograms_merge_bucketwise():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("runs").inc(2)
    b.counter("runs").inc(3)
    a.histogram("wall", boundaries=[1.0]).observe(0.5)
    b.histogram("wall", boundaries=[1.0]).observe(2.0)
    a.merge_snapshot(b.snapshot())
    snap = a.snapshot()
    assert snap["runs"]["value"] == 5.0
    assert snap["wall"]["counts"] == [1, 1]
    assert snap["wall"]["sum"] == pytest.approx(2.5)
    assert snap["wall"]["min"] == 0.5 and snap["wall"]["max"] == 2.0


def test_merge_snapshot_rejects_histogram_boundary_mismatch():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", boundaries=[1.0, 2.0]).observe(0.5)
    b.histogram("h", boundaries=[1.0]).observe(0.5)
    with pytest.raises(ValueError):
        a.merge_snapshot(b.snapshot())


def test_merge_snapshot_unlabeled_gauge_is_last_write_wins():
    parent, w1, w2 = (MetricsRegistry() for _ in range(3))
    w1.gauge("depth").set(3.0)
    w2.gauge("depth").set(7.0)
    parent.merge_snapshot(w1.snapshot())
    parent.merge_snapshot(w2.snapshot())
    assert parent.snapshot()["depth"]["value"] == 7.0


def test_merge_snapshot_worker_label_keeps_every_gauge():
    """The satellite fix: labeled merges must not clobber gauges.

    Each worker's gauge becomes its own ``name{worker=<label>}`` series,
    so no value is lost whatever order snapshots arrive in."""
    parent, w1, w2 = (MetricsRegistry() for _ in range(3))
    w1.gauge("depth").set(3.0)
    w1.counter("runs").inc()
    w2.gauge("depth").set(7.0)
    w2.counter("runs").inc()
    parent.merge_snapshot(w1.snapshot(), worker="job-a")
    parent.merge_snapshot(w2.snapshot(), worker="job-b")
    snap = parent.snapshot()
    assert "depth" not in snap  # nothing clobbered under the plain name
    assert snap["depth{worker=job-a}"]["value"] == 3.0
    assert snap["depth{worker=job-b}"]["value"] == 7.0
    assert snap["runs"]["value"] == 2.0  # counters still sum, unlabeled


def test_merge_snapshot_label_order_independent():
    w1, w2 = MetricsRegistry(), MetricsRegistry()
    w1.gauge("depth").set(3.0)
    w2.gauge("depth").set(7.0)
    forward, backward = MetricsRegistry(), MetricsRegistry()
    forward.merge_snapshot(w1.snapshot(), worker="a")
    forward.merge_snapshot(w2.snapshot(), worker="b")
    backward.merge_snapshot(w2.snapshot(), worker="b")
    backward.merge_snapshot(w1.snapshot(), worker="a")
    assert forward.snapshot() == backward.snapshot()
