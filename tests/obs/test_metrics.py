"""Metrics registry tests, including the NumPy histogram cross-check."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("x")
    g.set(10)
    g.dec(4)
    g.inc(1)
    assert g.value == pytest.approx(7.0)


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError, match="increasing"):
        Histogram("x", boundaries=[1.0, 1.0, 2.0])
    with pytest.raises(ValueError, match="at least one"):
        Histogram("x", boundaries=[])


def test_histogram_bucketing_matches_numpy_reference():
    """Bucket counts must equal a searchsorted(left) NumPy reference."""
    rng = np.random.default_rng(42)
    values = np.concatenate([
        rng.lognormal(mean=-6, sigma=2.0, size=2000),
        np.array(DEFAULT_TIME_BUCKETS),  # exact boundary hits (le semantics)
        [0.0, 1e9],                      # underflow / overflow
    ])
    hist = Histogram("t", boundaries=DEFAULT_TIME_BUCKETS)
    for v in values:
        hist.observe(v)

    ref = np.bincount(
        np.searchsorted(np.array(DEFAULT_TIME_BUCKETS), values, side="left"),
        minlength=len(DEFAULT_TIME_BUCKETS) + 1,
    )
    assert hist.counts == ref.tolist()
    assert hist.count == len(values)
    assert hist.total == pytest.approx(float(values.sum()))
    assert hist.min == pytest.approx(float(values.min()))
    assert hist.max == pytest.approx(float(values.max()))
    assert hist.mean == pytest.approx(float(values.mean()))


def test_histogram_quantile_estimates():
    hist = Histogram("t", boundaries=[1.0, 2.0, 4.0])
    for v in [0.5, 1.5, 1.6, 3.0, 100.0]:
        hist.observe(v)
    assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 1.0
    # median falls in the (1, 2] bucket -> upper edge 2.0
    assert hist.quantile(0.5) == pytest.approx(2.0)
    # the top observation lives in the overflow bucket -> observed max
    assert hist.quantile(1.0) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_registry_creates_once_and_type_checks():
    reg = MetricsRegistry()
    c1 = reg.counter("a")
    assert reg.counter("a") is c1
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("a")
    with pytest.raises(ValueError, match="different boundaries"):
        reg.histogram("h", boundaries=[1.0, 2.0])
        reg.histogram("h", boundaries=[1.0, 3.0])


def test_registry_snapshot_sorted_and_json_ready():
    import json

    reg = MetricsRegistry()
    reg.counter("z.count").inc(3)
    reg.gauge("a.gauge").set(1.5)
    reg.histogram("m.hist", boundaries=[0.1, 1.0]).observe(0.05)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    json.dumps(snap)  # must be serialisable as-is
    assert snap["z.count"] == {"kind": "counter", "value": 3.0}
    assert snap["m.hist"]["counts"] == [1, 0, 0]


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.reset()
    assert len(reg) == 0
    assert "x" not in reg


def test_empty_histogram_snapshot():
    snap = Histogram("t", boundaries=[1.0]).to_dict()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0
