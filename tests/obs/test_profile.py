"""Tests for the hierarchical wall-clock phase profiler."""

from __future__ import annotations

import pytest

from repro.obs import profile
from repro.obs.distributed import WALL_CLOCK
from repro.obs.profile import PhaseProfiler, PhaseRecord, profiling
from repro.obs.trace import Tracer


class TestPhasePaths:
    def test_nested_phases_encode_paths(self):
        profiler = PhaseProfiler()
        with profiler.phase("sweep"):
            with profiler.phase("plan"):
                pass
            with profiler.phase("execute"):
                with profiler.phase("run"):
                    pass
        assert [r.path for r in profiler.records] == [
            "sweep/plan", "sweep/execute/run", "sweep/execute", "sweep",
        ]

    def test_phase_name_may_not_contain_separator(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError, match="may not contain"):
            with profiler.phase("a/b"):
                pass

    def test_attrs_are_recorded(self):
        profiler = PhaseProfiler()
        with profiler.phase("train", jobs=4):
            pass
        assert profiler.records[0].attrs == {"jobs": 4}

    def test_record_depth(self):
        rec = PhaseRecord("a/b/c", 0.0, 1.0, {})
        assert rec.depth == 3
        assert rec.duration == 1.0


class TestSummary:
    def _profiler(self) -> PhaseProfiler:
        profiler = PhaseProfiler()
        with profiler.phase("sweep"):
            for _ in range(2):
                with profiler.phase("run"):
                    pass
        return profiler

    def test_summary_counts_and_totals(self):
        summary = self._profiler().summary()
        assert set(summary) == {"sweep", "sweep/run"}
        assert summary["sweep/run"]["count"] == 2
        assert summary["sweep"]["count"] == 1
        assert summary["sweep"]["total"] >= summary["sweep/run"]["total"]

    def test_self_time_excludes_direct_children(self):
        summary = self._profiler().summary()
        expected = summary["sweep"]["total"] - summary["sweep/run"]["total"]
        assert summary["sweep"]["self"] == pytest.approx(max(0.0, expected))
        # Leaves have no children: self == total.
        assert (summary["sweep/run"]["self"]
                == pytest.approx(summary["sweep/run"]["total"]))

    def test_critical_path_follows_heaviest_children(self):
        profiler = self._profiler()
        crit = profiler.critical_path()
        assert [p for p, _ in crit] == ["sweep", "sweep/run"]

    def test_render_mentions_phases_and_critical_path(self):
        text = self._profiler().render()
        assert "sweep" in text
        assert "critical path:" in text
        assert PhaseProfiler().render() == "(no phases recorded)"


class TestModuleGate:
    def test_phase_is_noop_without_installed_profiler(self):
        assert profile.get() is None
        with profile.phase("anything"):
            pass  # must not raise, must not record anywhere
        assert profile.get() is None

    def test_profiling_context_installs_and_restores(self):
        with profiling() as profiler:
            assert profile.get() is profiler
            with profile.phase("inside"):
                pass
        assert profile.get() is None
        assert [r.path for r in profiler.records] == ["inside"]

    def test_profiling_restores_previous_profiler(self):
        outer = profile.install()
        try:
            with profiling():
                assert profile.get() is not outer
            assert profile.get() is outer
        finally:
            profile.uninstall()


class TestTracerMirroring:
    def test_phases_mirror_into_tracer_as_wall_spans(self):
        tracer = Tracer(trace_id="t")
        profiler = PhaseProfiler(tracer=tracer)
        with profiler.phase("sweep", jobs=2):
            with profiler.phase("execute"):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["phase.sweep", "phase.execute"]
        outer, inner = tracer.spans
        assert inner.parent_id == outer.span_id
        assert all(s.attrs["clock"] == WALL_CLOCK for s in tracer.spans)
        assert outer.attrs["jobs"] == 2
        assert all(s.end is not None and s.end >= s.start
                   for s in tracer.spans)
