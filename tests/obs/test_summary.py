"""Tests for the offline artefact summaries behind ``repro obs``."""

from __future__ import annotations

import json

import pytest

from repro.obs.distributed import WALL_CLOCK
from repro.obs.export import save_metrics, save_trace
from repro.obs.manifest import RunManifest, build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import (
    render_manifest,
    render_metrics_table,
    render_span_summary,
    sniff_kind,
    summarise_file,
)
from repro.obs.trace import Tracer


def _sim_tracer() -> Tracer:
    tracer = Tracer()
    for start in (0.0, 1.0):
        span = tracer.start("client.write", start)
        tracer.finish(span, start + 0.5)
    return tracer


class TestRenderSpanSummary:
    def test_empty_gives_placeholder(self):
        assert render_span_summary([]) == "(no finished spans)"

    def test_aggregates_by_name(self):
        text = render_span_summary(_sim_tracer().spans)
        assert "2 spans" in text
        assert "client.write" in text
        assert "1.000000 simulated span-seconds" in text

    def test_pure_wall_traces_say_wall(self):
        tracer = Tracer()
        span = tracer.start("job.run", 0.0, clock=WALL_CLOCK)
        tracer.finish(span, 2.0)
        assert "wall span-seconds" in render_span_summary(tracer.spans)

    def test_mixed_traces_use_neutral_unit(self):
        tracer = _sim_tracer()
        span = tracer.start("job.run", 0.0, clock=WALL_CLOCK)
        tracer.finish(span, 2.0)
        text = render_span_summary(tracer.spans)
        assert "simulated span-seconds" not in text
        assert "wall span-seconds" not in text
        assert "span-seconds" in text


class TestRenderMetricsTable:
    def test_empty(self):
        assert render_metrics_table({}) == "(no metrics recorded)"

    def test_counter_histogram_and_labeled_gauge_rows(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(3)
        reg.histogram("wall", boundaries=[1.0]).observe(0.5)
        reg.gauge("parallel.worker_busy_seconds{worker=w0}").set(1.5)
        text = render_metrics_table(reg.snapshot())
        assert "runs" in text and "counter" in text
        assert "count=1" in text
        assert "parallel.worker_busy_seconds{worker=w0}" in text


class TestRenderManifest:
    def _manifest(self, **overrides) -> RunManifest:
        base = dict(
            name="exp", seed=7, config={"fast": True},
            created_at="2026-01-01T00:00:00+00:00", git_sha="b" * 40,
            version="1.0.0", python="3.11", platform="Linux",
        )
        base.update(overrides)
        return RunManifest(**base)

    def test_trace_id_line_present_when_set(self):
        text = render_manifest(self._manifest(trace_id="cafef00d"))
        lines = text.splitlines()
        assert lines[4] == "trace id:   cafef00d"

    def test_trace_id_line_absent_by_default(self):
        assert "trace id:" not in render_manifest(self._manifest())


class TestSniffAndSummarise:
    def test_sniff_all_three_kinds(self, tmp_path):
        trace_path = save_trace(_sim_tracer(), tmp_path / "a.trace.jsonl")
        metrics_path = save_metrics(MetricsRegistry(),
                                    tmp_path / "a.metrics.json")
        manifest_path = write_manifest(
            build_manifest("exp", seed=1, config={}),
            tmp_path / "manifest.json")
        assert sniff_kind(trace_path) == "trace"
        assert sniff_kind(metrics_path) == "metrics"
        assert sniff_kind(manifest_path) == "manifest"

    def test_sniff_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(ValueError, match="not a recognised"):
            sniff_kind(path)

    def test_summarise_file_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        trace_path = save_trace(_sim_tracer(), tmp_path / "a.trace.jsonl")
        metrics_path = save_metrics(reg, tmp_path / "a.metrics.json")
        manifest_path = write_manifest(
            build_manifest("summarised", seed=2, config={}, registry=reg),
            tmp_path / "manifest.json")
        assert "client.write" in summarise_file(trace_path)
        assert "runs" in summarise_file(metrics_path)
        assert "summarised" in summarise_file(manifest_path)

    def test_summarised_trace_keeps_trace_id_in_header(self, tmp_path):
        tracer = Tracer(trace_id="feed1234")
        span = tracer.start("x", 0.0)
        tracer.finish(span, 1.0)
        path = save_trace(tracer, tmp_path / "t.trace.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["trace_id"] == "feed1234"
