"""Benchmark E7 — Figure 4: 3-class severity prediction on IO500.

Same IO500 window bank as Figure 3(a) (shared fixture, as the paper
reuses its dataset), rebinned to the mild / moderate / severe classes
(<2x, 2-5x, >=5x following Lu et al.) with a 3-node output layer.
"""

import numpy as np

from repro.experiments.fig4 import run_fig4


def test_fig4_io500_multiclass(benchmark, io500_bank):
    result = benchmark.pedantic(lambda: run_fig4(bank=io500_bank),
                                rounds=1, iterations=1)
    print("\nFigure 4 — IO500, 3-class (mild/moderate/severe):")
    print(result.render())
    report = result.report
    assert report.confusion.shape == (3, 3)
    # "In the vast majority of samples, the trained model predicts the
    # correct ground-truth labels."
    assert report.accuracy > 0.7
    # Diagonal dominates every row with meaningful support (tiny-support
    # rows are sampling noise in a single-seed bench run).
    cm = report.confusion
    for c in range(3):
        if cm[c].sum() >= 8:
            assert cm[c, c] >= cm[c].sum() * 0.4, f"class {c} poorly predicted"
    # All three severity classes are represented in the data.
    assert (np.array(result.train_counts) > 0).all()
