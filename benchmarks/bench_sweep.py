#!/usr/bin/env python
"""Benchmark the parallel sweep executor and run cache.

Runs one small (target, scenario) grid three ways —

* **serial** — ``n_jobs=1``, no cache (the pre-executor behaviour);
* **parallel** — ``n_jobs=N`` over a fresh cache;
* **warm** — same grid again from the now-populated cache;

asserts that all three produce bit-identical window banks and that the
warm pass executed zero simulations, then writes the wall-clock numbers
and cache statistics to ``BENCH_sweep.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--jobs N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.experiments.datagen import Scenario, collect_windows
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.parallel import RunCache, SweepExecutor
from repro.workloads.io500 import make_io500_task


def bench_grid():
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    targets = [
        make_io500_task("ior-easy-write", ranks=4, scale=2.5),
        make_io500_task("ior-easy-read", ranks=4, scale=2.5),
        make_io500_task("mdt-hard-write", ranks=4, scale=2.5),
    ]
    scenarios = [Scenario("quiet")]
    for level in (1, 2):
        scenarios.append(Scenario(
            f"io500-x{level}",
            (InterferenceSpec("ior-easy-write", instances=level, ranks=2,
                              scale=0.2),
             InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                              scale=0.2)),
        ))
    return targets, scenarios, config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--jobs", type=int, default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel pass")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_sweep.json"))
    args = parser.parse_args(argv)

    targets, scenarios, config = bench_grid()
    n_pairs = len(targets) * len(scenarios)
    print(f"grid: {len(targets)} targets x {len(scenarios)} scenarios "
          f"= {n_pairs} pairs")

    t0 = time.perf_counter()
    serial_bank = collect_windows(targets, scenarios, config, n_jobs=1)
    serial_s = time.perf_counter() - t0
    print(f"serial:   {serial_s:7.2f}s  ({len(serial_bank)} windows)")

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        cold = SweepExecutor(n_jobs=args.jobs, cache=RunCache(tmp))
        t0 = time.perf_counter()
        parallel_bank = collect_windows(targets, scenarios, config,
                                        executor=cold)
        parallel_s = time.perf_counter() - t0
        print(f"parallel: {parallel_s:7.2f}s  (n_jobs={cold.n_jobs}, "
              f"{cold.runs_executed} runs executed)")

        warm = SweepExecutor(n_jobs=args.jobs, cache=RunCache(tmp))
        t0 = time.perf_counter()
        warm_bank = collect_windows(targets, scenarios, config, executor=warm)
        warm_s = time.perf_counter() - t0
        print(f"warm:     {warm_s:7.2f}s  ({warm.cache.hits} cache hits, "
              f"{warm.runs_executed} runs executed)")

        identical = (np.array_equal(serial_bank.X, parallel_bank.X)
                     and np.array_equal(serial_bank.X, warm_bank.X)
                     and np.array_equal(serial_bank.levels,
                                        parallel_bank.levels)
                     and np.array_equal(serial_bank.levels, warm_bank.levels))
        assert identical, "parallel/cached banks differ from serial"
        assert warm.runs_executed == 0, "warm cache still executed runs"
        print("identity: serial == parallel == warm  [ok]")

        result = {
            "grid": {"targets": len(targets), "scenarios": len(scenarios),
                     "pairs": n_pairs, "windows": len(serial_bank)},
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "warm_seconds": warm_s,
            "speedup_parallel": serial_s / parallel_s if parallel_s else None,
            "speedup_warm": serial_s / warm_s if warm_s else None,
            "n_jobs": cold.n_jobs,
            "cpu_count": os.cpu_count(),
            "bit_identical": identical,
            "cold": cold.stats(),
            "warm": warm.stats(),
        }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
