#!/usr/bin/env python
"""End-to-end sweep baseline — thin wrapper over :mod:`repro.bench`.

Runs the benchmark grid serial with the event backend (the pre-batch
baseline), serial with ``--sim-backend batch``, then cold and warm
through the parallel executor; asserts all four window banks are
bit-identical and writes ``BENCH_sweep.json``. Equivalent to
``python -m repro bench sweep``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--jobs N] [--out-dir DIR]
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main(["sweep", *sys.argv[1:]]))
