#!/usr/bin/env python
"""Compare fresh benchmark results against the committed baselines.

Reads the committed ``BENCH_engine.json`` / ``BENCH_sweep.json`` from
one directory and freshly generated ones from another, and flags any
tracked metric that regressed by more than the threshold (25% by
default; throughput metrics must not drop, wall-clock metrics must not
grow). Exits nonzero on regression — the CI job that runs it is
non-gating, so this marks the job red without blocking the merge.

Usage::

    python benchmarks/check_regression.py BASELINE_DIR FRESH_DIR
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: (file, path-into-json, kind): "rate" regresses down, "wall" up.
METRICS = (
    ("BENCH_engine.json", ("timeouts_per_second",), "rate"),
    ("BENCH_engine.json",
     ("request_path", "process_requests_per_second"), "rate"),
    ("BENCH_engine.json",
     ("request_path", "batch_requests_per_second"), "rate"),
    ("BENCH_engine.json", ("request_path", "batch_speedup"), "rate"),
    ("BENCH_sweep.json", ("serial_event_seconds",), "wall"),
    ("BENCH_sweep.json", ("serial_batch_seconds",), "wall"),
    ("BENCH_sweep.json", ("cold_batch_seconds",), "wall"),
    ("BENCH_sweep.json", ("warm_seconds",), "wall"),
)


def _get(obj, path):
    for key in path:
        obj = obj[key]
    return obj


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("baseline_dir", type=pathlib.Path)
    parser.add_argument("fresh_dir", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default: 0.25)")
    args = parser.parse_args(argv)

    docs: dict[tuple[pathlib.Path, str], dict] = {}
    regressions = []
    for name, path, kind in METRICS:
        row = []
        for directory in (args.baseline_dir, args.fresh_dir):
            key = (directory, name)
            if key not in docs:
                docs[key] = json.loads((directory / name).read_text())
            row.append(float(_get(docs[key], path)))
        base, fresh = row
        rel = (fresh - base) / base if base else 0.0
        worse = (-rel if kind == "rate" else rel) > args.threshold
        label = f"{name}:{'.'.join(path)}"
        print(f"{label}: baseline {base:.4g}, fresh {fresh:.4g} "
              f"({rel:+.1%}) [{'REGRESSED' if worse else 'ok'}]")
        if worse:
            regressions.append(label)

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nall benchmark metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
