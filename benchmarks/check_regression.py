#!/usr/bin/env python
"""Compare fresh benchmark results against the committed baselines.

Reads the committed ``BENCH_engine.json`` / ``BENCH_sweep.json`` /
``BENCH_train.json`` from one directory and freshly generated ones from
another, and flags any tracked metric that regressed by more than the
threshold (25% by default; throughput metrics must not drop, wall-clock
metrics must not grow). Exits nonzero on regression — the CI job that
runs it is non-gating, so this marks the job red without blocking the
merge.

Wall-clock baselines only transfer between like machines, so when a
result pair records different ``environment`` blocks (numpy/python
version, platform, core count) a WARNING is printed — the comparison
still runs, but a red result on a different machine is expected noise,
not a regression.  Stronger: a wall-clock metric recorded on a machine
with a *different core count* than the one running the check is
SKIPPED outright (with a printed notice) — parallel-pass timings
simply don't compare across core counts, so flagging them would only
train people to ignore the job.

Usage::

    python benchmarks/check_regression.py BASELINE_DIR FRESH_DIR
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: (file, path-into-json, kind): "rate" regresses down, "wall" up.
#: "count" regresses up like "wall" but is deterministic (simulation
#: structure, not timing) — it is never skipped on a foreign core
#: count and any growth is a real protocol regression.
METRICS = (
    ("BENCH_engine.json", ("timeouts_per_second",), "rate"),
    ("BENCH_engine.json",
     ("request_path", "process_requests_per_second"), "rate"),
    ("BENCH_engine.json",
     ("request_path", "batch_requests_per_second"), "rate"),
    ("BENCH_engine.json", ("request_path", "batch_speedup"), "rate"),
    ("BENCH_sweep.json", ("serial_event_seconds",), "wall"),
    ("BENCH_sweep.json", ("serial_batch_seconds",), "wall"),
    ("BENCH_sweep.json", ("cold_batch_seconds",), "wall"),
    ("BENCH_sweep.json", ("warm_seconds",), "wall"),
    ("BENCH_train.json", ("serial_seconds",), "wall"),
    ("BENCH_train.json", ("warm_seconds",), "wall"),
    ("BENCH_train.json", ("speedup_warm",), "rate"),
    ("BENCH_train.json",
     ("fused_inference", "fused_us_per_window"), "wall"),
    ("BENCH_train.json", ("fused_inference", "fused_speedup"), "rate"),
    ("BENCH_dataset.json", ("cold_build_seconds",), "wall"),
    ("BENCH_dataset.json", ("warm_rebuild_seconds",), "wall"),
    ("BENCH_dataset.json", ("append", "append_large_seconds"), "wall"),
    # Append cost must stay flat as the store grows: the ratio between
    # appending one pair into the large vs the small store is the
    # out-of-core contract in one number.
    ("BENCH_dataset.json", ("append", "ratio_large_vs_small"), "wall"),
    ("BENCH_dataset.json",
     ("memmap_training", "memmap_peak_rss_bytes"), "wall"),
    # Coordinator window counts are deterministic functions of the
    # committed workload: fixed must stay put and adaptive must not
    # creep back toward it (the barrier-elision contract in numbers).
    ("BENCH_shard.json", ("scaling", "fixed", 0, "windows"), "count"),
    ("BENCH_shard.json", ("scaling", "adaptive", 0, "windows"), "count"),
    ("BENCH_shard.json", ("window_reduction",), "rate"),
)

#: Environment keys excluded from the mismatch warning: they differ on
#: every run by design. ``peak_rss_bytes`` is recording provenance, not
#: machine identity; it is compared separately (and non-fatally) below.
_ENV_IGNORE = ("peak_rss_bytes",)


def _get(obj, path):
    for key in path:
        obj = obj[key]
    return obj


def _foreign_cpu_count(doc: dict) -> int | None:
    """The doc's recorded cpu_count iff it differs from this machine's.

    ``None`` means the numbers are comparable here (same core count, or
    none recorded — the environment warning covers the latter).
    """
    recorded = (doc.get("environment") or {}).get("cpu_count")
    if recorded is not None and recorded != os.cpu_count():
        return recorded
    return None


def check_environments(docs: dict) -> list[str]:
    """One warning line per file whose baseline/fresh environments differ.

    Old baselines without an ``environment`` block compare as unknown —
    that also warns, since nothing ties their numbers to this machine.
    """
    by_name: dict[str, dict[str, dict | None]] = {}
    for (directory, name), doc in docs.items():
        by_name.setdefault(name, {})[str(directory)] = doc.get("environment")
    warnings = []
    for name, envs in sorted(by_name.items()):
        if len(envs) < 2:
            continue
        (d1, e1), (d2, e2) = sorted(envs.items())
        if e1 is not None and e2 is not None:
            e1 = {k: v for k, v in e1.items() if k not in _ENV_IGNORE}
            e2 = {k: v for k, v in e2.items() if k not in _ENV_IGNORE}
        if e1 is None or e2 is None:
            missing = d1 if e1 is None else d2
            warnings.append(
                f"WARNING: {name}: no environment recorded in {missing}; "
                "wall-clock comparison may cross machines")
        elif e1 != e2:
            diff = ", ".join(
                f"{key}: {e1.get(key)!r} vs {e2.get(key)!r}"
                for key in sorted(set(e1) | set(e2))
                if e1.get(key) != e2.get(key))
            note = ("wall-clock regressions are expected noise across "
                    "machines")
            if (e1.get("git_sha") != e2.get("git_sha")
                    and e1.get("git_sha") and e2.get("git_sha")):
                note = (f"results span commits "
                        f"{str(e1['git_sha'])[:12]} -> "
                        f"{str(e2['git_sha'])[:12]}; regenerate the "
                        "baseline if the code change was intentional")
            warnings.append(
                f"WARNING: {name}: baseline and fresh results come from "
                f"different environments ({diff}); {note}")
    return warnings


def compare_peak_rss(docs: dict) -> list[str]:
    """Non-fatal per-file comparison of the recorded peak RSS.

    Memory numbers drift with allocator/page-cache state, so they never
    gate; the printed drift is context for reading the wall numbers.
    """
    by_name: dict[str, dict[str, int | None]] = {}
    for (directory, name), doc in docs.items():
        env = doc.get("environment") or {}
        by_name.setdefault(name, {})[str(directory)] = env.get(
            "peak_rss_bytes")
    lines = []
    for name, values in sorted(by_name.items()):
        if len(values) < 2:
            continue
        (d1, first), (d2, second) = sorted(values.items())
        if first is None or second is None:
            continue
        rel = (second - first) / first if first else 0.0
        lines.append(f"{name}: recording peak RSS {first / 1e6:,.0f}MB "
                     f"({d1}) vs {second / 1e6:,.0f}MB ({d2}) "
                     f"({rel:+.1%}) [informational]")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("baseline_dir", type=pathlib.Path)
    parser.add_argument("fresh_dir", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default: 0.25)")
    args = parser.parse_args(argv)

    docs: dict[tuple[pathlib.Path, str], dict] = {}
    regressions = []
    skipped = []
    missing_files: set[str] = set()
    for name, path, kind in METRICS:
        row = []
        foreign = None
        absent = None
        for directory in (args.baseline_dir, args.fresh_dir):
            key = (directory, name)
            if key not in docs:
                try:
                    docs[key] = json.loads((directory / name).read_text())
                except FileNotFoundError:
                    absent = directory / name
                    break
            row.append(float(_get(docs[key], path)))
            foreign = foreign or _foreign_cpu_count(docs[key])
        if absent is not None:
            # A run may regenerate only some suites; compare what exists
            # instead of failing the whole check on the rest.
            if name not in missing_files:
                missing_files.add(name)
                print(f"{name}: SKIPPED ({absent} not found; suite not "
                      "regenerated in this run)")
            continue
        if kind == "wall" and foreign is not None:
            label = f"{name}:{'.'.join(str(key) for key in path)}"
            print(f"{label}: SKIPPED (recorded on a {foreign}-core "
                  f"machine, this one has {os.cpu_count()}; wall-clock "
                  "numbers don't transfer)")
            skipped.append(label)
            continue
        base, fresh = row
        rel = (fresh - base) / base if base else 0.0
        worse = (-rel if kind == "rate" else rel) > args.threshold
        label = f"{name}:{'.'.join(str(key) for key in path)}"
        print(f"{label}: baseline {base:.4g}, fresh {fresh:.4g} "
              f"({rel:+.1%}) [{'REGRESSED' if worse else 'ok'}]")
        if worse:
            regressions.append(label)

    warnings = check_environments(docs)
    if warnings:
        print()
        for line in warnings:
            print(line)

    rss_lines = compare_peak_rss(docs)
    if rss_lines:
        print()
        for line in rss_lines:
            print(line)

    if skipped:
        print(f"\n{len(skipped)} wall-clock metric(s) skipped "
              "(cross-machine core-count mismatch)")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nall compared benchmark metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
