#!/usr/bin/env python
"""Training-stack baseline — thin wrapper over :mod:`repro.bench`.

Trains a seeds x restarts grid through the serial restart loop, then
cold and warm through :class:`repro.parallel.TrainExecutor` (the warm
pass must execute zero trainings), measures the deployed fused-inference
fast path against the unfused predictor, asserts all models are
bit-identical, and writes ``BENCH_train.json``. Equivalent to
``python -m repro bench train``.

Usage::

    PYTHONPATH=src python benchmarks/bench_train.py [--jobs N] [--out-dir DIR]
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main(["train", *sys.argv[1:]]))
