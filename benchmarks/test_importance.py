"""Benchmark A8 — which collected metrics carry the interference signal?

Permutation importance for the trained IO500 binary model, measured two
ways: per feature (reported, but known to under-attribute because the 40
features are redundant) and per feature *family* (client-side metrics,
device counters, queue statistics — jointly permuted), which answers the
question Table II's design actually poses: does each collected family
contribute?
"""

from repro.core.importance import grouped_importance, permutation_importance
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import bank_to_dataset
from repro.core.dataset import train_test_split
from repro.monitor.schema import CLIENT_FEATURES, VECTOR_FEATURES


def _feature_groups() -> dict[str, list[int]]:
    """Table II families (plus the client family), by vector index."""
    idx = {name: i for i, name in enumerate(VECTOR_FEATURES)}
    groups: dict[str, list[int]] = {
        "client-side": [idx[n] for n in CLIENT_FEATURES],
        "io-speed": [i for n, i in idx.items()
                     if n.startswith("ios_completed")],
        "device-sectors": [i for n, i in idx.items()
                           if n.startswith("sectors_")],
        "queue-stats": [i for n, i in idx.items()
                        if n.startswith(("queue_", "requests_merged",
                                         "io_ticks", "weighted_time"))],
        "cache-and-mds": [i for n, i in idx.items()
                          if n.startswith(("cache_dirty", "mds_ops"))],
    }
    return groups


def test_a8_feature_importance(benchmark, io500_bank):
    dataset = bank_to_dataset(io500_bank, BINARY_THRESHOLDS)
    train_set, test_set = train_test_split(dataset, 0.2, seed=0)
    predictor = InterferencePredictor.train(
        train_set, BINARY_THRESHOLDS, config=TrainConfig(seed=0), seed=0)

    def run():
        per_feature = permutation_importance(
            predictor.predict, test_set.X, test_set.y, VECTOR_FEATURES,
            n_repeats=3,
        )
        per_group = grouped_importance(
            predictor.predict, test_set.X, test_set.y, _feature_groups(),
            n_repeats=3,
        )
        return per_feature, per_group

    per_feature, per_group = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("per-feature (under-attributes on redundant features):")
    print(per_feature.render(k=8))
    print("\nper-family (jointly permuted):")
    print(per_group.render(k=5))

    # The model is healthy.
    assert per_group.baseline_accuracy > 0.8
    # Whole families carry real signal even where single features are
    # individually replaceable.
    drops = dict(per_group.top(len(_feature_groups())))
    assert max(drops.values()) > 0.05, drops
    # At least two independent families matter — the paper collects both
    # client- and server-side metrics for a reason.
    assert sum(1 for d in drops.values() if d > 0.02) >= 2, drops
