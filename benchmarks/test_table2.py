"""Benchmark E4 — Table II: the server-side metric catalogue.

Validates that every metric the paper's server-side monitor collects is
produced by our monitor, finite, and non-degenerate under a mixed load —
a silent all-zero metric would starve the model of its signal.
"""

from repro.experiments.runner import ExperimentConfig
from repro.experiments.table2 import run_table2
from repro.monitor.schema import SERVER_FEATURES, SERVER_METRICS, vector_dim


def _config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=1.0, seed=0)


def test_table2_metric_catalogue(benchmark):
    result = benchmark.pedantic(lambda: run_table2(_config(), scale=0.25),
                                rounds=1, iterations=1)
    print("\nTable II metric activity under mixed data+metadata load:")
    print(result.render())
    print(f"({result.n_samples} per-second samples across all servers)")

    # Table II families, mapped to our metric names.
    io_speed = ["ios_completed"]
    device = ["sectors_read", "sectors_written"]
    queues = ["queue_insertions", "requests_merged", "io_ticks",
              "weighted_time"]
    for metric in io_speed + device + queues:
        assert result.moved(metric), f"Table II metric {metric} never moved"
        assert result.nonzero_fraction[metric] > 0.01

    # The MDT-side and gauge extensions must move too.
    assert result.moved("mds_ops_completed")
    assert result.moved("queue_depth")
    assert result.moved("cache_dirty_bytes")

    # Schema sanity: 3 stats per metric, stable vector layout.
    assert len(SERVER_FEATURES) == 3 * len(SERVER_METRICS)
    assert vector_dim() == 10 + len(SERVER_FEATURES)
