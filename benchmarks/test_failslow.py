"""Benchmark A7 — fail-slow transfer (zero-shot, then mixed training).

Scores a predictor trained on interference-caused degradation against
degradation caused by Perseus-style fail-slow devices. Both causes share
symptoms (queueing, falling completion rates), but the *training noise*
also carries cause-specific signatures (massive noise write/metadata
traffic) that fail-slow runs lack. The bench measures the transfer gap
honestly and then shows the remedy: mixing a handful of fail-slow windows
into training recovers accuracy — the framework's data-collection
pipeline extends to new degradation causes without architectural change.
"""

import numpy as np

from repro.core.dataset import Dataset, split_indices
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import evaluate
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import bank_to_dataset
from repro.experiments.failslow import run_failslow_transfer
from repro.experiments.runner import ExperimentConfig
from repro.workloads.io500 import make_io500_task


def test_a7_failslow_transfer(benchmark, io500_bank):
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    interference_ds = bank_to_dataset(io500_bank, BINARY_THRESHOLDS)
    predictor = InterferencePredictor.train(
        interference_ds, BINARY_THRESHOLDS, config=TrainConfig(seed=0), seed=0,
    )
    target = make_io500_task("ior-easy-read", ranks=4, scale=0.8)
    result = benchmark.pedantic(
        lambda: run_failslow_transfer(predictor, target, config,
                                      slow_factors=(4.0, 8.0, 16.0)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert min(result.class_counts) > 0

    # Mixed-training arm: fold half the fail-slow windows into the
    # interference training set, evaluate on the other half.
    train_idx, test_idx = split_indices(len(result.y), 0.5, seed=1)
    mixed = Dataset(
        np.concatenate([interference_ds.X, result.X[train_idx]]),
        np.concatenate([interference_ds.y, result.y[train_idx]]),
    )
    mixed_predictor = InterferencePredictor.train(
        mixed, BINARY_THRESHOLDS, config=TrainConfig(seed=0), seed=0,
    )
    mixed_report = evaluate(result.y[test_idx],
                            mixed_predictor.predict(result.X[test_idx]),
                            n_classes=2)
    print("\nafter mixing fail-slow windows into training:")
    print(mixed_report.summary())

    # The finding the bench encodes: zero-shot transfer is poor (the
    # model keyed on interference-specific signatures), and retraining
    # with a few fail-slow samples largely repairs it.
    assert mixed_report.accuracy > result.report.accuracy + 0.2
    assert mixed_report.accuracy > 0.7
