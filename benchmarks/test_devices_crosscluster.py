"""Benchmarks A4/A5 — device ablation and cross-cluster adaptation.

A4: on flash-backed OSTs the seek-driven read/read interference collapses
while the cache-driven write/write interference survives — quantifying
how much of Table I is rotational-storage-specific.

A5: the paper's "easily adapted to different clusters" claim, measured as
retraining the kernel net on a 4-OSS cluster, plus the set-attention
extension's zero-shot transfer (it is server-count agnostic).
"""

from repro.experiments.cross_cluster import run_cross_cluster
from repro.experiments.devices import run_device_ablation
from repro.experiments.runner import ExperimentConfig


def _config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=1.0, seed=0)


def test_a4_device_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_device_ablation(_config(), target_scale=0.4),
        rounds=1, iterations=1,
    )
    print("\nDevice ablation (slowdown of target under noise):")
    print(result.render())

    hdd_rr = result.cell("hdd", "read_read")
    ssd_rr = result.cell("ssd", "read_read")
    # Seek amplification: rotational read/read interference far exceeds
    # flash's pure bandwidth sharing.
    assert hdd_rr > 2 * ssd_rr
    assert hdd_rr > 5.0
    # Bandwidth sharing alone still costs something on flash.
    assert ssd_rr > 1.1
    # Write/write interference is a cache/throttle phenomenon: it
    # survives on both device types.
    assert result.cell("ssd", "write_write") > 1.5
    assert result.cell("hdd", "write_write") > 1.5
    # Reads stay shielded from write noise on both technologies.
    assert result.cell("hdd", "read_vs_write") < 2.0
    assert result.cell("ssd", "read_vs_write") < 2.0


def test_a5_cross_cluster(benchmark):
    result = benchmark.pedantic(
        lambda: run_cross_cluster(_config()),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    s = result.scores
    # The paper's adaptation path works: retraining on the new cluster
    # yields a usable model.
    assert s["kernel-retrained-on-B"] > 0.7
    # The attention extension transfers across server counts without any
    # retraining and still beats chance clearly.
    assert s["settransformer-zero-shot"] > 0.6
    # Retraining the transformer on B is at least as good as zero-shot.
    assert (s["settransformer-retrained-on-B"]
            >= s["settransformer-zero-shot"] - 0.05)
