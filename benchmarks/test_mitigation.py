"""Benchmark A9 — prediction-driven mitigation.

The payoff the paper argues for: a quantitative interference predictor
lets the system throttle noise *only when it hurts*. Compares target
latency under no mitigation, an always-on Lustre-TBF-style static limit,
and the streaming-predictor-driven limit.
"""

from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import bank_to_dataset
from repro.experiments.mitigation import run_mitigation
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.workloads.io500 import make_io500_task


def test_a9_prediction_driven_mitigation(benchmark, io500_bank):
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    predictor = InterferencePredictor.train(
        bank_to_dataset(io500_bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.8)
    noise = [InterferenceSpec("ior-easy-write", instances=3, ranks=3,
                              scale=0.25)]
    result = benchmark.pedantic(
        lambda: run_mitigation(predictor, target, config, noise_specs=noise),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    print(f"improvement: predictive={result.improvement('predictive'):.2f}x "
          f"static={result.improvement('static'):.2f}x")

    # Prediction-driven throttling recovers a large part of the target's
    # performance...
    assert result.improvement("predictive") > 1.5
    # ... comparable to always-on throttling ...
    assert (result.improvement("predictive")
            > 0.5 * result.improvement("static"))
    # ... and it is targeted: zero false-alarm throttling on a quiet run.
    assert result.quiet_false_alarm_time < config.window_size
    assert result.alarms >= 1
