"""Benchmark E8 — Figure 5: binary prediction on real applications.

One model per application (AMReX, Enzo, OpenPMD), each trained on its own
windows from a quiet run plus three increasing IO500 noise intensities —
the paper's per-application protocol. Expected shape: the two
data-intensive applications classify well; OpenPMD, which produces the
fewest samples, is the weakest.
"""

from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import ExperimentConfig


def _config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=1.0, seed=0)


def test_fig5_real_applications(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5(_config(), max_level=3, noise_scale=0.25),
        rounds=1, iterations=1,
    )
    print("\nFigure 5 — real applications, binary:")
    print(result.render())

    for app in ("amrex", "enzo", "openpmd"):
        assert app in result.results

    # Data-intensive applications classify well (paper: "good
    # performance" for AMReX and Enzo). Margins allow single-seed noise
    # on the minority (<2x) class, which is small by construction here
    # as in the paper's per-application datasets.
    assert result.results["amrex"].report.accuracy > 0.75
    assert result.results["enzo"].report.accuracy > 0.75
    assert result.macro_f1("amrex") > 0.6
    assert result.macro_f1("enzo") > 0.6

    # OpenPMD yields the fewest windows — the paper's explanation for its
    # weaker model.
    n = {app: r.n_windows for app, r in result.results.items()}
    print(f"windows per app: {n}")
    assert n["openpmd"] <= min(n["amrex"], n["enzo"])
