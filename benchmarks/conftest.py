"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a
reduced-but-faithful scale (the simulator compresses minutes of testbed
time into seconds). Expensive window banks are session-scoped so
Figure 3(a) and Figure 4 share one IO500 sweep, exactly like the paper
reuses its IO500 dataset.
"""

import pytest

from repro.experiments.fig3 import collect_dlio_bank, collect_io500_bank
from repro.experiments.runner import ExperimentConfig

#: Noise mix used across benchmarks (one per access family).
NOISE_TASKS = ("ior-easy-write", "ior-easy-read", "mdt-hard-write")


def bench_config(seed: int = 0) -> ExperimentConfig:
    return ExperimentConfig(
        window_size=0.25,
        sample_interval=0.125,
        warmup=1.0,
        seed=seed,
    )


@pytest.fixture(scope="session")
def io500_bank():
    """The IO500 window bank shared by Figure 3(a), Figure 4 and A1/A2."""
    return collect_io500_bank(
        bench_config(),
        target_ranks=4,
        target_scale=0.8,
        max_level=3,
        noise_scale=0.25,
    )


@pytest.fixture(scope="session")
def dlio_bank():
    """The DLIO window bank for Figure 3(b).

    DLIO uses a wider window than IO500: its ops are sparse (one sample
    read per compute step), so 0.5 s windows hold enough ops for stable
    degradation levels.
    """
    config = ExperimentConfig(
        window_size=0.5,
        sample_interval=0.125,
        warmup=1.0,
        seed=0,
    )
    return collect_dlio_bank(config, max_level=3, noise_ranks=3,
                             noise_scale=0.25, steps_per_epoch=16)
