"""Benchmarks A1/A2/A3 — ablations of the design choices.

A1: the kernel-based architecture vs flat MLP / logistic regression /
random forest, including robustness to server reordering (the paper's
stated motivation for the kernel design). A2: client-side vs server-side
vs combined features. A3: aggregation window size.
"""

from repro.experiments.ablations import (
    run_feature_ablation,
    run_model_ablation,
    run_regression_extension,
    run_window_size_ablation,
)
from repro.experiments.datagen import standard_scenarios
from repro.experiments.runner import ExperimentConfig
from repro.workloads.io500 import make_io500_task


def test_a1_model_architecture(benchmark, io500_bank):
    result = benchmark.pedantic(lambda: run_model_ablation(io500_bank),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    s = result.scores
    # Every model must beat chance on the in-order test set.
    for arm in ("kernel-net", "set-transformer", "flat-mlp",
                "logistic-regression", "random-forest"):
        assert s[arm] > 0.5, f"{arm} failed to learn"
    # The kernel architecture is competitive with the best alternative.
    assert s["kernel-net"] >= max(s["flat-mlp"], s["random-forest"]) - 0.1
    # Permutation robustness, measured honestly: the kernel net shares
    # weights across servers but its *head* is positional, so it is NOT
    # fully invariant — the set-transformer is, by construction. That
    # invariance is exact (scores identical under reordering), which is
    # the property the paper's §III-C motivation actually requires.
    st_drop = s["set-transformer"] - s["set-transformer/permuted-servers"]
    print(f"permutation F1 drop: set-transformer={st_drop:.4f} "
          f"kernel={s['kernel-net'] - s['kernel-net/permuted-servers']:.4f} "
          f"flat={s['flat-mlp'] - s['flat-mlp/permuted-servers']:.4f}")
    assert abs(st_drop) < 1e-9
    assert (s["set-transformer/permuted-servers"]
            >= max(s["kernel-net/permuted-servers"],
                   s["flat-mlp/permuted-servers"]) - 1e-9)


def test_a2_feature_families(benchmark, io500_bank):
    result = benchmark.pedantic(lambda: run_feature_ablation(io500_bank),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    s = result.scores
    # Each family alone carries signal ...
    assert s["client-only"] > 0.5
    assert s["server-only"] > 0.5
    # ... and the combination is at least competitive with the best
    # single family (the paper collects both for a reason).
    assert s["client+server"] >= max(s["client-only"], s["server-only"]) - 0.05


def test_a6_regression_extension(benchmark, io500_bank):
    (result, metrics) = benchmark.pedantic(
        lambda: run_regression_extension(io500_bank),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    print(f"regression metrics: {metrics.summary()}")
    # The regressor orders windows by severity (useful beyond bins).
    assert metrics.spearman > 0.5
    # Thresholding its level predictions is a usable classifier, within
    # reach of the purpose-built one.
    assert (result.scores["regressor (thresholded levels)"]
            > result.scores["classifier (binned training)"] - 0.25)


def test_a3_window_size(benchmark):
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)
    # Long-running targets: window counts scale with target runtime, and
    # each window size needs enough samples to train on.
    targets = [make_io500_task(t, ranks=4, scale=1.5)
               for t in ("ior-easy-read", "ior-easy-write", "mdt-hard-write")]
    scenarios = standard_scenarios(
        max_level=3,
        tasks=("ior-easy-write", "ior-easy-read", "mdt-hard-write"),
        ranks=3, scale=0.25,
    )
    result = benchmark.pedantic(
        lambda: run_window_size_ablation(targets, scenarios, config,
                                         window_sizes=(0.25, 0.5, 1.0)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # Every window size must produce a learnable dataset.
    for arm, score in result.scores.items():
        assert score > 0.5, f"{arm} failed to learn"
