"""Benchmarks E5/E6 — Figure 3: binary interference prediction.

Trains the kernel network on the IO500 and DLIO window banks with the
paper's 80/20 protocol and asserts the paper's headline: accurate binary
prediction (high F1, small off-diagonal mass) on both benchmark families,
with DLIO's dataset skewed negative (compute-dominated) and IO500's
skewed positive.
"""

from repro.experiments.fig3 import run_fig3_dlio, run_fig3_io500


def test_fig3a_io500_binary(benchmark, io500_bank):
    result = benchmark.pedantic(lambda: run_fig3_io500(bank=io500_bank),
                                rounds=1, iterations=1)
    print("\nFigure 3(a) — IO500, binary:")
    print(result.render())
    report = result.report
    assert report.accuracy > 0.85
    assert report.macro_f1 > 0.80
    # The interference class must be well-detected, like the paper's
    # matrix (F1 > 90% headline; we allow simulator slack).
    assert report.f1[1] > 0.85
    # IO500 windows are mostly interference-affected (8647 vs 2991 in the
    # paper): positives dominate here too.
    assert result.train_counts[1] > result.train_counts[0]


def test_fig3b_dlio_binary(benchmark, dlio_bank):
    result = benchmark.pedantic(lambda: run_fig3_dlio(bank=dlio_bank),
                                rounds=1, iterations=1)
    print("\nFigure 3(b) — DLIO, binary:")
    print(result.render())
    report = result.report
    # DLIO is the hardest dataset here: sparse ops make windows hover
    # around the 2x threshold, so a single-seed run carries label noise
    # the paper's testbed (coarser windows, more data) averages out.
    assert report.accuracy > 0.75
    assert report.macro_f1 > 0.72
    # DLIO is compute-dominated: negatives dominate (14724 vs 3702 in the
    # paper).
    assert result.train_counts[0] > result.train_counts[1]
