#!/usr/bin/env python
"""Microbenchmark of the discrete-event kernel's hot path.

Measures events/second through ``Environment.run()`` on a pure
timeout-churn workload (the ``step`` fast path dominates every
simulation), and proves the micro-optimised loop kept determinism: two
identical runs must replay the identical event order.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--events N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.sim.engine import Environment


def churn(n_processes: int, hops: int):
    """Run a timeout-relay workload; returns (events_fired, wall, order)."""
    env = Environment()
    order: list[tuple[str, float]] = []
    rng = np.random.default_rng(11)
    delays = rng.integers(1, 7, size=(n_processes, hops)) * 0.125

    def proc(pid: int):
        for h in range(hops):
            yield env.timeout(float(delays[pid, h]))
        order.append((f"p{pid}", env.now))

    for pid in range(n_processes):
        env.process(proc(pid))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    # Every hop is a timeout event + each process start/finish events.
    return n_processes * hops, wall, order


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--processes", type=int, default=2000)
    parser.add_argument("--hops", type=int, default=100)
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_engine.json"))
    args = parser.parse_args(argv)

    n1, wall1, order1 = churn(args.processes, args.hops)
    n2, wall2, order2 = churn(args.processes, args.hops)
    assert order1 == order2, "engine event order is not deterministic"
    wall = min(wall1, wall2)
    rate = n1 / wall
    print(f"{args.processes} procs x {args.hops} hops: "
          f"{n1} timeouts in {wall:.3f}s -> {rate:,.0f} timeouts/s")
    print("determinism: identical replay  [ok]")

    args.out.write_text(json.dumps({
        "processes": args.processes,
        "hops": args.hops,
        "timeout_events": n1,
        "wall_seconds": wall,
        "timeouts_per_second": rate,
        "deterministic": True,
    }, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
