#!/usr/bin/env python
"""Engine microbenchmark baseline — thin wrapper over :mod:`repro.bench`.

Measures raw timeout churn through the event kernel plus the
request-path comparison (per-request generator processes vs the batched
callback chain) and writes ``BENCH_engine.json``. Equivalent to
``python -m repro bench engine``.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--out-dir DIR]
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main(["engine", *sys.argv[1:]]))
