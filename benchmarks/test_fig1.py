"""Benchmarks E2/E3 — Figure 1: Enzo per-op latency under interference.

Figure 1(a): impacts are non-uniform across operations and mostly grow
with interference intensity. Figure 1(b): data-intensive vs
metadata-intensive noise hurt different operations.
"""

import numpy as np

from repro.experiments.fig1 import run_fig1a, run_fig1b
from repro.experiments.runner import ExperimentConfig
from repro.workloads.apps import EnzoConfig


def _config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=1.0, seed=0)


def _enzo():
    return EnzoConfig(ranks=4, cycles=5, grids_per_rank=4, compute_time=0.15)


def test_fig1a_growing_write_interference(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1a(_config(), _enzo(), max_level=3, noise_scale=0.25),
        rounds=1, iterations=1,
    )
    print("\nFigure 1(a): Enzo op latency (smoothed) under ior-easy-write noise")
    print(result.render())
    conditions = [k for k in result.series if k != "baseline"]
    means = {c: result.mean_slowdown(c) for c in conditions}
    print("mean slowdown per condition:", {k: round(v, 2) for k, v in means.items()})

    # Interference hurts: every noise level degrades the mean op latency.
    assert all(m > 1.05 for m in means.values()), means
    # Impacts grow with intensity overall (x3 worse than x1).
    assert means["ior-easy-write-x3"] > means["ior-easy-write-x1"]
    # Impacts are NOT uniform across operations (the paper's key point):
    # per-op slowdown ratios vary substantially within one condition.
    dispersion = result.slowdown_dispersion("ior-easy-write-x3")
    print(f"per-op slowdown dispersion (cv) at x3: {dispersion:.2f}")
    assert dispersion > 0.3


def test_fig1b_noise_type_matters(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1b(_config(), _enzo(), noise_scale=0.25),
        rounds=1, iterations=1,
    )
    print("\nFigure 1(b): Enzo under data- vs metadata-intensive noise")
    print(result.render())
    base = result.series["baseline"]
    data = result.series["data-intensive"]
    meta = result.series["metadata-intensive"]
    mask = base > 0
    data_r = data[mask] / base[mask]
    meta_r = meta[mask] / base[mask]
    both = result.mean_slowdown("data-intensive"), result.mean_slowdown("metadata-intensive")
    print(f"mean slowdowns: data={both[0]:.2f} meta={both[1]:.2f}")

    # The two noise types impact different operations: for a meaningful
    # fraction of ops the *meta* noise dominates, for another the *data*
    # noise dominates (the paper's arrows in Figure 1(b)).
    meta_dominant = (meta_r > 1.2) & (meta_r > 1.5 * data_r)
    data_dominant = (data_r > 1.2) & (data_r > 1.5 * meta_r)
    print(f"ops dominated by meta noise: {meta_dominant.sum()}, "
          f"by data noise: {data_dominant.sum()} of {mask.sum()}")
    assert meta_dominant.sum() > 0
    assert data_dominant.sum() > 0
    # Per-op correlation between the two conditions is imperfect — the
    # impact pattern depends on noise type, not just op identity.
    corr = np.corrcoef(data_r, meta_r)[0, 1]
    print(f"correlation of per-op slowdowns across noise types: {corr:.2f}")
    assert corr < 0.95
