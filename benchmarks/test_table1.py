"""Benchmark E1 — Table I: the 7x7 IO500 cross-interference matrix.

Regenerates the paper's Table I on the simulated cluster and asserts its
qualitative shape (who interferes with whom, by roughly what factor).
Absolute values differ from the paper — the substrate is a simulator —
but every directional claim must hold.
"""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import run_table1, shape_checks
from repro.workloads.io500 import IO500_TASKS


def _config():
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=1.0, seed=0)


def test_table1_matrix(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(
            _config(),
            target_ranks=4,
            target_scale=0.4,
            noise_instances=3,
            noise_ranks=3,
            noise_scale=0.25,
        ),
        rounds=1,
        iterations=1,
    )
    print("\nTable I (slowdown of row task under column noise):")
    print(result.render())
    print("\nstandalone runtimes (s):")
    for task, t in result.standalone_runtime.items():
        print(f"  {task:16s} {t:.2f}")

    checks = shape_checks(result)
    print("\nshape checks vs paper Table I:")
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'MISS'}] {name}")
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Table I shape mismatches: {failed}"

    # Every cell is a positive, finite slowdown ratio.
    assert result.matrix.shape == (len(IO500_TASKS), len(IO500_TASKS))
    assert (result.matrix > 0).all()
