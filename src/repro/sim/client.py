"""Lustre-like client: striped data RPCs, RPC windows, metadata calls.

Each compute node owns a :class:`ClientNode` (one NIC link plus per-OST
RPC credit windows mirroring ``max_rpcs_in_flight``). Workload ranks talk
through a :class:`ClientSession`, which tags every completed operation
with the job name, rank and a deterministic per-rank sequence number and
appends a DXT-style :class:`~repro.common.records.IORecord` to the run's
trace — this is the simulated counterpart of the paper's modified-Darshan
client-side monitor.

All session methods are generators meant to be driven with ``yield from``
inside a rank process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.records import IORecord, OpType, ServerId, ServerKind
from repro.common.units import MIB
from repro.obs import trace as _trace
from repro.sim.engine import AllOf
from repro.sim.netmodel import Link
from repro.sim.resources import Semaphore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cluster import Cluster

__all__ = ["ClientParams", "ClientNode", "ClientSession", "TraceCollector"]


@dataclass(frozen=True)
class ClientParams:
    """Client-side RPC behaviour (Lustre OSC/MDC tunables)."""

    max_rpc_bytes: int = 1 * MIB
    max_rpcs_in_flight: int = 8
    #: Fixed per-RPC overhead covering the request message and the ack.
    rpc_latency: float = 200e-6

    def __post_init__(self) -> None:
        if self.max_rpc_bytes <= 0 or self.max_rpcs_in_flight <= 0:
            raise ValueError("RPC size and window must be positive")
        if self.rpc_latency < 0:
            raise ValueError("rpc_latency must be non-negative")


class TraceCollector:
    """Accumulates the DXT-style records of one simulated run."""

    #: Whether added records are retained. The batch backend skips
    #: building IORecords entirely for collectors that discard them.
    keeps_records = True

    def __init__(self) -> None:
        self.records: list[IORecord] = []

    def add(self, record: IORecord) -> None:
        self.records.append(record)

    def for_job(self, job: str) -> list[IORecord]:
        return [r for r in self.records if r.job == job]

    def __len__(self) -> int:
        return len(self.records)


class NullCollector(TraceCollector):
    """Discards records. Used for interference jobs whose traces nobody
    reads (the monitors only consume the target application's records);
    long noise loops would otherwise accumulate hundreds of thousands of
    dead records per run."""

    keeps_records = False

    def add(self, record: IORecord) -> None:
        pass


class ClientNode:
    """One compute node: a NIC plus per-OST RPC credit windows."""

    def __init__(self, cluster: "Cluster", index: int, link: Link,
                 params: ClientParams) -> None:
        self.cluster = cluster
        self.index = index
        self.link = link
        self.params = params
        self._rpc_slots: dict[int, Semaphore] = {}
        self._mds_slots = Semaphore(cluster.env, params.max_rpcs_in_flight)

    def rpc_window(self, ost_index: int) -> Semaphore:
        slot = self._rpc_slots.get(ost_index)
        if slot is None:
            slot = Semaphore(self.cluster.env, self.params.max_rpcs_in_flight)
            self._rpc_slots[ost_index] = slot
        return slot


class ClientSession:
    """Per-(job, rank) handle issuing I/O and recording its trace."""

    def __init__(self, node: ClientNode, job: str, rank: int,
                 collector: TraceCollector) -> None:
        self.node = node
        self.job = job
        self.rank = rank
        self.collector = collector
        self._op_id = 0

    # -- internal helpers ----------------------------------------------------

    @property
    def env(self):
        return self.node.cluster.env

    def _next_op_id(self) -> int:
        self._op_id += 1
        return self._op_id

    def _record(self, op: OpType, path: str, offset: int, size: int,
                start: float, servers: tuple[ServerId, ...]) -> IORecord:
        rec = IORecord(
            job=self.job,
            rank=self.rank,
            op_id=self._next_op_id(),
            op=op,
            path=path,
            offset=offset,
            size=size,
            start=start,
            end=self.env.now,
            servers=servers,
        )
        self.collector.add(rec)
        return rec

    def _data_rpc(self, ost_index: int, object_id: int, obj_offset: int,
                  nbytes: int, is_write: bool, parent_span=None):
        """One bulk RPC to one OST, gated by the RPC window."""
        cluster = self.node.cluster
        ost = cluster.osts[ost_index]
        window = self.node.rpc_window(ost_index)
        tracer = _trace.TRACER
        span = tracer.start(
            "client.rpc", self.env.now, parent=parent_span,
            ost=ost_index, nbytes=nbytes, write=is_write,
        ) if tracer is not None else None
        yield window.acquire()
        try:
            yield self.env.timeout(self.node.params.rpc_latency)
            path = cluster.route(self.node.link, ost.oss_link)
            if is_write:
                yield cluster.net.transfer(nbytes, path, parent_span=span)
                yield ost.write(object_id, obj_offset, nbytes, job=self.job,
                                parent_span=span)
            else:
                yield ost.read(object_id, obj_offset, nbytes, job=self.job,
                               parent_span=span)
                yield cluster.net.transfer(nbytes, path, parent_span=span)
        finally:
            window.release()
        # Normal completion only — a ``finally`` would also run when an
        # abandoned noise generator is garbage-collected after its run,
        # closing spans at GC time and breaking trace determinism.
        if span is not None:
            tracer.finish(span, self.env.now)

    def _data_op(self, op: OpType, path: str, offset: int, size: int):
        cluster = self.node.cluster
        f = cluster.fs.lookup(path)
        start = self.env.now
        tracer = _trace.TRACER
        span = tracer.start(
            f"client.{op.value}", start, job=self.job, rank=self.rank,
            path=path, offset=offset, size=size,
        ) if tracer is not None else None
        rpcs = []
        touched: dict[ServerId, int] = {}
        max_rpc = self.node.params.max_rpc_bytes
        for ost_idx, object_id, obj_off, nbytes in f.layout.map_extent(offset, size):
            sid = ServerId(ServerKind.OST, ost_idx)
            touched[sid] = touched.get(sid, 0) + nbytes
            sent = 0
            while sent < nbytes:
                piece = min(max_rpc, nbytes - sent)
                rpcs.append(
                    self.env.process(
                        self._data_rpc(
                            ost_idx, object_id, obj_off + sent, piece,
                            is_write=(op is OpType.WRITE), parent_span=span,
                        )
                    )
                )
                sent += piece
        yield AllOf(self.env, rpcs)
        if op is OpType.WRITE:
            f.size = max(f.size, offset + size)
        rec = self._record(op, path, offset, size, start, tuple(sorted(touched)))
        if span is not None:
            tracer.finish(span, self.env.now, op_id=rec.op_id)

    def _meta_op(self, op: OpType, path: str, parent: str):
        cluster = self.node.cluster
        start = self.env.now
        tracer = _trace.TRACER
        span = tracer.start(
            f"client.{op.value}", start, job=self.job, rank=self.rank,
            path=path,
        ) if tracer is not None else None
        yield self._mds_gate_acquire()
        try:
            yield self.env.timeout(self.node.params.rpc_latency)
            yield cluster.mds.handle(op, parent, parent_span=span)
        finally:
            self.node._mds_slots.release()
        rec = self._record(op, path, 0, 0, start, (cluster.mds.server_id,))
        if span is not None:
            tracer.finish(span, self.env.now, op_id=rec.op_id)

    def _mds_gate_acquire(self):
        return self.node._mds_slots.acquire()

    # -- public generator API ---------------------------------------------------

    def create(self, path: str, stripe_count: int = 1,
               stripe_size: int | None = None):
        """Create a file: MDS transaction plus layout assignment."""
        cluster = self.node.cluster
        if path not in cluster.fs:
            cluster.fs.create(path, stripe_count=stripe_count, stripe_size=stripe_size)
        f = cluster.fs.lookup(path)
        yield from self._meta_op(OpType.CREATE, path, f.parent)

    def _parent_of(self, path: str) -> str:
        """Parent directory; falls back to string parsing for paths not in
        the namespace — a lookup of a missing or directory path is still a
        real MDS round-trip (ENOENT costs the same trip as success)."""
        import posixpath

        cluster = self.node.cluster
        if path in cluster.fs:
            return cluster.fs.lookup(path).parent
        return posixpath.dirname(path) or "/"

    def open(self, path: str):
        yield from self._meta_op(OpType.OPEN, path, self._parent_of(path))

    def close(self, path: str):
        yield from self._meta_op(OpType.CLOSE, path, self._parent_of(path))

    def stat(self, path: str):
        yield from self._meta_op(OpType.STAT, path, self._parent_of(path))

    def unlink(self, path: str):
        cluster = self.node.cluster
        yield from self._meta_op(OpType.UNLINK, path, self._parent_of(path))
        if path in cluster.fs:
            cluster.fs.unlink(path)

    def mkdir(self, path: str):
        import posixpath

        parent = posixpath.dirname(path) or "/"
        yield from self._meta_op(OpType.MKDIR, path, parent)

    def write(self, path: str, offset: int, size: int):
        """Write ``size`` bytes at ``offset``; striped, windowed RPCs."""
        yield from self._data_op(OpType.WRITE, path, offset, size)

    def read(self, path: str, offset: int, size: int):
        """Read ``size`` bytes at ``offset``; striped, windowed RPCs."""
        yield from self._data_op(OpType.READ, path, offset, size)
