"""Server-side QoS: token-bucket rate limiting per job (Lustre TBF).

Qian et al.'s classful token bucket filter (SC'17, cited by the paper as
an existing mitigation interface) throttles I/O per class at the server's
request scheduler. This module implements the primitive: a
:class:`TokenBucket` accumulates ``rate`` bytes/s of credit up to
``burst`` and RPC handlers ``consume`` their payload before service.
:class:`QoSPolicy` maps job names to buckets, supports runtime
installation/removal, and is what the prediction-driven mitigation
experiment (:mod:`repro.experiments.mitigation`) manipulates when the
streaming predictor raises an interference alarm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Environment, Event

__all__ = ["TokenBucket", "QoSPolicy"]


class TokenBucket:
    """Byte-credit bucket: ``rate`` bytes/s refill, ``burst`` capacity.

    ``consume`` is FIFO: requests wait in arrival order, each until the
    bucket holds its full size, so a large request cannot be starved by a
    stream of small ones.
    """

    def __init__(self, env: Environment, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.env = env
        self.rate = rate
        self.burst = float(burst)
        self._level = float(burst)
        self._last_refill = env.now
        self._waiters: deque[tuple[Event, float]] = deque()
        self._draining = False

    def _refill(self) -> None:
        now = self.env.now
        self._level = min(self.burst, self._level + (now - self._last_refill) * self.rate)
        self._last_refill = now

    def consume(self, nbytes: float) -> Event:
        """Returns an event firing once ``nbytes`` of credit is granted."""
        if nbytes < 0:
            raise ValueError(f"negative consume: {nbytes}")
        gate = Event(self.env)
        if nbytes == 0:
            return gate.succeed()
        if nbytes > self.burst:
            raise ValueError(
                f"request of {nbytes} B exceeds bucket burst {self.burst} B"
            )
        self._waiters.append((gate, float(nbytes)))
        if not self._draining:
            self._draining = True
            self.env.process(self._drain())
        return gate

    def _drain(self):
        while self._waiters:
            gate, need = self._waiters[0]
            self._refill()
            if self._level < need:
                yield self.env.timeout((need - self._level) / self.rate)
                self._refill()
            self._level -= need
            self._waiters.popleft()
            gate.succeed()
        self._draining = False

    def consume_batch(self, sizes) -> np.ndarray:
        """Closed-form FIFO grant times for a whole burst of requests.

        While the queue is busy the bucket level never touches the burst
        cap (the drain grants the head the instant its credit lands), so
        grant times follow directly from the cumulative sum of needs:
        ``grant_i = now + max(0, cum_i - level) / rate``. The total need
        is deducted up front — the level may go negative, representing
        pre-sold credit — which keeps later ``consume()`` arrivals behind
        the batch exactly as FIFO queueing would.

        Only valid when no waiters are queued (callers fall back to
        per-request :meth:`consume` otherwise). Returns absolute grant
        times, one per request, in arrival order.
        """
        if self._waiters or self._draining:
            raise RuntimeError("consume_batch requires an idle bucket queue")
        arr = np.asarray(sizes, dtype=float)
        if arr.size == 0:
            return arr
        if (arr < 0).any():
            raise ValueError("negative consume in batch")
        if (arr > self.burst).any():
            raise ValueError(f"batch request exceeds bucket burst {self.burst} B")
        self._refill()
        cum = np.cumsum(arr)
        waits = np.maximum(0.0, cum - self._level) / self.rate
        self._level -= float(cum[-1])
        return self.env.now + waits


@dataclass
class QoSPolicy:
    """Per-job token buckets installed on one server."""

    env: Environment

    def __post_init__(self) -> None:
        self._buckets: dict[str, TokenBucket] = {}

    def limit(self, job: str, rate: float, burst: float | None = None) -> None:
        """Install (or replace) a rate limit for ``job``."""
        self._buckets[job] = TokenBucket(self.env, rate,
                                         burst if burst is not None else rate)

    def clear(self, job: str) -> None:
        """Remove ``job``'s limit; queued waiters still drain first."""
        self._buckets.pop(job, None)

    def is_limited(self, job: str) -> bool:
        return job in self._buckets

    def admit(self, job: str | None, nbytes: int) -> Event:
        """Admission gate for one RPC: immediate unless ``job`` is limited."""
        if job is not None:
            bucket = self._buckets.get(job)
            if bucket is not None:
                return bucket.consume(nbytes)
        gate = Event(self.env)
        return gate.succeed()

    def admit_fast(self, job: str | None, nbytes: int, proceed) -> None:
        """Single-request admission without an Event for unlimited jobs:
        ``proceed()`` runs inline now, or at the bucket grant otherwise."""
        bucket = self._buckets.get(job) if job is not None else None
        if bucket is None:
            proceed()
        else:
            bucket.consume(nbytes).callbacks.append(lambda _ev: proceed())

    def admit_batch(self, job: str | None, sizes, on_admit) -> None:
        """Batched admission: ``on_admit(i)`` runs at request *i*'s grant.

        Unlimited jobs are admitted inline at the current instant — the
        event path's immediately-succeeded gate fires on the next tick at
        the same timestamp, so this is observationally identical. Limited
        jobs get closed-form cumulative-sum grant times when the bucket
        queue is idle, or fall back to FIFO ``consume`` events otherwise.
        """
        bucket = self._buckets.get(job) if job is not None else None
        if bucket is None:
            for i in range(len(sizes)):
                on_admit(i)
            return
        if bucket._waiters or bucket._draining:
            for i, nbytes in enumerate(sizes):
                bucket.consume(nbytes).callbacks.append(
                    lambda _ev, i=i: on_admit(i)
                )
            return
        now = self.env.now
        for i, when in enumerate(bucket.consume_batch(sizes)):
            self.env.after(when - now, lambda _ev, i=i: on_admit(i))
