"""Fluid-flow network with global max-min fair sharing.

The paper's testbed interconnect is 1 GB/s Ethernet shared by every
client and server NIC; network contention is one of the root causes of
I/O interference it cites (Bhatele et al., Yildiz et al.). We model each
NIC as a :class:`Link` with fixed capacity and every bulk transfer as a
:class:`Flow` traversing a path of links. Rates follow the classic
*max-min progressive filling* allocation, recomputed whenever a flow
arrives or departs; between recomputations each flow progresses linearly,
so completions can be scheduled exactly.

This fluid model skips per-packet behaviour but preserves what matters to
the interference study: bandwidth sharing, bottleneck shifting and
transfer-time inflation under contention.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.obs import trace as _trace
from repro.sim.engine import Environment, Event

__all__ = ["Link", "Flow", "FlowNetwork"]


@dataclass
class Link:
    """A network link (NIC) with a fixed capacity in bytes/second."""

    name: str
    capacity: float

    #: Flows currently traversing this link, keyed in arrival (fid) order —
    #: a dict-as-ordered-set so every iteration is deterministic (managed
    #: by FlowNetwork).
    flows: dict["Flow", None] = field(default_factory=dict, repr=False)

    #: Progressive-filling scratch state, stamped by the generation of the
    #: last :meth:`FlowNetwork._recompute_rates` pass that touched this
    #: link — avoids building a fresh per-link dict on every recompute
    #: (the single hottest allocation on large sweeps).
    _rr_gen = 0
    _residual = 0.0
    _live = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name}: capacity must be positive")

    # Identity semantics at C speed: links are unique objects, and the
    # flow bookkeeping hashes them on every arrival and departure.
    __hash__ = object.__hash__
    __eq__ = object.__eq__

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated to flows."""
        return sum(f.rate for f in self.flows) / self.capacity


class Flow:
    """One in-progress bulk transfer across a path of links.

    ``done`` is either an :class:`Event` (succeeded at completion — the
    event backend) or a plain callable invoked directly at the completion
    timer's fire time (the batch backend; same timestamp, one event less).
    """

    __slots__ = ("fid", "links", "remaining", "rate", "done", "_fgen")

    def __init__(self, fid: int, links: tuple[Link, ...], size: float, done):
        self.fid = fid
        self.links = links
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done
        #: Generation stamp marking this flow frozen during progressive
        #: filling (cheaper than a per-recompute set).
        self._fgen = 0


class FlowNetwork:
    """Manages all active flows and their max-min fair rates."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        # dict-as-ordered-set: iteration in flow-arrival order keeps float
        # accumulation deterministic across identical runs.
        self._flows: dict[Flow, None] = {}
        self._fid = itertools.count()
        self._last_update = 0.0
        self._timer_generation = 0
        self._rr_counter = 0
        #: Total bytes delivered, for conservation checks in tests.
        self.bytes_delivered = 0.0

    # -- public API --------------------------------------------------------

    def transfer(self, size: float, links: tuple[Link, ...],
                 parent_span=None) -> Event:
        """Start a transfer of ``size`` bytes over ``links``.

        Returns an event that fires when the last byte is delivered. A
        zero-size transfer completes immediately (still via the event
        loop, so ordering stays deterministic).
        """
        done = Event(self.env)
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        if size == 0 or not links:
            done.succeed()
            return done
        tracer = _trace.TRACER
        if tracer is not None:
            span = tracer.start(
                "net.transfer", self.env.now, parent=parent_span,
                bytes=size, route="+".join(link.name for link in links),
            )
            # Spans close when the last byte lands: callbacks run at the
            # completion event's fire time, so env.now is the finish time.
            done.callbacks.append(
                lambda _ev: tracer.finish(span, self.env.now)
            )
        self._advance()
        flow = Flow(next(self._fid), tuple(links), size, done)
        self._flows[flow] = None
        for link in flow.links:
            link.flows[flow] = None
        self._reschedule()
        return done

    def transfer_batch(self, requests) -> None:
        """Start many transfers arriving at the current instant at once.

        ``requests`` is a sequence of ``(size, links, on_done)`` where
        ``on_done`` is a no-argument callable invoked when the last byte
        lands. Equivalent to N :meth:`transfer` calls at the same
        timestamp — rates are recomputed from scratch on every arrival,
        so only the final recomputation matters — but performs a single
        advance + progressive-filling pass + timer rearm for the batch.
        """
        self._advance()
        added = False
        for size, links, on_done in requests:
            if size < 0:
                raise ValueError(f"negative transfer size: {size}")
            if size == 0 or not links:
                # Completes immediately; deliver on the next tick like the
                # event path's immediately-succeeded Event.
                self.env.defer(lambda _ev, cb=on_done: cb())
                continue
            flow = Flow(next(self._fid), tuple(links), size, on_done)
            self._flows[flow] = None
            for link in flow.links:
                link.flows[flow] = None
            added = True
        if added:
            self._reschedule()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Progress all flows to ``env.now`` at their current rates."""
        dt = self.env.now - self._last_update
        if dt > 0:
            for flow in self._flows:
                moved = flow.rate * dt
                flow.remaining -= moved
                self.bytes_delivered += moved
        self._last_update = self.env.now

    def _recompute_rates(self) -> None:
        """Max-min progressive filling over all links and flows.

        All iteration happens in flow-arrival / link-discovery order so
        tie-breaking and float accumulation are identical across runs.
        """
        flows = self._flows
        if len(flows) == 1:
            # Degenerate progressive filling: the lone flow gets the
            # path's minimum capacity — the same value the general loop
            # assigns, skipping the state build. Common in baseline runs.
            flow = next(iter(flows))
            rate = math.inf
            for link in flow.links:
                if link.capacity < rate:
                    rate = link.capacity
            flow.rate = rate
            return
        # Per-link residual capacity / unfrozen flow count live directly on
        # the Link objects, validity-stamped with a recompute generation —
        # no per-recompute dict, no hashing. Links are discovered in
        # flow-arrival order for determinism, exactly as the dict insertion
        # order used to provide; frozen flows carry the same stamp.
        self._rr_counter += 1
        gen = self._rr_counter
        links: list[Link] = []
        for flow in flows:
            flow.rate = 0.0
            for link in flow.links:
                if link._rr_gen != gen:
                    link._rr_gen = gen
                    link._residual = link.capacity
                    link._live = 1
                    links.append(link)
                else:
                    link._live += 1
        while True:
            best_share = math.inf
            best_link: Link | None = None
            for link in links:
                live = link._live
                if live <= 0:
                    continue
                share = link._residual / live
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Clamp against float noise: a chain of share subtractions can
            # leave a residual a few ULPs below zero, which would otherwise
            # produce negative rates and a zero-delay timer spin.
            best_share = max(0.0, best_share)
            for flow in best_link.flows:  # fid order via dict insertion
                if flow._fgen == gen:
                    continue
                flow.rate = best_share
                flow._fgen = gen
                for link in flow.links:
                    link._residual = max(0.0, link._residual - best_share)
                    link._live -= 1

    def _reschedule(self) -> None:
        """Recompute rates and arm a timer for the next flow completion."""
        self._recompute_rates()
        self._timer_generation += 1
        generation = self._timer_generation
        if not self._flows:
            return
        next_done = math.inf
        for f in self._flows:
            rate = f.rate
            if rate > 0:
                t = f.remaining / rate
                if t < next_done:
                    next_done = t
        if next_done is math.inf:  # pragma: no cover - defensive; capacity > 0
            raise RuntimeError("active flows but no positive rates")
        timer = self.env.timeout(max(0.0, next_done))
        timer.callbacks.append(lambda _ev, g=generation: self._on_timer(g))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer: flows changed since it was armed
        self._advance()
        # Sub-millibyte residues are pure float error; transfers are whole
        # bytes, so anything below this is complete.
        eps = 1e-3
        finished = [f for f in self._flows if f.remaining <= eps]
        for flow in finished:
            self.bytes_delivered += max(0.0, flow.remaining)
            flow.remaining = 0.0
            self._flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
        # Deliver completions only after every finished flow is detached,
        # so a callback that starts new transfers sees consistent state.
        for flow in finished:
            done = flow.done
            if type(done) is Event:
                done.succeed()
            else:
                done()
        self._reschedule()
