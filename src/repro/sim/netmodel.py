"""Fluid-flow network with global max-min fair sharing.

The paper's testbed interconnect is 1 GB/s Ethernet shared by every
client and server NIC; network contention is one of the root causes of
I/O interference it cites (Bhatele et al., Yildiz et al.). We model each
NIC as a :class:`Link` with fixed capacity and every bulk transfer as a
:class:`Flow` traversing a path of links. Rates follow the classic
*max-min progressive filling* allocation, recomputed whenever a flow
arrives or departs; between recomputations each flow progresses linearly,
so completions can be scheduled exactly.

This fluid model skips per-packet behaviour but preserves what matters to
the interference study: bandwidth sharing, bottleneck shifting and
transfer-time inflation under contention.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.obs import trace as _trace
from repro.sim.engine import Environment, Event

__all__ = ["Link", "Flow", "FlowNetwork"]


@dataclass
class Link:
    """A network link (NIC) with a fixed capacity in bytes/second."""

    name: str
    capacity: float

    #: Flows currently traversing this link, keyed in arrival (fid) order —
    #: a dict-as-ordered-set so every iteration is deterministic (managed
    #: by FlowNetwork).
    flows: dict["Flow", None] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name}: capacity must be positive")

    def __hash__(self) -> int:  # identity hashing; links are unique objects
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated to flows."""
        return sum(f.rate for f in self.flows) / self.capacity


class Flow:
    """One in-progress bulk transfer across a path of links."""

    __slots__ = ("fid", "links", "remaining", "rate", "done")

    def __init__(self, fid: int, links: tuple[Link, ...], size: float, done: Event):
        self.fid = fid
        self.links = links
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done


class FlowNetwork:
    """Manages all active flows and their max-min fair rates."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        # dict-as-ordered-set: iteration in flow-arrival order keeps float
        # accumulation deterministic across identical runs.
        self._flows: dict[Flow, None] = {}
        self._fid = itertools.count()
        self._last_update = 0.0
        self._timer_generation = 0
        #: Total bytes delivered, for conservation checks in tests.
        self.bytes_delivered = 0.0

    # -- public API --------------------------------------------------------

    def transfer(self, size: float, links: tuple[Link, ...],
                 parent_span=None) -> Event:
        """Start a transfer of ``size`` bytes over ``links``.

        Returns an event that fires when the last byte is delivered. A
        zero-size transfer completes immediately (still via the event
        loop, so ordering stays deterministic).
        """
        done = Event(self.env)
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        if size == 0 or not links:
            done.succeed()
            return done
        tracer = _trace.TRACER
        if tracer is not None:
            span = tracer.start(
                "net.transfer", self.env.now, parent=parent_span,
                bytes=size, route="+".join(link.name for link in links),
            )
            # Spans close when the last byte lands: callbacks run at the
            # completion event's fire time, so env.now is the finish time.
            done.callbacks.append(
                lambda _ev: tracer.finish(span, self.env.now)
            )
        self._advance()
        flow = Flow(next(self._fid), tuple(links), size, done)
        self._flows[flow] = None
        for link in flow.links:
            link.flows[flow] = None
        self._reschedule()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Progress all flows to ``env.now`` at their current rates."""
        dt = self.env.now - self._last_update
        if dt > 0:
            for flow in self._flows:
                moved = flow.rate * dt
                flow.remaining -= moved
                self.bytes_delivered += moved
        self._last_update = self.env.now

    def _recompute_rates(self) -> None:
        """Max-min progressive filling over all links and flows.

        All iteration happens in flow-arrival / link-discovery order so
        tie-breaking and float accumulation are identical across runs.
        """
        # Per-link [residual capacity, unfrozen flow count], discovered in
        # flow-arrival order for determinism.
        state: dict[Link, list[float]] = {}
        for flow in self._flows:
            flow.rate = 0.0
            for link in flow.links:
                entry = state.get(link)
                if entry is None:
                    state[link] = [link.capacity, 1.0]
                else:
                    entry[1] += 1.0
        frozen: set[Flow] = set()
        while True:
            best_share = math.inf
            best_link: Link | None = None
            for link, (residual, live) in state.items():
                if live <= 0:
                    continue
                share = residual / live
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Clamp against float noise: a chain of share subtractions can
            # leave a residual a few ULPs below zero, which would otherwise
            # produce negative rates and a zero-delay timer spin.
            best_share = max(0.0, best_share)
            for flow in best_link.flows:  # fid order via dict insertion
                if flow in frozen:
                    continue
                flow.rate = best_share
                frozen.add(flow)
                for link in flow.links:
                    entry = state[link]
                    entry[0] = max(0.0, entry[0] - best_share)
                    entry[1] -= 1.0

    def _reschedule(self) -> None:
        """Recompute rates and arm a timer for the next flow completion."""
        self._recompute_rates()
        self._timer_generation += 1
        generation = self._timer_generation
        if not self._flows:
            return
        candidates = [f.remaining / f.rate for f in self._flows if f.rate > 0]
        if not candidates:  # pragma: no cover - defensive; capacity > 0
            raise RuntimeError("active flows but no positive rates")
        next_done = min(candidates)
        timer = self.env.timeout(max(0.0, next_done))
        timer.callbacks.append(lambda _ev, g=generation: self._on_timer(g))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer: flows changed since it was armed
        self._advance()
        # Sub-millibyte residues are pure float error; transfers are whole
        # bytes, so anything below this is complete.
        eps = 1e-3
        finished = [f for f in self._flows if f.remaining <= eps]
        for flow in finished:
            self.bytes_delivered += max(0.0, flow.remaining)
            flow.remaining = 0.0
            self._flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
            flow.done.succeed()
        self._reschedule()
