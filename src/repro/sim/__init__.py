"""Discrete-event Lustre-like parallel file system simulator.

This subpackage is the substrate substitute for the paper's 11-node Lustre
2.12.8 cluster (see DESIGN.md §2). It provides:

* :mod:`repro.sim.engine` — a minimal SimPy-like coroutine event kernel
  with deterministic ordering;
* :mod:`repro.sim.resources` — semaphores, barriers and stores built on
  the kernel;
* :mod:`repro.sim.netmodel` — a max-min fair-share fluid-flow network;
* :mod:`repro.sim.disk` — a rotational-disk service model plus
  ``/proc/diskstats``-style counters;
* :mod:`repro.sim.scheduler` — an elevator/merging block scheduler;
* :mod:`repro.sim.cache` — an OSS write-back page cache with dirty
  throttling;
* :mod:`repro.sim.ost` / :mod:`repro.sim.mds` — object storage targets and
  the metadata server;
* :mod:`repro.sim.filesystem` — namespace and striping;
* :mod:`repro.sim.client` — the Lustre-like client (striped RPCs, RPC
  windows, metadata calls);
* :mod:`repro.sim.cluster` — configuration and wiring of a full cluster;
* :mod:`repro.sim.shard` — the sharded executor: server domains
  partitioned across worker processes under a deterministic
  conservative sync protocol.
"""

from repro.sim.engine import Environment, Event, Process, Timeout, AllOf
from repro.sim.cluster import Cluster, ClusterConfig

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "Cluster",
    "ClusterConfig",
    "execute_run_sharded",
]


def __getattr__(name):
    # Lazy: repro.sim.shard imports the experiments layer, which imports
    # repro.sim — eager re-export here would be a cycle.
    if name == "execute_run_sharded":
        from repro.sim.shard import execute_run_sharded

        return execute_run_sharded
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
