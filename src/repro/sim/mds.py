"""Metadata server: service threads, directory locks and a journal device.

Models the Lustre MDS/MDT pair on the testbed's combined MGS/MDS node.
Each metadata operation occupies one of a fixed pool of service threads
for an op-type-specific CPU time; namespace mutations additionally
acquire their parent directory's lock (serialising shared-directory
creates, the ``mdtest-hard`` pain point) and commit a small journal write
to the MDT block device, which is what couples metadata latency to MDT
disk load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.records import OpType, ServerId, ServerKind
from repro.common.units import KIB
from repro.obs import trace as _trace
from repro.sim.disk import DiskParams, FlashParams, make_disk_model
from repro.sim.engine import Environment, Process
from repro.sim.netmodel import Link
from repro.sim.resources import Semaphore
from repro.sim.scheduler import BlockDevice

__all__ = ["MDSParams", "MDS"]


@dataclass(frozen=True)
class MDSParams:
    """Service characteristics of the metadata server."""

    service_threads: int = 8
    #: Per-op CPU service time in seconds.
    service_times: dict[OpType, float] = field(
        default_factory=lambda: {
            OpType.CREATE: 300e-6,
            OpType.OPEN: 150e-6,
            OpType.CLOSE: 50e-6,
            OpType.STAT: 100e-6,
            OpType.UNLINK: 250e-6,
            OpType.MKDIR: 300e-6,
        }
    )
    journal_write_bytes: int = 4 * KIB
    #: Transaction-commit latency paid by mutating ops while holding their
    #: service thread (jbd2-style commit wait). This is what couples heavy
    #: create storms to *all* metadata latency: committing creates pin
    #: service threads, and unrelated stats/opens queue behind them.
    journal_commit_time: float = 400e-6

    def service_time(self, op: OpType) -> float:
        try:
            return self.service_times[op]
        except KeyError:
            raise ValueError(f"{op} is not a metadata operation") from None


#: Metadata ops that mutate the namespace (need the parent-dir lock and a
#: journal commit).
_MUTATING = frozenset({OpType.CREATE, OpType.UNLINK, OpType.MKDIR})


class MDS:
    """The metadata server plus its MDT block device."""

    def __init__(
        self,
        env: Environment,
        link: Link,
        params: MDSParams | None = None,
        disk_params: "DiskParams | FlashParams | None" = None,
    ) -> None:
        self.env = env
        self.link = link
        self.params = params or MDSParams()
        self.server_id = ServerId(ServerKind.MDT, 0)
        self.device = BlockDevice(
            env, make_disk_model(disk_params or DiskParams()),
            name=str(self.server_id)
        )
        self._threads = Semaphore(env, self.params.service_threads)
        self._dir_locks: dict[str, Semaphore] = {}
        self._journal_offset = 0
        #: Completed metadata ops, for monitors/tests.
        self.ops_completed = 0

    def _dir_lock(self, parent: str) -> Semaphore:
        lock = self._dir_locks.get(parent)
        if lock is None:
            lock = Semaphore(self.env, 1)
            self._dir_locks[parent] = lock
        return lock

    def _journal_extent(self) -> int:
        """Sequential journal writes: bump offset, wrap at 128 MiB."""
        off = self._journal_offset
        self._journal_offset += self.params.journal_write_bytes
        if self._journal_offset >= 128 * 1024 * KIB:
            self._journal_offset = 0
        return off

    def handle(self, op: OpType, parent_dir: str, parent_span=None) -> Process:
        """Serve one metadata op; the returned process ends at completion."""
        return self.env.process(self._handle(op, parent_dir, parent_span))

    def _handle(self, op: OpType, parent_dir: str, parent_span=None):
        service = self.params.service_time(op)
        mutating = op in _MUTATING
        tracer = _trace.TRACER
        span = tracer.start(
            "mds.op", self.env.now, parent=parent_span,
            server=str(self.server_id), op=op.value, dir=parent_dir,
        ) if tracer is not None else None
        lock = self._dir_lock(parent_dir) if mutating else None
        if lock is not None:
            yield lock.acquire()
        try:
            yield self._threads.acquire()
            try:
                yield self.env.timeout(service)
                if mutating:
                    yield self.device.submit_bytes(
                        self._journal_extent(),
                        self.params.journal_write_bytes,
                        is_write=True,
                    )
                    yield self.env.timeout(self.params.journal_commit_time)
            finally:
                self._threads.release()
        finally:
            if lock is not None:
                lock.release()
        self.ops_completed += 1
        if span is not None:
            tracer.finish(span, self.env.now)

    def handle_fast(self, op: OpType, parent_dir: str, on_done) -> None:
        """Callback-chain twin of :meth:`handle` for the batch backend.

        Lock/thread acquisition, service, journal write and commit run at
        the same simulated instants as the generator path; ``on_done()``
        runs at the completion tick.
        """
        service = self.params.service_time(op)
        mutating = op in _MUTATING
        tracer = _trace.TRACER
        span = tracer.start(
            "mds.op", self.env.now, server=str(self.server_id),
            op=op.value, dir=parent_dir,
        ) if tracer is not None else None
        lock = self._dir_lock(parent_dir) if mutating else None

        def _locked() -> None:
            if self._threads.try_acquire():
                self.env.after(service, _serviced)
            else:
                self._threads.acquire().callbacks.append(
                    lambda _ev: self.env.after(service, _serviced)
                )

        def _serviced(_ev) -> None:
            if mutating:
                self.device.submit_bytes(
                    self._journal_extent(),
                    self.params.journal_write_bytes,
                    is_write=True,
                ).callbacks.append(
                    lambda _ev: self.env.after(
                        self.params.journal_commit_time, lambda _ev: _finish()
                    )
                )
            else:
                _finish()

        def _finish() -> None:
            self._threads.release()
            if lock is not None:
                lock.release()
            self.ops_completed += 1
            if span is not None:
                t = _trace.TRACER
                if t is not None:
                    t.finish(span, self.env.now)
            on_done()

        if lock is None or lock.try_acquire():
            _locked()
        else:
            lock.acquire().callbacks.append(lambda _ev: _locked())

    def queue_depth(self) -> int:
        return self._threads.queued + (self._threads.capacity - self._threads.available)
