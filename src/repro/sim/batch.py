"""Batched request fast path: the ``batch`` sim backend.

The event backend drives every striped RPC through its own generator
``Process`` — roughly a dozen engine events and generator resumptions per
1 MiB write. Profiling shows this Python machinery, not the model
arithmetic, dominates sweep wall-clock. This module replaces it for whole
client operations: a :class:`BatchRequest` carries the op's striped
pieces as parallel numpy arrays, and a :class:`_DataOpDriver` walks them
through flat callback chains — RPC-window grant, one shared RPC-latency
timeout per granted group, batched network flows
(:meth:`FlowNetwork.transfer_batch`), inline OST service
(:meth:`OST.service_batch` / ``serve_fast``) and MDS service
(:meth:`MDS.handle_fast`) — firing one completion event per *operation*
instead of one per request.

Equivalence contract (validated in ``tests/sim/test_batch_backend.py``
and ``tests/experiments``): every **primitive timing event** — RPC
latency timeouts, network flow completions, block-device service
timeouts, cache memcpy timeouts, QoS grants — is issued at the identical
simulated instant as on the event path; only the same-timestamp
bookkeeping ticks between them (process inits, semaphore grant events,
AllOf conjunctions) disappear. State mutations therefore happen at the
same timestamps in the same relative order, and per-window vectors,
labels and server samples match the event backend to float precision.
There is no per-request service noise to draw — the simulator's only RNG
sits in workload op generation (``derive_rng``), which is backend
independent; if service noise is ever added it must be drawn in array
order from a ``derive_rng`` stream to keep this contract (DESIGN.md §9).

The event backend remains authoritative for anything that needs
per-request observability: per-RPC trace spans, and future fault hooks
that drop or delay individual requests.
"""

from __future__ import annotations

import numpy as np

from repro.common.records import OpType, ServerId
from repro.obs import trace as _trace
from repro.sim.client import ClientSession
from repro.sim.engine import Event

__all__ = ["BatchRequest", "BatchSession"]


class BatchRequest:
    """One homogeneous burst of striped RPC pieces from a single client op.

    Pieces appear in the same order the event backend spawns its per-RPC
    processes (``map_extent`` order, then ``max_rpc_bytes`` splits) as
    four parallel columns; the public ``ost_idx``/``object_id``/
    ``obj_off``/``nbytes`` numpy views are materialised on first access
    (the driver's hot loops walk the raw int columns instead, because the
    common case is a one- or two-piece burst).
    """

    __slots__ = ("op", "path", "offset", "size", "_ost", "_oid", "_ooff",
                 "_nb", "_arrays")

    def __init__(self, op: OpType, path: str, offset: int, size: int,
                 pieces: list[tuple[int, int, int, int]]) -> None:
        self.op = op
        self.path = path
        self.offset = offset
        self.size = size
        # Columns are plain int lists for the driver's hot loops (most ops
        # are a single ≤1 MiB piece, where per-op array construction costs
        # more than it saves); the numpy views are materialised lazily.
        self._ost = [p[0] for p in pieces]
        self._oid = [p[1] for p in pieces]
        self._ooff = [p[2] for p in pieces]
        self._nb = [p[3] for p in pieces]
        self._arrays = None

    def _materialise(self):
        n = len(self._ost)
        self._arrays = (
            np.fromiter(self._ost, dtype=np.int64, count=n),
            np.fromiter(self._oid, dtype=np.int64, count=n),
            np.fromiter(self._ooff, dtype=np.int64, count=n),
            np.fromiter(self._nb, dtype=np.int64, count=n),
        )
        return self._arrays

    @property
    def ost_idx(self) -> np.ndarray:
        return (self._arrays or self._materialise())[0]

    @property
    def object_id(self) -> np.ndarray:
        return (self._arrays or self._materialise())[1]

    @property
    def obj_off(self) -> np.ndarray:
        return (self._arrays or self._materialise())[2]

    @property
    def nbytes(self) -> np.ndarray:
        return (self._arrays or self._materialise())[3]

    def __len__(self) -> int:
        return len(self._ost)

    @classmethod
    def from_extent(cls, f, op: OpType, path: str, offset: int, size: int,
                    max_rpc: int) -> "BatchRequest":
        """Split a logical extent into ≤``max_rpc``-byte striped pieces."""
        req = cls.__new__(cls)
        req.op = op
        req.path = path
        req.offset = offset
        req.size = size
        ost = req._ost = []
        oid = req._oid = []
        ooff = req._ooff = []
        nb = req._nb = []
        req._arrays = None
        for ost_idx, object_id, obj_off, nbytes in f.layout.map_extent(offset, size):
            sent = 0
            while sent < nbytes:
                piece = min(max_rpc, nbytes - sent)
                ost.append(ost_idx)
                oid.append(object_id)
                ooff.append(obj_off + sent)
                nb.append(piece)
                sent += piece
        return req


class _DataOpDriver:
    """Walks one data op's pieces through the batched callback chain."""

    __slots__ = ("session", "req", "file", "start", "done", "span",
                 "is_write", "remaining", "touched", "keep_record")

    def __init__(self, session: "BatchSession", req: BatchRequest, f,
                 start: float, done: Event, span) -> None:
        self.session = session
        self.req = req
        self.file = f
        self.start = start
        self.done = done
        self.span = span
        self.is_write = req.op is OpType.WRITE
        self.remaining = len(req)
        self.touched: dict[ServerId, int] = {}
        # Noise jobs write into a NullCollector; building IORecords and
        # per-server byte tallies for them is pure wall-clock waste.
        self.keep_record = session.collector.keeps_records or span is not None

    def begin(self) -> None:
        req = self.req
        node = self.session.node
        cluster = node.cluster
        touched = self.touched
        keep = self.keep_record
        n = len(req)
        if n == 0:
            self._finish()
            return
        ost_idx = req._ost
        nbytes = req._nb
        # Group pieces whose RPC-window credit is available right now;
        # they share one rpc_latency timeout. Queued pieces proceed solo
        # when their FIFO grant fires (the same instants the event
        # backend's per-piece acquire events would fire).
        immediate: list[int] = []
        for i in range(n):
            oi = ost_idx[i]
            if keep:
                sid = cluster.osts[oi].server_id
                touched[sid] = touched.get(sid, 0) + nbytes[i]
            window = node.rpc_window(oi)
            if window.try_acquire():
                immediate.append(i)
            else:
                window.acquire().callbacks.append(
                    lambda _ev, i=i: self._granted_one(i)
                )
        if immediate:
            self._granted_group(tuple(immediate))

    def _granted_one(self, i: int) -> None:
        """A queued piece's FIFO grant fired: pay the RPC latency and
        dispatch solo (the sharded driver posts to the router instead)."""
        self.session.env.after(
            self.session.node.params.rpc_latency,
            lambda _ev: self._dispatch((i,)),
        )

    def _granted_group(self, group: tuple[int, ...]) -> None:
        """Pieces granted at begin-time share one rpc_latency timeout."""
        self.session.env.after(
            self.session.node.params.rpc_latency,
            lambda _ev: self._dispatch(group),
        )

    def _dispatch(self, idxs) -> None:
        """Pieces past the RPC latency: writes enter the network now and
        hit OST service at each flow's completion; reads hit OST service
        now and cross the network once served."""
        session = self.session
        cluster = session.node.cluster
        req = self.req
        if self.is_write:
            # Payload crosses the network first; OST service starts at
            # each flow's completion tick.
            link = session.node.link
            cluster.net.transfer_batch([
                (
                    req._nb[i],
                    cluster.route(link, cluster.osts[req._ost[i]].oss_link),
                    (lambda i=i: self._write_arrived(i)),
                )
                for i in idxs
            ])
            return
        # Reads: OST service starts now; group by OST in first-appearance
        # order so each server sees one homogeneous burst.
        by_ost: dict[int, list[int]] = {}
        for i in idxs:
            by_ost.setdefault(req._ost[i], []).append(i)
        for oi, group in by_ost.items():
            ost = cluster.osts[oi]
            ost.service_batch(
                [req._oid[i] for i in group],
                [req._ooff[i] for i in group],
                [req._nb[i] for i in group],
                session.job,
                False,
                lambda k, group=tuple(group): self._read_served(group[k]),
            )

    def _write_arrived(self, i: int) -> None:
        req = self.req
        cluster = self.session.node.cluster
        ost = cluster.osts[req._ost[i]]
        ost.serve_fast(
            req._oid[i], req._ooff[i], req._nb[i],
            self.session.job, True, lambda: self._piece_done(i),
        )

    def _read_served(self, i: int) -> None:
        req = self.req
        session = self.session
        cluster = session.node.cluster
        ost = cluster.osts[req._ost[i]]
        cluster.net.transfer_batch([
            (
                req._nb[i],
                cluster.route(session.node.link, ost.oss_link),
                (lambda: self._piece_done(i)),
            )
        ])

    def _piece_done(self, i: int) -> None:
        session = self.session
        session.node.rpc_window(self.req._ost[i]).release()
        self.remaining -= 1
        if self.remaining == 0:
            self._finish()

    def _finish(self) -> None:
        session = self.session
        req = self.req
        if self.is_write:
            f = self.file
            f.size = max(f.size, req.offset + req.size)
        if self.keep_record:
            rec = session._record(
                req.op, req.path, req.offset, req.size, self.start,
                tuple(sorted(self.touched)),
            )
            if self.span is not None:
                tracer = _trace.TRACER
                if tracer is not None:
                    tracer.finish(self.span, session.env.now, op_id=rec.op_id)
        else:
            session._op_id += 1
        self.done.succeed()


class BatchSession(ClientSession):
    """A :class:`ClientSession` whose ops run on the batched fast path.

    The public generator API is inherited unchanged (rank bodies are
    backend-agnostic); only the internal op drivers differ — each yields
    a single completion event fed by callback chains instead of an
    ``AllOf`` over per-RPC processes.
    """

    #: Driver walking one data op's pieces; the sharded root cluster
    #: substitutes a router-posting driver (repro.sim.shard) here.
    driver_class = _DataOpDriver

    #: Extra attributes stamped onto every op span; the sharded session
    #: marks its spans ``sharded=True`` so a merged multi-domain trace
    #: distinguishes root-posted ops from legacy in-process ones.
    span_attrs: dict = {}

    def _data_op(self, op: OpType, path: str, offset: int, size: int):
        yield self._data_fast(op, path, offset, size)

    def _data_fast(self, op: OpType, path: str, offset: int, size: int) -> Event:
        cluster = self.node.cluster
        f = cluster.fs.lookup(path)
        start = self.env.now
        tracer = _trace.TRACER
        span = tracer.start(
            f"client.{op.value}", start, job=self.job, rank=self.rank,
            path=path, offset=offset, size=size, batched=True,
            **self.span_attrs,
        ) if tracer is not None else None
        req = BatchRequest.from_extent(f, op, path, offset, size,
                                       self.node.params.max_rpc_bytes)
        done = Event(self.env)
        self.driver_class(self, req, f, start, done, span).begin()
        return done

    def _meta_op(self, op: OpType, path: str, parent: str):
        yield self._meta_fast(op, path, parent)

    def _meta_fast(self, op: OpType, path: str, parent: str) -> Event:
        node = self.node
        cluster = node.cluster
        env = self.env
        start = env.now
        tracer = _trace.TRACER
        span = tracer.start(
            f"client.{op.value}", start, job=self.job, rank=self.rank,
            path=path, batched=True, **self.span_attrs,
        ) if tracer is not None else None
        done = Event(env)

        keep = self.collector.keeps_records or span is not None

        def _served() -> None:
            node._mds_slots.release()
            if keep:
                rec = self._record(op, path, 0, 0, start, (cluster.mds.server_id,))
                if span is not None:
                    t = _trace.TRACER
                    if t is not None:
                        t.finish(span, env.now, op_id=rec.op_id)
            else:
                self._op_id += 1
            done.succeed()

        def _granted() -> None:
            env.after(
                node.params.rpc_latency,
                lambda _ev: cluster.mds.handle_fast(op, parent, _served),
            )

        if node._mds_slots.try_acquire():
            _granted()
        else:
            node._mds_slots.acquire().callbacks.append(lambda _ev: _granted())
        return done
