"""OSS write-back page cache with dirty throttling and readahead.

This single component produces the asymmetry at the heart of the paper's
Table I: *reads* must reach the rotational disk and therefore interfere
with each other through seeks and queueing, while *writes* complete into
server memory and only become disk-bound once dirty pages exceed the
throttle limit — at which point writers block behind the background
flusher and small writers (e.g. ``mdtest-hard``) can be crushed by bulk
write interference.

The model mirrors Linux semantics loosely: a background flusher drains
dirty extents to the block device whenever any exist; writers are
throttled (blocked) while dirty bytes exceed ``dirty_limit_fraction`` of
the cache. Reads consult a chunk-granular LRU of cached data and extend
misses by a readahead window.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

from repro.common.units import KIB, MIB
from repro.sim.engine import Environment, Event
from repro.sim.scheduler import BlockDevice

__all__ = ["CacheParams", "PageCache"]


@dataclass(frozen=True)
class CacheParams:
    """Sizing and speed of one server's page cache."""

    capacity_bytes: int = 1024 * MIB
    #: Writers block while dirty bytes exceed this fraction of capacity.
    dirty_limit_fraction: float = 0.4
    #: Cache/page-copy bandwidth (memory speed), bytes/s.
    memcpy_bandwidth: float = 5 * 1024 * MIB
    #: Granularity of the cached-chunk LRU.
    chunk_bytes: int = 256 * KIB
    #: Extra bytes fetched past a *sequential* read miss. Generous, like
    #: Lustre's per-file readahead (tens of MiB): large sequential reads
    #: must amortise the seeks that competing streams and writeback turns
    #: force on them, or every big read degrades ~2x under any write
    #: noise, which Table I rules out. Random reads get no readahead —
    #: sequentiality is detected per object, as Linux/Lustre do.
    readahead_bytes: int = 4 * MIB
    #: Largest extent handed to the block layer per flush I/O.
    flush_extent_bytes: int = 1 * MIB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.chunk_bytes <= 0:
            raise ValueError("cache capacity and chunk size must be positive")
        if not 0.0 < self.dirty_limit_fraction <= 1.0:
            raise ValueError("dirty_limit_fraction must be in (0, 1]")

    @property
    def dirty_limit_bytes(self) -> int:
        return int(self.capacity_bytes * self.dirty_limit_fraction)


class PageCache:
    """Write-back cache in front of one :class:`BlockDevice`.

    ``resolve`` maps a logical ``(object_id, offset, size)`` extent to a
    list of ``(device_byte_offset, nbytes)`` segments (supplied by the OST,
    which owns the extent allocator).
    """

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        params: CacheParams,
        resolve: Callable[[int, int, int], list[tuple[int, int]]],
    ) -> None:
        self.env = env
        self.device = device
        self.params = params
        self.resolve = resolve
        self.dirty_bytes = 0
        #: (object_id, offset, size) extents awaiting flush, FIFO.
        self._dirty_extents: deque[tuple[int, int, int]] = deque()
        self._throttled: deque[tuple[Event, int]] = deque()
        self._flusher_running = False
        # Cached chunks, split by dirtiness so eviction never scans
        # unevictable (dirty) entries: the clean side is an LRU
        # (OrderedDict, oldest first), the dirty side a plain set-like
        # dict. A chunk lives in exactly one of the two.
        self._clean: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._dirty_chunks: dict[tuple[int, int], None] = {}
        #: Per-object next expected sequential offset (readahead gating).
        self._next_offset: dict[int, int] = {}
        # Eviction threshold, fixed at construction (params are frozen).
        self._max_chunks = max(1, params.capacity_bytes // params.chunk_bytes)
        # Counters for tests and monitors.
        self.read_hits = 0
        self.read_misses = 0
        self.throttle_events = 0

    @property
    def cached_chunk_count(self) -> int:
        return len(self._clean) + len(self._dirty_chunks)

    @property
    def dirty_chunk_count(self) -> int:
        return len(self._dirty_chunks)

    # -- helpers -------------------------------------------------------------

    def _chunk_range(self, object_id: int, offset: int, size: int):
        cb = self.params.chunk_bytes
        first = offset // cb
        last = (offset + max(1, size) - 1) // cb
        return ((object_id, c) for c in range(first, last + 1))

    def _touch_chunks(self, object_id: int, offset: int, size: int, dirty: bool) -> None:
        # The chunk loop is inlined (no _chunk_range generator): this runs
        # once per cache access and the generator frames were measurable.
        cb = self.params.chunk_bytes
        clean = self._clean
        dirty_chunks = self._dirty_chunks
        first = offset // cb
        last = (offset + max(1, size) - 1) // cb
        for c in range(first, last + 1):
            key = (object_id, c)
            if key in dirty_chunks:
                continue  # dirty dominates; stays until flushed
            clean.pop(key, None)
            if dirty:
                dirty_chunks[key] = None
            else:
                clean[key] = None  # move to MRU end
        self._evict()

    def _mark_clean(self, object_id: int, offset: int, size: int) -> None:
        """Clear the dirty flag after a flush (keeps chunks cached)."""
        cb = self.params.chunk_bytes
        first = offset // cb
        last = (offset + max(1, size) - 1) // cb
        for c in range(first, last + 1):
            key = (object_id, c)
            if self._dirty_chunks.pop(key, False) is None:
                self._clean[key] = None
        self._evict()

    def _evict(self) -> None:
        max_chunks = self._max_chunks
        clean = self._clean
        dirty_count = len(self._dirty_chunks)
        while clean and dirty_count + len(clean) > max_chunks:
            clean.popitem(last=False)  # oldest clean chunk

    def _cached(self, object_id: int, offset: int, size: int) -> bool:
        return all(
            key in self._clean or key in self._dirty_chunks
            for key in self._chunk_range(object_id, offset, size)
        )

    def _memcpy_delay(self, size: int) -> float:
        return size / self.params.memcpy_bandwidth

    def prefill(self, object_id: int, offset: int, size: int) -> None:
        """Mark an extent resident (clean) without simulated I/O.

        Used when staging pre-existing data that would realistically be
        server-cache-warm at measurement start — e.g. the tiny files of
        ``mdtest-hard-read``, whose write phase immediately precedes the
        read phase in a real IO500 run. Subject to normal LRU eviction.
        """
        if size <= 0:
            raise ValueError(f"prefill size must be positive, got {size}")
        self._touch_chunks(object_id, offset, size, dirty=False)

    # -- write path ------------------------------------------------------------

    def write(self, object_id: int, offset: int, size: int):
        """Process generator: complete a write into the cache.

        Blocks while the cache is over its dirty limit (dirty throttling),
        then copies the payload and queues it for background flush.
        """
        if size <= 0:
            raise ValueError(f"write size must be positive, got {size}")
        if size > self.params.dirty_limit_bytes:
            raise ValueError(
                f"single write of {size} B exceeds the dirty limit "
                f"({self.params.dirty_limit_bytes} B); split at the RPC layer"
            )
        # Admission is strictly FIFO: once any writer is throttled, later
        # writers queue behind it even if they would fit in the remaining
        # slack. This mirrors balance_dirty_pages(), which pauses every
        # writer above the dirty limit regardless of write size — and it
        # is what lets bulk write noise crush small writers (the paper's
        # 26x/41x mdt-hard-write cells in Table I).
        if self._throttled or self.dirty_bytes + size > self.params.dirty_limit_bytes:
            self.throttle_events += 1
            gate = Event(self.env)
            self._throttled.append((gate, size))
            self._kick_flusher()
            yield gate  # the releaser reserves our dirty pages for us
        else:
            self.dirty_bytes += size
        yield self.env.timeout(self._memcpy_delay(size))
        self._dirty_extents.append((object_id, offset, size))
        self._touch_chunks(object_id, offset, size, dirty=True)
        self._kick_flusher()

    def write_fast(self, object_id: int, offset: int, size: int, on_done) -> None:
        """Callback-chain twin of :meth:`write` for the batch backend.

        Performs the identical admission/throttle/commit mutations at the
        identical simulated instants — the only difference is that the
        chain runs through plain callbacks instead of a generator
        Process, so the intermediate events disappear. ``on_done()`` runs
        at the tick the payload copy completes.
        """
        if size <= 0:
            raise ValueError(f"write size must be positive, got {size}")
        if size > self.params.dirty_limit_bytes:
            raise ValueError(
                f"single write of {size} B exceeds the dirty limit "
                f"({self.params.dirty_limit_bytes} B); split at the RPC layer"
            )
        if self._throttled or self.dirty_bytes + size > self.params.dirty_limit_bytes:
            self.throttle_events += 1
            gate = Event(self.env)
            self._throttled.append((gate, size))
            self._kick_flusher()
            gate.callbacks.append(
                lambda _ev: self.env.after(
                    self._memcpy_delay(size),
                    lambda _ev: self._write_commit(object_id, offset, size, on_done),
                )
            )
        else:
            self.dirty_bytes += size
            self.env.after(
                self._memcpy_delay(size),
                lambda _ev: self._write_commit(object_id, offset, size, on_done),
            )

    def _write_commit(self, object_id: int, offset: int, size: int, on_done) -> None:
        self._dirty_extents.append((object_id, offset, size))
        self._touch_chunks(object_id, offset, size, dirty=True)
        self._kick_flusher()
        on_done()

    # -- read path --------------------------------------------------------------

    def _sequential(self, object_id: int, offset: int) -> bool:
        """Does this read continue the object's detected stream?

        Readahead only arms once a stream is established (second access
        onwards), so single-shot small-file reads (mdtest-hard) never
        trigger it. The forward window is generous because a client's
        concurrent RPCs land slightly out of order, and strided-but-
        monotonic scans (ior-hard) legitimately benefit from readahead.
        """
        expected = self._next_offset.get(object_id)
        if expected is None:
            return False
        lo = expected - self.params.chunk_bytes
        hi = expected + 2 * self.params.readahead_bytes
        return lo <= offset <= hi

    def read(self, object_id: int, offset: int, size: int):
        """Process generator: complete a read, from cache or disk."""
        if size <= 0:
            raise ValueError(f"read size must be positive, got {size}")
        sequential = self._sequential(object_id, offset)
        self._next_offset[object_id] = offset + size
        if self._cached(object_id, offset, size):
            self.read_hits += 1
            self._touch_chunks(object_id, offset, size, dirty=False)
            yield self.env.timeout(self._memcpy_delay(size))
            return
        self.read_misses += 1
        readahead = self.params.readahead_bytes if sequential else 0
        fetch_size = size + readahead
        segments = self.resolve(object_id, offset, fetch_size)
        done = [
            self.device.submit_bytes(dev_off, nbytes, is_write=False)
            for dev_off, nbytes in segments
        ]
        from repro.sim.engine import AllOf

        yield AllOf(self.env, done)
        self._touch_chunks(object_id, offset, fetch_size, dirty=False)
        yield self.env.timeout(self._memcpy_delay(size))

    def read_fast(self, object_id: int, offset: int, size: int, on_done) -> None:
        """Callback-chain twin of :meth:`read` for the batch backend.

        Hit/miss/readahead decisions and all chunk mutations happen at
        the same simulated instants as the generator path; ``on_done()``
        runs at the tick the payload copy completes.
        """
        if size <= 0:
            raise ValueError(f"read size must be positive, got {size}")
        sequential = self._sequential(object_id, offset)
        self._next_offset[object_id] = offset + size
        if self._cached(object_id, offset, size):
            self.read_hits += 1
            self._touch_chunks(object_id, offset, size, dirty=False)
            self.env.after(self._memcpy_delay(size), lambda _ev: on_done())
            return
        self.read_misses += 1
        readahead = self.params.readahead_bytes if sequential else 0
        fetch_size = size + readahead
        segments = self.resolve(object_id, offset, fetch_size)

        def _fetched() -> None:
            self._touch_chunks(object_id, offset, fetch_size, dirty=False)
            self.env.after(self._memcpy_delay(size), lambda _ev: on_done())

        self.device.submit_bytes_batch(segments, False, _fetched)

    # -- flusher -----------------------------------------------------------------

    def _kick_flusher(self) -> None:
        # Deferred a tick like the old flush Process's init event, so
        # every same-instant dirty append is visible to the first gather.
        if not self._flusher_running and (self._dirty_extents or self._throttled):
            self._flusher_running = True
            self.env.defer(self._flush_step)

    #: Flush I/Os kept in flight concurrently. Writeback keeps the device
    #: queue populated so contiguous dirty extents can merge at the block
    #: layer (and the elevator can order them) — one-at-a-time flushing
    #: would serialise writeback at zero queue depth, which no real
    #: flusher does.
    FLUSH_INFLIGHT = 4

    def _flush_units(self, object_id: int, offset: int, size: int):
        """Bounded flush extents of one dirty record."""
        flushed = 0
        while flushed < size:
            nbytes = min(self.params.flush_extent_bytes, size - flushed)
            yield (object_id, offset + flushed, nbytes)
            flushed += nbytes

    def _flush_step(self, _ev=None) -> None:
        """Gather/submit one writeback round; chains itself until clean.

        Callback twin of the old generator flush loop: the round's
        bookkeeping runs at the tick its last block I/O completes (the
        generator resumed via an ``AllOf`` one tick later at the same
        timestamp), and the next gather happens at that same instant.
        """
        if not self._dirty_extents:
            self._flusher_running = False
            return
        # Gather up to FLUSH_INFLIGHT flush units across dirty extents.
        batch: list[tuple[int, int, int]] = []
        records: list[tuple[int, int, int]] = []
        while self._dirty_extents and len(batch) < self.FLUSH_INFLIGHT:
            record = self._dirty_extents.popleft()
            records.append(record)
            batch.extend(self._flush_units(*record))
        extents = [
            seg
            for object_id, unit_offset, nbytes in batch
            for seg in self.resolve(object_id, unit_offset, nbytes)
        ]

        def _flushed() -> None:
            for _object_id, _unit_offset, nbytes in batch:
                self.dirty_bytes -= nbytes
            for record in records:
                self._mark_clean(*record)
            self._release_throttled()
            self._flush_step()

        self.device.submit_bytes_batch(extents, True, _flushed)

    def _release_throttled(self) -> None:
        while self._throttled:
            gate, size = self._throttled[0]
            if self.dirty_bytes + size > self.params.dirty_limit_bytes:
                break
            self._throttled.popleft()
            # Reserve on the waiter's behalf so admission stays atomic and
            # strictly FIFO.
            self.dirty_bytes += size
            gate.succeed()
