"""Cluster configuration and wiring.

Builds the full simulated testbed: client nodes with NICs, OSS nodes (each
NIC shared by its OSTs), the MDS/MDT, the fair-share network fabric, the
shared namespace and the trace collector. Defaults replicate the paper's
evaluation cluster: 7 Lustre clients, 3 OSS x 2 OST, one combined MGS/MDS,
1 GB/s links and 7200 RPM SATA disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.records import ServerId, ServerKind
from repro.common.units import MIB
from repro.sim.cache import CacheParams
from repro.sim.client import ClientNode, ClientParams, ClientSession, TraceCollector
from repro.sim.disk import DiskParams, FlashParams
from repro.sim.engine import Environment
from repro.sim.filesystem import FileSystem
from repro.sim.mds import MDS, MDSParams
from repro.sim.netmodel import FlowNetwork, Link
from repro.sim.ost import OST

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and speeds of the simulated cluster (defaults = the paper's)."""

    n_client_nodes: int = 7
    n_oss: int = 3
    osts_per_oss: int = 2
    #: NIC bandwidth in bytes/s ("1 GB/s network interface").
    net_bandwidth: float = 1e9
    #: Aggregate fabric capacity in bytes/s, or None for a non-blocking
    #: switch. When set, every client<->server flow also traverses a
    #: shared core link — the oversubscribed-fabric contention that
    #: Bhatele et al. identified as a dominant variability source and the
    #: paper lists among interference root causes.
    core_bandwidth: float | None = None
    disk: "DiskParams | FlashParams" = field(default_factory=DiskParams)
    cache: CacheParams = field(default_factory=CacheParams)
    mds: MDSParams = field(default_factory=MDSParams)
    client: ClientParams = field(default_factory=ClientParams)
    default_stripe_size: int = 1 * MIB
    #: Request-path implementation: ``"event"`` drives every striped RPC
    #: through its own generator process; ``"batch"`` drives whole client
    #: ops through vectorised callback chains (repro.sim.batch) with
    #: identical timing. Part of the config, so it lands in run manifests
    #: and the parallel run-cache key.
    sim_backend: str = "event"

    def __post_init__(self) -> None:
        if self.n_client_nodes < 1 or self.n_oss < 1 or self.osts_per_oss < 1:
            raise ValueError("cluster needs >= 1 client node, OSS and OST")
        if self.net_bandwidth <= 0:
            raise ValueError("net_bandwidth must be positive")
        if self.core_bandwidth is not None and self.core_bandwidth <= 0:
            raise ValueError("core_bandwidth must be positive (or None)")
        if self.sim_backend not in ("event", "batch"):
            raise ValueError(
                f"sim_backend must be 'event' or 'batch', got {self.sim_backend!r}"
            )

    @property
    def n_osts(self) -> int:
        return self.n_oss * self.osts_per_oss

    # -- shard domains -----------------------------------------------------

    @property
    def n_domains(self) -> int:
        """Server domains a sharded run partitions into: one per OSS.

        The MDS (and every client) stays in the root domain — metadata
        service is latency-coupled to the clients with no lookahead, so
        it never crosses a shard boundary (DESIGN.md §12).
        """
        return self.n_oss

    def oss_of_ost(self, ost_index: int) -> int:
        """The OSS (= shard domain) hosting ``ost_index``."""
        return ost_index // self.osts_per_oss

    def domain_ost_indices(self, oss_index: int) -> range:
        """OST indices belonging to one OSS's shard domain."""
        lo = oss_index * self.osts_per_oss
        return range(lo, lo + self.osts_per_oss)


class Cluster:
    """A fully wired simulated PFS deployment."""

    def __init__(self, config: ClusterConfig | None = None,
                 env: Environment | None = None) -> None:
        self.config = config or ClusterConfig()
        self.env = env or Environment()
        self.net = FlowNetwork(self.env)
        cfg = self.config

        self.client_links = [
            Link(f"client{i}", cfg.net_bandwidth) for i in range(cfg.n_client_nodes)
        ]
        self.oss_links = [Link(f"oss{i}", cfg.net_bandwidth) for i in range(cfg.n_oss)]
        self.mds_link = Link("mds", cfg.net_bandwidth)
        self.core_link = (Link("core", cfg.core_bandwidth)
                          if cfg.core_bandwidth is not None else None)

        self.osts: list[OST] = []
        for ost_index in range(cfg.n_osts):
            oss_index = ost_index // cfg.osts_per_oss
            self.osts.append(
                OST(
                    self.env,
                    ost_index,
                    self.oss_links[oss_index],
                    disk_params=cfg.disk,
                    cache_params=cfg.cache,
                )
            )
        self.mds = MDS(self.env, self.mds_link, params=cfg.mds, disk_params=cfg.disk)
        self.fs = FileSystem(cfg.n_osts, default_stripe_size=cfg.default_stripe_size)
        self.collector = TraceCollector()
        self.nodes = [
            ClientNode(self, i, self.client_links[i], cfg.client)
            for i in range(cfg.n_client_nodes)
        ]

    # -- topology helpers -----------------------------------------------------

    @property
    def servers(self) -> list[ServerId]:
        """All PFS server targets in stable order: OSTs then the MDT."""
        ids = [ost.server_id for ost in self.osts]
        ids.append(self.mds.server_id)
        return ids

    def session(self, job: str, rank: int, node_index: int) -> ClientSession:
        """Open a session for one workload rank on one compute node."""
        node = self.nodes[node_index % len(self.nodes)]
        if self.config.sim_backend == "batch":
            from repro.sim.batch import BatchSession

            return BatchSession(node, job, rank, self.collector)
        return ClientSession(node, job, rank, self.collector)

    def route(self, client_link: Link, server_link: Link) -> tuple[Link, ...]:
        """Link path of a bulk transfer between a client and a server."""
        if self.core_link is None:
            return (client_link, server_link)
        return (client_link, self.core_link, server_link)

    # -- monitoring hooks --------------------------------------------------------

    def server_counters(self, server: ServerId) -> dict[str, float]:
        """Cumulative counters for one server at the current sim time.

        These mirror what the paper's server-side monitor pulls once a
        second (Table II): diskstats counters plus instantaneous queue
        depth.
        """
        now = self.env.now
        if server.kind is ServerKind.OST:
            ost = self.osts[server.index]
            snap = ost.device.stats.snapshot(now)
            snap["queue_depth"] = float(ost.queue_depth())
            snap["cache_dirty_bytes"] = float(ost.cache.dirty_bytes)
            snap["mds_ops_completed"] = 0.0
            return snap
        snap = self.mds.device.stats.snapshot(now)
        snap["queue_depth"] = float(self.mds.queue_depth())
        snap["cache_dirty_bytes"] = 0.0
        snap["mds_ops_completed"] = float(self.mds.ops_completed)
        return snap
