"""Namespace and file striping (Lustre layout semantics).

Files are striped round-robin over a subset of OSTs with a fixed stripe
size; each (file, OST) pair is one *object*. The default layout matches
Lustre's defaults on the testbed era (stripe_count=1, stripe_size=1 MiB);
shared-file workloads such as ``ior-hard`` create files striped over all
OSTs, exactly as IO500 configures them.
"""

from __future__ import annotations

import itertools
import posixpath
from dataclasses import dataclass

from repro.common.units import MIB

__all__ = ["StripeLayout", "FSFile", "FileSystem"]


@dataclass(frozen=True)
class StripeLayout:
    """Striping of one file: stripe size plus the per-stripe object ids.

    ``osts[i]`` is the OST index storing stripe ``i``; ``objects[i]`` is
    the object id of that stripe on its OST.
    """

    stripe_size: int
    osts: tuple[int, ...]
    objects: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if len(self.osts) != len(self.objects) or not self.osts:
            raise ValueError("need one object per stripe target")

    @property
    def stripe_count(self) -> int:
        return len(self.osts)

    def map_extent(self, offset: int, size: int) -> list[tuple[int, int, int, int]]:
        """Split a file extent into per-object pieces.

        Returns ``(ost_index, object_id, object_offset, nbytes)`` tuples in
        file-offset order.
        """
        if offset < 0 or size <= 0:
            raise ValueError(f"bad extent: offset={offset} size={size}")
        pieces: list[tuple[int, int, int, int]] = []
        pos = offset
        end = offset + size
        ss = self.stripe_size
        n = self.stripe_count
        while pos < end:
            stripe_no = pos // ss
            within = pos - stripe_no * ss
            nbytes = min(ss - within, end - pos)
            idx = stripe_no % n
            obj_offset = (stripe_no // n) * ss + within
            pieces.append((self.osts[idx], self.objects[idx], obj_offset, nbytes))
            pos += nbytes
        return pieces


@dataclass
class FSFile:
    """A file in the namespace: path, layout and current size."""

    path: str
    layout: StripeLayout
    size: int = 0

    @property
    def parent(self) -> str:
        return posixpath.dirname(self.path) or "/"


class FileSystem:
    """The global namespace shared by every client.

    Object ids are globally unique and allocated deterministically in
    creation order; the stripe rotor advances round-robin over OSTs so
    file-per-process workloads spread evenly, as Lustre's QOS allocator
    does on a balanced system.
    """

    def __init__(self, n_osts: int, default_stripe_size: int = 1 * MIB) -> None:
        if n_osts < 1:
            raise ValueError("need at least one OST")
        self.n_osts = n_osts
        self.default_stripe_size = default_stripe_size
        self._files: dict[str, FSFile] = {}
        self._object_ids = itertools.count(1)
        self._rotor = 0

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)

    def create(
        self,
        path: str,
        stripe_count: int = 1,
        stripe_size: int | None = None,
    ) -> FSFile:
        """Create a file, assigning stripe targets round-robin."""
        if path in self._files:
            raise FileExistsError(path)
        count = min(max(1, stripe_count), self.n_osts)
        if stripe_count == -1:  # Lustre convention: stripe over all OSTs
            count = self.n_osts
        osts = tuple((self._rotor + i) % self.n_osts for i in range(count))
        self._rotor = (self._rotor + count) % self.n_osts
        objects = tuple(next(self._object_ids) for _ in range(count))
        f = FSFile(path, StripeLayout(stripe_size or self.default_stripe_size, osts, objects))
        self._files[path] = f
        return f

    def lookup(self, path: str) -> FSFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def unlink(self, path: str) -> None:
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def ensure(self, path: str, size: int, stripe_count: int = 1,
               stripe_size: int | None = None) -> FSFile:
        """Create-or-get a pre-existing file of ``size`` bytes.

        Used by read workloads whose input files logically predate the
        measured run (e.g. ``ior-easy-read`` reading back previously
        written files).
        """
        if path in self._files:
            f = self._files[path]
            f.size = max(f.size, size)
            return f
        f = self.create(path, stripe_count=stripe_count, stripe_size=stripe_size)
        f.size = size
        return f
