"""Object Storage Target: extent allocation, cache and block device.

An OST stores *objects* (one per file stripe). Device space is handed out
by a first-touch bump allocator at a fixed chunk granularity, so an object
accessed sequentially occupies contiguous device extents while
interleaved streams from concurrent jobs end up interleaved on disk —
which is precisely the mechanism behind the read/read seek interference
the paper measures.
"""

from __future__ import annotations

from repro.common.records import ServerId, ServerKind
from repro.common.units import MIB
from repro.obs import trace as _trace
from repro.sim.cache import CacheParams, PageCache
from repro.sim.disk import DiskParams, FlashParams, make_disk_model
from repro.sim.engine import Environment, Process
from repro.sim.netmodel import Link
from repro.sim.scheduler import BlockDevice

__all__ = ["ExtentAllocator", "OST"]


class ExtentAllocator:
    """First-touch bump allocator mapping (object, chunk) -> device offset."""

    def __init__(self, chunk_bytes: int = 1 * MIB, capacity_bytes: int | None = None):
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        self.capacity_bytes = capacity_bytes
        self._map: dict[tuple[int, int], int] = {}
        self._next_offset = 0

    @property
    def allocated_bytes(self) -> int:
        return self._next_offset

    def _chunk_offset(self, object_id: int, chunk: int) -> int:
        key = (object_id, chunk)
        dev = self._map.get(key)
        if dev is None:
            dev = self._next_offset
            self._next_offset += self.chunk_bytes
            if self.capacity_bytes is not None and self._next_offset > self.capacity_bytes:
                raise RuntimeError("OST device is full")
            self._map[key] = dev
        return dev

    def resolve(self, object_id: int, offset: int, size: int) -> list[tuple[int, int]]:
        """Device segments covering a logical extent, coalescing contiguity."""
        if offset < 0 or size <= 0:
            raise ValueError(f"bad extent: offset={offset} size={size}")
        cb = self.chunk_bytes
        segments: list[tuple[int, int]] = []
        pos = offset
        end = offset + size
        while pos < end:
            chunk = pos // cb
            within = pos - chunk * cb
            nbytes = min(cb - within, end - pos)
            dev_off = self._chunk_offset(object_id, chunk) + within
            if segments and segments[-1][0] + segments[-1][1] == dev_off:
                prev_off, prev_len = segments[-1]
                segments[-1] = (prev_off, prev_len + nbytes)
            else:
                segments.append((dev_off, nbytes))
            pos += nbytes
        return segments


class OST:
    """One object storage target: allocator + page cache + block device."""

    def __init__(
        self,
        env: Environment,
        index: int,
        oss_link: Link,
        disk_params: "DiskParams | FlashParams | None" = None,
        cache_params: CacheParams | None = None,
    ) -> None:
        self.env = env
        self.server_id = ServerId(ServerKind.OST, index)
        self.oss_link = oss_link
        disk_params = disk_params or DiskParams()
        cache_params = cache_params or CacheParams()
        self.device = BlockDevice(env, make_disk_model(disk_params),
                                  name=str(self.server_id))
        self.allocator = ExtentAllocator(capacity_bytes=disk_params.capacity_bytes)
        self.cache = PageCache(env, self.device, cache_params, self.allocator.resolve)
        from repro.sim.qos import QoSPolicy

        #: Per-job token-bucket admission (Lustre-TBF-style NRS policy).
        self.qos = QoSPolicy(env)

    def write(self, object_id: int, offset: int, size: int,
              job: str | None = None, parent_span=None) -> Process:
        """Server-side handling of a write RPC payload already received."""
        return self.env.process(
            self._serve(object_id, offset, size, job, parent_span,
                        is_write=True)
        )

    def read(self, object_id: int, offset: int, size: int,
             job: str | None = None, parent_span=None) -> Process:
        """Server-side handling of a read RPC (data ready to send back)."""
        return self.env.process(
            self._serve(object_id, offset, size, job, parent_span,
                        is_write=False)
        )

    def _serve(self, object_id: int, offset: int, size: int, job: str | None,
               parent_span, is_write: bool):
        tracer = _trace.TRACER
        span = tracer.start(
            "ost.write" if is_write else "ost.read", self.env.now,
            parent=parent_span, server=str(self.server_id),
            object=object_id, offset=offset, size=size, job=job,
        ) if tracer is not None else None
        yield self.qos.admit(job, size)
        if is_write:
            yield self.env.process(self.cache.write(object_id, offset, size))
        else:
            yield self.env.process(self.cache.read(object_id, offset, size))
        if span is not None:
            tracer.finish(span, self.env.now)

    def serve_fast(self, object_id: int, offset: int, size: int,
                   job: str | None, is_write: bool, on_done) -> None:
        """Inline service for the batch backend: the same admission →
        cache mutations at the same instants as :meth:`_serve`, minus the
        Process/Event machinery. ``on_done()`` runs at completion."""
        if is_write:
            self.qos.admit_fast(
                job, size,
                lambda: self.cache.write_fast(object_id, offset, size, on_done),
            )
        else:
            self.qos.admit_fast(
                job, size,
                lambda: self.cache.read_fast(object_id, offset, size, on_done),
            )

    def service_batch(self, object_ids, offsets, sizes, job: str | None,
                      is_write: bool, on_done) -> None:
        """Serve a homogeneous burst arriving at one instant.

        Pieces are admitted in array order (QoS grant times via the
        closed-form cumulative sum when the job is rate-limited) and
        ``on_done(i)`` fires at piece *i*'s completion tick.
        """
        cache = self.cache
        if is_write:
            def _admit(i: int) -> None:
                cache.write_fast(object_ids[i], offsets[i], sizes[i],
                                 lambda: on_done(i))
        else:
            def _admit(i: int) -> None:
                cache.read_fast(object_ids[i], offsets[i], sizes[i],
                                lambda: on_done(i))
        self.qos.admit_batch(job, sizes, _admit)

    def queue_depth(self) -> int:
        return self.device.queue_depth
