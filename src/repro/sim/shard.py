"""Sharded simulation: one run partitioned by server domain.

A single monitored execution is compute-bound on one core however large
the configured cluster is.  This module partitions one simulation into
*domains* that advance on independent :class:`~repro.sim.engine.
Environment` instances and synchronise through a deterministic
conservative time-window protocol:

* the **root domain** keeps everything that is latency-coupled to the
  clients with no lookahead: the compute nodes and their RPC credit
  windows, every workload rank process, the MDS/MDT, the namespace and
  the trace collector;
* one **server domain per OSS** owns that OSS's OSTs (disks, caches,
  QoS) plus its NIC link and a replica of each client NIC link, and
  serves the data RPCs the root posts to it.

Lookahead and windows
---------------------
Every cross-domain interaction is a data RPC, and every data RPC pays
the fixed client ``rpc_latency`` before it reaches the server — so a
message *posted* at time ``g`` takes *effect* at ``g + latency``.  That
latency is the protocol's lookahead ``λ``: with ``B`` the global minimum
over every domain's next event time and every posted-but-undelivered
message's effect time, no new effect can materialise before ``B + λ``,
and all domains may safely advance through the window ``[B, B + λ)``
without further coordination.  Each window the coordinator

1. takes the columnar outbox batches whose effect falls inside the
   window and hands them to their server domains,
2. runs every server domain through the window, collecting completions,
3. merges completions across domains (sorted by ``(time, domain)``) and
   schedules them into the root environment at their exact times,
4. runs the root domain through the same window.

Server domains run *before* the root, which is safe because any message
the root posts during the window takes effect at ``≥ B + λ`` — past the
window end — while worker completions are delivered to the root at
their exact service-completion times inside the window.

Determinism and the ``--shards N ≡ --shards 1`` contract
--------------------------------------------------------
The coordinator's decisions (window boundaries, delivery order, merge
order) are functions of simulation state only — never of how domains
are mapped onto processes.  ``shards=N`` therefore produces bit-identical
traces, server samples, window vectors and labels to ``shards=1``;
``tests/sim/test_shard_equivalence.py`` enforces it for both sim
backends, and the run-cache key marks *sharded* execution without
recording N (see :func:`repro.parallel.cachekey.run_key_material`).

Sharded execution is a distinct execution model from the legacy
single-environment path (each server domain sees replica client links,
so client-NIC fair sharing is domain-local), hence the separate cache
namespace: legacy and sharded runs never share cache entries.

Relation to the paper: this is purely an executor change — the
simulated physics (striping, credit windows, fair-share fabric, disk
service, dirty throttling) is byte-for-byte the models the paper's
interference analysis needs, just evaluated on more cores.
"""

from __future__ import annotations

import functools
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.common.records import ServerId
from repro.common.rng import derive_seed
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.server_monitor import ServerMonitor
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.sim.batch import BatchSession, _DataOpDriver
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import Event, SimulationError
from repro.workloads.base import Workload, launch, launch_interference

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentConfig, InterferenceSpec

__all__ = [
    "CrossShardBatch",
    "ShardRouter",
    "ShardClientSession",
    "ShardBatchSession",
    "ShardedRootCluster",
    "DomainHost",
    "LocalDomainGroup",
    "execute_run_sharded",
]

logger = get_logger("sim.shard")

_INF = float("inf")


class CrossShardBatch:
    """One window's cross-shard messages for one domain, as columns.

    Parallel plain-int/float lists (the same layout rationale as
    :class:`~repro.sim.batch.BatchRequest`): cheap to append on the hot
    root path, cheap to pickle across the worker pipe, walked by index
    on the domain side.  Rows are appended in root event order, so the
    ``effect`` column is monotone non-decreasing — splitting a window's
    prefix is a single scan.
    """

    __slots__ = ("kind", "ost", "oid", "ooff", "nb", "node", "job",
                 "token", "effect")

    def __init__(self) -> None:
        self.kind: list[int] = []      # 1 = write, 0 = read
        self.ost: list[int] = []
        self.oid: list[int] = []
        self.ooff: list[int] = []
        self.nb: list[int] = []
        self.node: list[int] = []
        self.job: list[int] = []       # interned job-name id
        self.token: list[int] = []     # completion-routing token
        self.effect: list[float] = []  # absolute effect time (post + λ)

    def __len__(self) -> int:
        return len(self.token)

    def append(self, kind: int, ost: int, oid: int, ooff: int, nb: int,
               node: int, job: int, token: int, effect: float) -> None:
        self.kind.append(kind)
        self.ost.append(ost)
        self.oid.append(oid)
        self.ooff.append(ooff)
        self.nb.append(nb)
        self.node.append(node)
        self.job.append(job)
        self.token.append(token)
        self.effect.append(effect)

    def split(self, end: float, inclusive: bool
              ) -> tuple["CrossShardBatch | None", "CrossShardBatch"]:
        """Split off the prefix taking effect before ``end`` (``<= end``
        when ``inclusive``); returns ``(taken, kept)``."""
        eff = self.effect
        n = len(eff)
        cut = 0
        if inclusive:
            while cut < n and eff[cut] <= end:
                cut += 1
        else:
            while cut < n and eff[cut] < end:
                cut += 1
        if cut == 0:
            return None, self
        if cut == n:
            return self, CrossShardBatch()
        head = CrossShardBatch()
        tail = CrossShardBatch()
        for name in self.__slots__:
            col = getattr(self, name)
            setattr(head, name, col[:cut])
            setattr(tail, name, col[cut:])
        return head, tail


class ShardRouter:
    """Root-side cross-shard mailbox: outbound batches, completion tokens.

    Sessions *post* data RPCs here at window-grant time; each post buys a
    token whose completion the coordinator later schedules back into the
    root environment at the exact service-completion time.  Job names are
    interned to small ids once and shipped incrementally, so the columnar
    batches never carry strings.
    """

    def __init__(self, cluster: "ShardedRootCluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.latency = cluster.config.client.rpc_latency
        self.osts_per_oss = cluster.config.osts_per_oss
        self.outbox = [CrossShardBatch()
                       for _ in range(cluster.config.n_domains)]
        #: token -> Event (event backend) or 0-arg callable (batch backend)
        self._waiters: dict[int, Event | Callable[[], None]] = {}
        self._next_token = 0
        self._job_ids: dict[str, int] = {}
        self._new_jobs: list[tuple[int, str]] = []
        self.messages_posted = 0

    def _job_id(self, job: str) -> int:
        jid = self._job_ids.get(job)
        if jid is None:
            jid = self._job_ids[job] = len(self._job_ids)
            self._new_jobs.append((jid, job))
        return jid

    def post(self, is_write: bool, ost_index: int, object_id: int,
             obj_offset: int, nbytes: int, node_index: int, job: str,
             waiter: "Event | Callable[[], None]") -> int:
        """Queue one data RPC taking effect at ``now + latency``."""
        token = self._next_token
        self._next_token += 1
        self._waiters[token] = waiter
        self.outbox[ost_index // self.osts_per_oss].append(
            1 if is_write else 0, ost_index, object_id, obj_offset, nbytes,
            node_index, self._job_id(job), token, self.env.now + self.latency,
        )
        self.messages_posted += 1
        return token

    def send(self, is_write: bool, ost_index: int, object_id: int,
             obj_offset: int, nbytes: int, node_index: int,
             job: str) -> Event:
        """Event-backend post: returns the root event the RPC's waiter
        yields on; it fires at the remote service-completion time."""
        ev = Event(self.env)
        self.post(is_write, ost_index, object_id, obj_offset, nbytes,
                  node_index, job, ev)
        return ev

    def take_outbox(self, end: float, inclusive: bool
                    ) -> tuple[dict[int, CrossShardBatch],
                               list[tuple[int, str]]]:
        """Detach every domain's messages taking effect inside the window,
        plus the job-name ids interned since the last take."""
        taken: dict[int, CrossShardBatch] = {}
        for domain, batch in enumerate(self.outbox):
            if not batch.token:
                continue
            head, tail = batch.split(end, inclusive)
            if head is not None:
                taken[domain] = head
                self.outbox[domain] = tail
        new_jobs, self._new_jobs = self._new_jobs, []
        return taken, new_jobs

    def min_effect(self) -> float:
        """Earliest undelivered message effect time (columns are monotone,
        so each batch's head is its minimum)."""
        m = _INF
        for batch in self.outbox:
            if batch.effect and batch.effect[0] < m:
                m = batch.effect[0]
        return m

    def deliver(self, token: int, when: float) -> None:
        """Schedule one completion into the root environment at ``when``.

        The waiter event is armed and pushed directly onto the heap at
        its absolute completion time (``Event.succeed`` would fire it at
        the *current* root time instead).
        """
        waiter = self._waiters.pop(token)
        env = self.env
        if isinstance(waiter, Event):
            waiter._ok = True
            env._schedule(waiter, when - env.now)
            return
        ev = Event(env)
        ev._ok = True
        ev.callbacks.append(lambda _ev, fn=waiter: fn())
        env._schedule(ev, when - env.now)


class ShardClientSession(ClientSession):
    """Event-backend session whose data RPCs cross the shard boundary.

    The RPC-window credit discipline stays client-side (root domain);
    only the post-grant leg — latency, network transfer, OST service —
    runs in the server domain.  The yielded router event fires at the
    identical instant the legacy path's last leg would complete, so the
    credit release times match.
    """

    def _data_rpc(self, ost_index: int, object_id: int, obj_offset: int,
                  nbytes: int, is_write: bool, parent_span=None):
        cluster = self.node.cluster
        window = self.node.rpc_window(ost_index)
        tracer = _trace.TRACER
        span = tracer.start(
            "client.rpc", self.env.now, parent=parent_span,
            ost=ost_index, nbytes=nbytes, write=is_write, sharded=True,
        ) if tracer is not None else None
        yield window.acquire()
        try:
            yield cluster.router.send(is_write, ost_index, object_id,
                                      obj_offset, nbytes, self.node.index,
                                      self.job)
        finally:
            window.release()
        if span is not None:
            tracer.finish(span, self.env.now)


class _ShardDataOpDriver(_DataOpDriver):
    """Batch-backend driver that posts granted pieces to the router.

    Mirrors :meth:`_DataOpDriver.begin`'s grant discipline exactly —
    pieces with an available credit post immediately, queued pieces post
    when their FIFO grant fires — but the post replaces the local
    ``rpc_latency`` timer: the router stamps the same ``grant + λ``
    effect time onto the cross-shard message.
    """

    __slots__ = ()

    def begin(self) -> None:
        req = self.req
        node = self.session.node
        cluster = node.cluster
        touched = self.touched
        keep = self.keep_record
        n = len(req)
        if n == 0:
            self._finish()
            return
        ost_idx = req._ost
        nbytes = req._nb
        for i in range(n):
            oi = ost_idx[i]
            if keep:
                sid = cluster.osts[oi].server_id
                touched[sid] = touched.get(sid, 0) + nbytes[i]
            window = node.rpc_window(oi)
            if window.try_acquire():
                self._post(i)
            else:
                window.acquire().callbacks.append(
                    lambda _ev, i=i: self._post(i)
                )

    def _post(self, i: int) -> None:
        req = self.req
        session = self.session
        session.node.cluster.router.post(
            self.is_write, req._ost[i], req._oid[i], req._ooff[i],
            req._nb[i], session.node.index, session.job,
            lambda i=i: self._piece_done(i),
        )


class ShardBatchSession(BatchSession):
    """Batch-backend session for the root domain of a sharded run."""

    driver_class = _ShardDataOpDriver


class ShardedRootCluster(Cluster):
    """The root domain: clients, MDS and namespace live; data RPCs are
    posted to the :class:`ShardRouter` instead of local OSTs.

    Built as a full :class:`Cluster` — the dormant root-side OST objects
    schedule no events until touched (caches flush lazily, disks idle),
    and keeping them preserves ``servers`` ordering and ``ServerId``
    bookkeeping without a parallel topology type.
    """

    def __init__(self, config: ClusterConfig | None = None) -> None:
        super().__init__(config)
        self.router = ShardRouter(self)

    def session(self, job: str, rank: int, node_index: int) -> ClientSession:
        node = self.nodes[node_index % len(self.nodes)]
        if self.config.sim_backend == "batch":
            return ShardBatchSession(node, job, rank, self.collector)
        return ShardClientSession(node, job, rank, self.collector)


class _DomainView:
    """Duck-typed :class:`ServerMonitor` target: a subset of one
    cluster's servers on that cluster's environment."""

    def __init__(self, cluster: Cluster, servers: list[ServerId]) -> None:
        self.env = cluster.env
        self.servers = servers
        self._cluster = cluster

    def server_counters(self, server: ServerId) -> dict[str, float]:
        return self._cluster.server_counters(server)


class DomainHost:
    """One OSS server domain on its own environment.

    Holds a full cluster replica (bit-identical construction whatever
    process hosts it) of which only this OSS's OSTs, its NIC link and
    the replica client links are exercised; a :class:`ServerMonitor`
    over just those OSTs samples on the same tick schedule as the root.
    Messages are injected at their effect times and walked through the
    same network-transfer + ``serve_fast`` chain as the batch backend.

    When tracing is on the host owns a **per-domain tracer** (installed
    as the module-global tracer while the domain simulates, here and in
    :meth:`run_window`), so the domain's spans never interleave with the
    coordinator's.  The merged trace is then shard-count invariant: root
    spans in root recording order, followed by each domain's spans in
    domain-index order, labelled ``domain{d}`` — the same stream whether
    the domain lived in-process or on a shard worker.
    """

    def __init__(self, config: ClusterConfig, domain_index: int,
                 sample_interval: float, tracer: _trace.Tracer | None = None,
                 spill_path: str | None = None) -> None:
        self.domain_index = domain_index
        self.tracer = tracer
        self.spill_path = spill_path
        self.spilled = 0
        saved = _trace.TRACER
        _trace.TRACER = tracer  # even None: never record into the root's
        try:
            self.cluster = Cluster(config)
            self.env = self.cluster.env
            self.ost_indices = list(config.domain_ost_indices(domain_index))
            servers = [self.cluster.osts[i].server_id
                       for i in self.ost_indices]
            self.monitor = ServerMonitor(_DomainView(self.cluster, servers),
                                         sample_interval=sample_interval)
            self.monitor.start()
        finally:
            _trace.TRACER = saved
        self._jobs: list[str] = []
        self.completions: list[tuple[int, float]] = []

    def add_jobs(self, new_jobs: list[tuple[int, str]]) -> None:
        for jid, name in new_jobs:
            if jid != len(self._jobs):
                raise SimulationError(
                    f"shard domain {self.domain_index}: job-id stream out "
                    f"of order ({jid} after {len(self._jobs)})"
                )
            self._jobs.append(name)

    def inject(self, batch: CrossShardBatch) -> None:
        """Schedule each message's arrival at its effect time.  Same-time
        arrivals keep batch order via the environment's sequence
        tie-break, so delivery order is shard-count invariant."""
        env = self.env
        now = env.now
        for k in range(len(batch.token)):
            ev = Event(env)
            ev._ok = True
            ev.callbacks.append(functools.partial(
                self._arrive, batch.kind[k], batch.ost[k], batch.oid[k],
                batch.ooff[k], batch.nb[k], batch.node[k], batch.job[k],
                batch.token[k],
            ))
            env._schedule(ev, batch.effect[k] - now)

    def _arrive(self, kind: int, oi: int, oid: int, ooff: int, nb: int,
                node: int, jid: int, token: int, _ev: Event) -> None:
        cluster = self.cluster
        ost = cluster.osts[oi]
        job = self._jobs[jid]
        links = cluster.route(cluster.client_links[node], ost.oss_link)
        if kind:  # write: payload crosses the fabric, then OST service
            cluster.net.transfer_batch([(
                nb, links,
                lambda: ost.serve_fast(oid, ooff, nb, job, True,
                                       lambda: self._complete(token)),
            )])
        else:  # read: OST service first, then the payload crosses back
            ost.serve_fast(
                oid, ooff, nb, job, False,
                lambda: cluster.net.transfer_batch(
                    [(nb, links, lambda: self._complete(token))]
                ),
            )

    def _complete(self, token: int) -> None:
        self.completions.append((token, self.env.now))

    def drain_completions(self) -> list[tuple[int, float]]:
        out, self.completions = self.completions, []
        return out

    def run_window(self, end: float, inclusive: bool) -> None:
        saved = _trace.TRACER
        _trace.TRACER = tracer = self.tracer
        try:
            env = self.env
            queue = env._queue
            step = env._step
            if inclusive:
                while queue and queue[0][0] <= end:
                    step(queue, tracer)
            else:
                while queue and queue[0][0] < end:
                    step(queue, tracer)
        finally:
            _trace.TRACER = saved

    def maybe_spill(self) -> None:
        """Spill finished spans once the buffer passes the threshold.

        Same threshold in every hosting mode, so the spill pattern (and
        with it the deterministic open-parent fallback in the merge) is
        shard-count invariant.
        """
        from repro.obs import distributed as _dist

        if (self.tracer is not None and self.spill_path is not None
                and len(self.tracer.spans) >= _dist.SPILL_THRESHOLD):
            self.spilled += _dist.spill_spans(self.tracer, self.spill_path)

    def ship_spans(self) -> dict[str, Any] | None:
        """This domain's span shipment (plus spool pointer when spilled)."""
        from repro.obs import distributed as _dist

        shipment = _dist.ship(self.tracer)
        if shipment is not None and self.spilled:
            shipment["spill_path"] = self.spill_path
            shipment["spilled"] = self.spilled
        return shipment


class LocalDomainGroup:
    """All server domains hosted in-process (``shards=1``, and the
    fallback inside daemonic pool workers where nested process spawning
    is forbidden).  Shares the coordinator's registry; spans go through
    the same per-domain tracers, spill spools and domain-order merge as
    the process-backed group, so the trace stream is identical either
    way."""

    def __init__(self, config: ClusterConfig, domains: list[int],
                 sample_interval: float) -> None:
        parent_tracer = _trace.get()
        self._tempdir = None
        if parent_tracer is not None:
            import tempfile

            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-shard-")
        self.hosts = [
            DomainHost(config, d, sample_interval,
                       tracer=(None if parent_tracer is None else
                               _trace.Tracer(trace_id=parent_tracer.trace_id)),
                       spill_path=(None if self._tempdir is None else
                                   f"{self._tempdir.name}/domain{d}.spans.jsonl"))
            for d in domains
        ]
        self.next_time = min((h.env.peek() for h in self.hosts),
                             default=_INF)

    def run_window(self, end: float, inclusive: bool,
                   outbox: dict[int, CrossShardBatch],
                   new_jobs: list[tuple[int, str]]
                   ) -> list[tuple[int, list[tuple[int, float]]]]:
        results = []
        nt = _INF
        for host in self.hosts:
            if new_jobs:
                host.add_jobs(new_jobs)
            batch = outbox.get(host.domain_index)
            if batch is not None:
                host.inject(batch)
            host.run_window(end, inclusive)
            host.maybe_spill()
            results.append((host.domain_index, host.drain_completions()))
            t = host.env.peek()
            if t < nt:
                nt = t
        self.next_time = nt
        return results

    def finish(self) -> dict[str, Any]:
        from repro.obs import distributed as _dist

        samples: list[tuple[float, ServerId, dict[str, float]]] = []
        events = 0
        for host in self.hosts:
            samples.extend(host.monitor.samples)
            events += host.env._seq
        parent_tracer = _trace.get()
        if parent_tracer is not None:
            for host in sorted(self.hosts, key=lambda h: h.domain_index):
                _dist.merge_spilled(parent_tracer, host.ship_spans(),
                                    worker=f"domain{host.domain_index}")
        return {"samples": samples, "events": events}

    def close(self) -> None:
        if self._tempdir is not None:
            self._tempdir.cleanup()


def _make_group(config: ClusterConfig, domains: list[int],
                sample_interval: float, shards: int):
    """Map server domains onto processes: ``shards`` is the total number
    of concurrently simulating processes, the calling process (root
    domain) included."""
    n_workers = min(max(0, shards - 1), len(domains))
    if n_workers > 0:
        import multiprocessing

        if multiprocessing.current_process().daemon:
            # Pool workers may not spawn children; in-process sharding is
            # bit-identical, just without the extra parallelism.
            logger.info(
                "sharded run inside a daemonic worker: hosting all %d "
                "server domains in-process", len(domains)
            )
        else:
            from repro.parallel.shardpool import ProcessDomainGroup

            return ProcessDomainGroup(config, domains, sample_interval,
                                      n_workers)
    return LocalDomainGroup(config, domains, sample_interval)


def execute_run_sharded(
    target: Workload,
    interference: "list[InterferenceSpec]",
    config: "ExperimentConfig",
    seed_salt: str = "",
    abort_at: float | None = None,
    shards: int = 1,
) -> MonitoredRun:
    """Sharded counterpart of :func:`repro.experiments.runner.execute_run`.

    Produces a :class:`MonitoredRun` whose records, samples and derived
    vectors are bit-identical for every ``shards`` value; ``shards``
    only chooses how many processes host the server domains.
    """
    wall_start = time.perf_counter()
    if abort_at is not None and abort_at <= 0:
        raise ValueError(f"abort_at must be positive, got {abort_at}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    cfg = config.cluster
    lookahead = cfg.client.rpc_latency
    if lookahead <= 0:
        raise ValueError(
            "sharded execution needs rpc_latency > 0: the per-RPC latency "
            "is the conservative protocol's lookahead"
        )
    if lookahead >= config.sample_interval:
        raise ValueError(
            "sharded execution needs rpc_latency < sample_interval "
            f"({lookahead} >= {config.sample_interval})"
        )
    logger.info(
        "execute_run_sharded: target=%s noise=%s seed=%d shards=%d "
        "domains=%d", target.name,
        [spec.task for spec in interference] or "none", config.seed,
        shards, cfg.n_domains,
    )

    windows_counter = REGISTRY.counter("shard.windows")
    messages_counter = REGISTRY.counter("shard.messages")
    completions_counter = REGISTRY.counter("shard.completions")
    window_hist = REGISTRY.histogram("shard.window_wall_seconds")

    cluster = ShardedRootCluster(cfg)
    router = cluster.router
    env = cluster.env
    monitor = ServerMonitor(
        _DomainView(cluster, [cluster.mds.server_id]),
        sample_interval=config.sample_interval,
    )
    monitor.start()
    group = _make_group(cfg, list(range(cfg.n_domains)),
                        config.sample_interval, shards)
    try:
        with _profile.phase("shard-run", target=target.name, shards=shards):
            noise_nodes = list(config.noise_nodes) or list(config.target_nodes)
            for spec_idx, spec in enumerate(interference):
                for copy in range(spec.instances):
                    workload = spec.build(copy)
                    workload.name = f"{workload.name}-{spec_idx}"
                    seed = derive_seed(config.seed, "noise", seed_salt,
                                       spec_idx, copy)
                    launch_interference(cluster, workload, noise_nodes, seed,
                                        record=False)

            t_done: list[float] = []

            def _window(end: float, inclusive: bool) -> None:
                t0 = time.perf_counter()
                outbox, new_jobs = router.take_outbox(end, inclusive)
                results = group.run_window(end, inclusive, outbox, new_jobs)
                merged = [
                    (when, domain, token)
                    for domain, comps in results
                    for token, when in comps
                ]
                merged.sort(key=lambda row: (row[0], row[1]))
                for when, _domain, token in merged:
                    router.deliver(token, when)
                queue = env._queue
                step = env._step
                tracer = _trace.TRACER
                if inclusive:
                    while queue and queue[0][0] <= end:
                        step(queue, tracer)
                else:
                    while queue and queue[0][0] < end:
                        step(queue, tracer)
                windows_counter.inc()
                messages_counter.inc(sum(len(b) for b in outbox.values()))
                completions_counter.inc(len(merged))
                window_hist.observe(time.perf_counter() - t0)

            def _frontier() -> float:
                return min(env.peek(), group.next_time, router.min_effect())

            def _pump_to(boundary: float) -> None:
                """Advance every domain until nothing is pending before
                ``boundary`` (events at exactly ``boundary`` stay)."""
                while True:
                    frontier = _frontier()
                    if frontier >= boundary:
                        return
                    if frontier == _INF:
                        raise SimulationError(
                            "sharded run drained before reaching "
                            f"t={boundary}"
                        )
                    _window(min(frontier + lookahead, boundary),
                            inclusive=False)

            if interference and config.warmup > 0:
                _pump_to(config.warmup)
                _window(config.warmup, inclusive=True)
                env.now = max(env.now, config.warmup)

            target_seed = derive_seed(config.seed, "target", target.name)
            handle = launch(cluster, target, list(config.target_nodes),
                            target_seed)
            handle.done.callbacks.append(lambda _ev: t_done.append(env.now))

            deadline = (abort_at + config.sample_interval
                        if abort_at is not None else None)
            while True:
                if deadline is None and t_done:
                    deadline = t_done[0] + config.sample_interval
                frontier = _frontier()
                if frontier == _INF:
                    raise SimulationError(
                        "event loop drained before the target completed"
                    )
                end = frontier + lookahead
                if deadline is not None and end >= deadline:
                    _pump_to(deadline)
                    _window(deadline, inclusive=True)
                    break
                _window(end, inclusive=False)

            aborted = abort_at is not None and (
                not t_done or t_done[0] > abort_at
            )
            if aborted:
                logger.warning("run %s aborted at t=%.3fs (fault injection)",
                               target.name, abort_at)
            duration = deadline
            env.now = max(env.now, duration)

            finish = group.finish()
            order = {sid: i for i, sid in enumerate(cluster.servers)}
            rows = [row for row in finish["samples"] + monitor.samples
                    if row[0] <= duration]
            rows.sort(key=lambda row: (row[0], order[row[1]]))
            REGISTRY.gauge("shard.events_scheduled").set(
                env._seq + finish["events"])
    finally:
        group.close()

    run = MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=rows,
        servers=cluster.servers,
        duration=duration,
        metadata={
            "interference": [spec.task for spec in interference],
            "instances": sum(spec.instances for spec in interference),
            "warmup": config.warmup if interference else 0.0,
            "seed": config.seed,
            "target_nodes": list(config.target_nodes),
            "window_size": config.window_size,
            "sample_interval": config.sample_interval,
            "sharded": True,
            **({"aborted": True, "abort_at": abort_at} if aborted else {}),
        },
    )
    logger.info(
        "execute_run_sharded done: %s finished at t=%.3fs sim (%d records, "
        "%d samples, %d messages, %.2fs wall)",
        target.name, run.duration, len(run.records),
        len(run.server_samples), router.messages_posted,
        time.perf_counter() - wall_start,
    )
    return run
