"""Sharded simulation: one run partitioned by server domain.

A single monitored execution is compute-bound on one core however large
the configured cluster is.  This module partitions one simulation into
*domains* that advance on independent :class:`~repro.sim.engine.
Environment` instances and synchronise through a deterministic
conservative time-window protocol:

* the **root domain** keeps everything that is latency-coupled to the
  clients with no lookahead: the compute nodes and their RPC credit
  windows, every workload rank process, the MDS/MDT, the namespace and
  the trace collector;
* one **server domain per OSS** owns that OSS's OSTs (disks, caches,
  QoS) plus its NIC link and a replica of each client NIC link, and
  serves the data RPCs the root posts to it.

Lookahead and windows
---------------------
Every cross-domain interaction is a data RPC, and every data RPC pays
the fixed client ``rpc_latency`` before it reaches the server — so a
message *posted* at time ``g`` takes *effect* at ``g + latency``.  That
latency is the protocol's lookahead ``λ``: with ``B`` the global minimum
over every domain's next event time and every posted-but-undelivered
message's effect time, no new effect can materialise before ``B + λ``,
and all domains may safely advance through the window ``[B, B + λ)``
without further coordination.  Each window the coordinator

1. takes the columnar outbox batches whose effect falls inside the
   window and hands them to their server domains,
2. runs every server domain through the window, collecting completions,
3. merges completions across domains (sorted by ``(time, domain)``) and
   schedules them into the root environment at their exact times,
4. runs the root domain through the same window.

Server domains run *before* the root, which is safe because any message
the root posts during the window takes effect at ``≥ B + λ`` — past the
window end — while worker completions are delivered to the root at
their exact service-completion times inside the window.

Adaptive lookahead and barrier elision
--------------------------------------
A barrier per ``λ``-window is pure overhead whenever no cross-domain
effect can land inside the window.  The :class:`WindowPolicy`
``adaptive`` mode (the default) widens the window to the *proven-safe
horizon* whenever the coordinator can prove the span
``[B, H)`` free of cross-domain effects:

* the router outbox is empty (no posted-but-undelivered message — and
  because effect times are monotone in post order, a pending message
  always bounds the frontier to within ``λ`` of its effect, so widening
  is only ever possible with an empty outbox), and
* every domain environment's :meth:`~repro.sim.engine.Environment.peek`
  horizon clears the span (``group.next_time ≥ H``) — no domain event,
  hence no completion and no server sample, can occur before ``H``.

``H = min(group.next_time, B + cap)`` with ``cap`` defaulting to the
monitor ``sample_interval`` (domains tick their monitors every
``sample_interval``, so wider spans cannot be proven anyway).  The root
then runs the span *alone* — zero worker round-trips — under a
first-post guard: the moment a root event posts a message, the safe
horizon shrinks to that message's effect time ``t + λ`` (later posts
have later effects, columns stay monotone) and the quiet run stops
there; the next ordinary window delivers it.

Root-quiet spans alone barely help, because domain *service* events —
not root events — pace >90 % of a data-heavy run's windows.  The
complementary **guarded domain-ahead round** elides those: whenever the
root's own horizon clears the span (its first queued event is at
``env.peek()``, and a root reaction to a delivered completion can only
post with effect ≥ ``tc + λ``), the group advances its domains through
many λ-sub-windows in a *single* coordinator round
(:func:`run_hosts_guarded`): the outbox is drained below the round's
``stop ≤ env.peek() + λ`` up front, and the lockstep halts at the end of
the first sub-window producing a completion — within ``λ`` of it — so
every possible root reaction still takes effect at or after the reached
end.  Sub-window pacing follows only the **active** domains (in-service
messages or fresh injections; derived from router state, never from the
process partition), which keeps the reached end — and the root's run
chunking — partition-invariant; inactive domains hosted elsewhere may
lag and catch up later, since with nothing in service they can neither
complete nor post.  Across processes a guarded round is only issued when
every active domain shares one worker (the guard must bind globally);
otherwise the coordinator falls back to fixed windows.

Both mechanisms fire exactly the events the fixed protocol would fire,
at the same simulated times with the domains' chunking irrelevant to
their state — so records, samples, vectors, labels and the span trace
stay **byte-identical between policies** (and across shard counts),
which ``tests/sim/test_shard_adaptive.py`` pins.  The floor is
structural: every completion is a potential root wake-up whose reaction
lands ``λ`` later, so a conservative protocol must synchronise once per
completion cluster; adaptive mode approaches that floor (DESIGN.md §12
quantifies it on the committed benchmark).

Determinism and the ``--shards N ≡ --shards 1`` contract
--------------------------------------------------------
The coordinator's decisions (window boundaries, delivery order, merge
order) are functions of simulation state only — never of how domains
are mapped onto processes.  ``shards=N`` therefore produces bit-identical
traces, server samples, window vectors and labels to ``shards=1``;
``tests/sim/test_shard_equivalence.py`` enforces it for both sim
backends, and the run-cache key marks *sharded* execution without
recording N (see :func:`repro.parallel.cachekey.run_key_material`).

Sharded execution is a distinct execution model from the legacy
single-environment path (each server domain sees replica client links,
so client-NIC fair sharing is domain-local), hence the separate cache
namespace: legacy and sharded runs never share cache entries.

Relation to the paper: this is purely an executor change — the
simulated physics (striping, credit windows, fair-share fabric, disk
service, dirty throttling) is byte-for-byte the models the paper's
interference analysis needs, just evaluated on more cores.
"""

from __future__ import annotations

import functools
import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.common.records import ServerId
from repro.common.rng import derive_seed
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.server_monitor import ServerMonitor
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.sim.batch import BatchSession, _DataOpDriver
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.engine import Event, SimulationError
from repro.workloads.base import Workload, launch, launch_interference

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentConfig, InterferenceSpec

__all__ = [
    "CrossShardBatch",
    "ShardRouter",
    "ShardClientSession",
    "ShardBatchSession",
    "ShardedRootCluster",
    "DomainHost",
    "LocalDomainGroup",
    "WindowPolicy",
    "run_hosts_guarded",
    "execute_run_sharded",
]

logger = get_logger("sim.shard")

_INF = float("inf")

#: Constant activity set for the ``n_domains == 1`` bypass.
_SINGLE_DOMAIN = frozenset((0,))


@dataclass(frozen=True)
class WindowPolicy:
    """How the coordinator sizes conservative sync windows.

    ``fixed`` reproduces the original protocol: one barrier per
    ``λ``-window, ``λ = rpc_latency``, unconditionally.  ``adaptive``
    (the default) elides barriers over provably quiet spans — see the
    module docstring for the safety argument.  Either policy produces
    byte-identical simulation output; the policy is an executor knob
    like the shard count, so it never enters run metadata or cache keys.

    ``cap`` bounds how far one widened span may reach past its frontier,
    in simulated seconds.  ``None`` defaults to the run's
    ``sample_interval`` at entry (the largest provable span — domain
    monitors tick that often); an explicit cap must satisfy
    ``0 < cap < sample_interval``, mirroring the ``0 < λ <
    sample_interval`` validation on the lookahead itself.

    ``audit``, when given a list, records one dict per widened span
    (frontier, planned and actual end, post-guard state) — the hook the
    property tests use to check every span against the λ-safety
    invariant.  It is excluded from equality/pickling concerns by being
    compare-exempt; executors pass policies across process boundaries
    with ``audit=None``.
    """

    mode: str = "adaptive"
    cap: float | None = None
    audit: list | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("fixed", "adaptive"):
            raise ValueError(
                f"window policy mode must be 'fixed' or 'adaptive', "
                f"got {self.mode!r}"
            )
        if self.cap is not None:
            if self.mode != "adaptive":
                raise ValueError(
                    "window policy 'fixed' takes no cap (the window is "
                    "always exactly one lookahead)"
                )
            if self.cap <= 0:
                raise ValueError(
                    f"adaptive window cap must be positive, got {self.cap}"
                )

    @property
    def adaptive(self) -> bool:
        return self.mode == "adaptive"

    @classmethod
    def parse(cls, spec: str) -> "WindowPolicy":
        """Parse a CLI spec: ``fixed``, ``adaptive`` or
        ``adaptive:cap=SECONDS``."""
        text = spec.strip()
        mode, _, rest = text.partition(":")
        mode = mode.strip()
        if mode not in ("fixed", "adaptive"):
            raise ValueError(
                f"unknown window policy {mode!r} (expected 'fixed', "
                f"'adaptive' or 'adaptive:cap=SECONDS')"
            )
        if not rest:
            return cls(mode=mode)
        key, eq, value = rest.partition("=")
        if key.strip() != "cap" or not eq:
            raise ValueError(
                f"bad window policy option {rest!r} (the only option is "
                f"'cap=SECONDS')"
            )
        try:
            cap = float(value)
        except ValueError:
            raise ValueError(
                f"window policy cap must be a number of simulated "
                f"seconds, got {value!r}"
            ) from None
        return cls(mode=mode, cap=cap)

    @classmethod
    def resolve(cls, policy: "WindowPolicy | str | None") -> "WindowPolicy":
        """Normalise an executor-level policy argument: ``None`` means
        the default (adaptive, uncapped), a string is parsed."""
        if policy is None:
            return cls()
        if isinstance(policy, str):
            return cls.parse(policy)
        return policy


class CrossShardBatch:
    """One window's cross-shard messages for one domain, as columns.

    Parallel plain-int/float lists (the same layout rationale as
    :class:`~repro.sim.batch.BatchRequest`): cheap to append on the hot
    root path, cheap to pickle across the worker pipe, walked by index
    on the domain side.  Rows are appended in root event order, so the
    ``effect`` column is monotone non-decreasing — splitting a window's
    prefix is a single scan.
    """

    __slots__ = ("kind", "ost", "oid", "ooff", "nb", "node", "job",
                 "token", "effect")

    def __init__(self) -> None:
        self.kind: list[int] = []      # 1 = write, 0 = read
        self.ost: list[int] = []
        self.oid: list[int] = []
        self.ooff: list[int] = []
        self.nb: list[int] = []
        self.node: list[int] = []
        self.job: list[int] = []       # interned job-name id
        self.token: list[int] = []     # completion-routing token
        self.effect: list[float] = []  # absolute effect time (post + λ)

    def __len__(self) -> int:
        return len(self.token)

    def append(self, kind: int, ost: int, oid: int, ooff: int, nb: int,
               node: int, job: int, token: int, effect: float) -> None:
        self.kind.append(kind)
        self.ost.append(ost)
        self.oid.append(oid)
        self.ooff.append(ooff)
        self.nb.append(nb)
        self.node.append(node)
        self.job.append(job)
        self.token.append(token)
        self.effect.append(effect)

    def split(self, end: float, inclusive: bool
              ) -> tuple["CrossShardBatch | None", "CrossShardBatch"]:
        """Split off the prefix taking effect before ``end`` (``<= end``
        when ``inclusive``); returns ``(taken, kept)``."""
        eff = self.effect
        n = len(eff)
        cut = 0
        if inclusive:
            while cut < n and eff[cut] <= end:
                cut += 1
        else:
            while cut < n and eff[cut] < end:
                cut += 1
        if cut == 0:
            return None, self
        if cut == n:
            return self, CrossShardBatch()
        head = CrossShardBatch()
        tail = CrossShardBatch()
        for name in self.__slots__:
            col = getattr(self, name)
            setattr(head, name, col[:cut])
            setattr(tail, name, col[cut:])
        return head, tail


class ShardRouter:
    """Root-side cross-shard mailbox: outbound batches, completion tokens.

    Sessions *post* data RPCs here at window-grant time; each post buys a
    token whose completion the coordinator later schedules back into the
    root environment at the exact service-completion time.  Job names are
    interned to small ids once and shipped incrementally, so the columnar
    batches never carry strings.
    """

    def __init__(self, cluster: "ShardedRootCluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.latency = cluster.config.client.rpc_latency
        self.osts_per_oss = cluster.config.osts_per_oss
        self.outbox = [CrossShardBatch()
                       for _ in range(cluster.config.n_domains)]
        #: token -> Event (event backend) or 0-arg callable (batch backend)
        self._waiters: dict[int, Event | Callable[[], None]] = {}
        self._next_token = 0
        self._job_ids: dict[str, int] = {}
        self._new_jobs: list[tuple[int, str]] = []
        self.messages_posted = 0
        #: undelivered outbox rows across every domain — the adaptive
        #: policy's O(1) outbox-empty proof and the quiet-window fast
        #: path's skip test (``pending == 0`` ⇒ ``min_effect() == inf``
        #: and ``take_outbox`` would be a no-op).
        self.pending = 0

    def _job_id(self, job: str) -> int:
        jid = self._job_ids.get(job)
        if jid is None:
            jid = self._job_ids[job] = len(self._job_ids)
            self._new_jobs.append((jid, job))
        return jid

    def post(self, is_write: bool, ost_index: int, object_id: int,
             obj_offset: int, nbytes: int, node_index: int, job: str,
             waiter: "Event | Callable[[], None]") -> int:
        """Queue one data RPC taking effect at ``now + latency``."""
        token = self._next_token
        self._next_token += 1
        self._waiters[token] = waiter
        self.outbox[ost_index // self.osts_per_oss].append(
            1 if is_write else 0, ost_index, object_id, obj_offset, nbytes,
            node_index, self._job_id(job), token, self.env.now + self.latency,
        )
        self.messages_posted += 1
        self.pending += 1
        return token

    def post_many(self, is_write: bool, req, idxs, node_index: int,
                  job: str, piece_done: Callable[[int], None]) -> None:
        """Queue a granted group of batch-backend pieces in piece order.

        The columnar counterpart of the event backend's shared
        ``rpc_latency`` timeout: every piece in the group stamps the one
        ``now + latency`` effect time, and rows land in their domains'
        outboxes in piece order with consecutive tokens — exactly the
        rows ``post`` would append one at a time, minus the per-piece
        closure and attribute traffic.
        """
        effect = self.env.now + self.latency
        jid = self._job_id(job)
        kind = 1 if is_write else 0
        ost = req._ost
        oid = req._oid
        ooff = req._ooff
        nb = req._nb
        per = self.osts_per_oss
        outbox = self.outbox
        waiters = self._waiters
        token = self._next_token
        for i in idxs:
            waiters[token] = functools.partial(piece_done, i)
            outbox[ost[i] // per].append(
                kind, ost[i], oid[i], ooff[i], nb[i], node_index, jid,
                token, effect,
            )
            token += 1
        n = token - self._next_token
        self._next_token = token
        self.messages_posted += n
        self.pending += n

    def send(self, is_write: bool, ost_index: int, object_id: int,
             obj_offset: int, nbytes: int, node_index: int,
             job: str) -> Event:
        """Event-backend post: returns the root event the RPC's waiter
        yields on; it fires at the remote service-completion time."""
        ev = Event(self.env)
        self.post(is_write, ost_index, object_id, obj_offset, nbytes,
                  node_index, job, ev)
        return ev

    def take_outbox(self, end: float, inclusive: bool
                    ) -> tuple[dict[int, CrossShardBatch],
                               list[tuple[int, str]]]:
        """Detach every domain's messages taking effect inside the window,
        plus the job-name ids interned since the last take."""
        taken: dict[int, CrossShardBatch] = {}
        for domain, batch in enumerate(self.outbox):
            if not batch.token:
                continue
            head, tail = batch.split(end, inclusive)
            if head is not None:
                taken[domain] = head
                self.outbox[domain] = tail
                self.pending -= len(head)
        new_jobs, self._new_jobs = self._new_jobs, []
        return taken, new_jobs

    def min_effect(self) -> float:
        """Earliest undelivered message effect time (columns are monotone,
        so each batch's head is its minimum)."""
        if not self.pending:
            return _INF
        m = _INF
        for batch in self.outbox:
            if batch.effect and batch.effect[0] < m:
                m = batch.effect[0]
        return m

    def outbox_domains(self) -> list[int]:
        """Domains with undelivered messages (the guarded round's
        activity set alongside the coordinator's in-service counts)."""
        return [d for d, batch in enumerate(self.outbox) if batch.token]

    def deliver(self, token: int, when: float) -> None:
        """Schedule one completion into the root environment at ``when``.

        The waiter event is armed and pushed directly onto the heap at
        its absolute completion time (``Event.succeed`` would fire it at
        the *current* root time instead).
        """
        waiter = self._waiters.pop(token)
        env = self.env
        if isinstance(waiter, Event):
            waiter._ok = True
            env._schedule(waiter, when - env.now)
            return
        ev = Event(env)
        ev._ok = True
        ev.callbacks.append(lambda _ev, fn=waiter: fn())
        env._schedule(ev, when - env.now)


class ShardClientSession(ClientSession):
    """Event-backend session whose data RPCs cross the shard boundary.

    The RPC-window credit discipline stays client-side (root domain);
    only the post-grant leg — latency, network transfer, OST service —
    runs in the server domain.  The yielded router event fires at the
    identical instant the legacy path's last leg would complete, so the
    credit release times match.
    """

    def _data_rpc(self, ost_index: int, object_id: int, obj_offset: int,
                  nbytes: int, is_write: bool, parent_span=None):
        cluster = self.node.cluster
        window = self.node.rpc_window(ost_index)
        tracer = _trace.TRACER
        span = tracer.start(
            "client.rpc", self.env.now, parent=parent_span,
            ost=ost_index, nbytes=nbytes, write=is_write, sharded=True,
        ) if tracer is not None else None
        yield window.acquire()
        try:
            yield cluster.router.send(is_write, ost_index, object_id,
                                      obj_offset, nbytes, self.node.index,
                                      self.job)
        finally:
            window.release()
        if span is not None:
            tracer.finish(span, self.env.now)


class _ShardDataOpDriver(_DataOpDriver):
    """Batch-backend driver that posts granted pieces to the router.

    Inherits :meth:`_DataOpDriver.begin`'s grant discipline verbatim and
    overrides only the grant hooks: the begin-time group posts as one
    columnar :meth:`ShardRouter.post_many` sharing a single ``grant + λ``
    effect stamp, queued pieces post solo when their FIFO grant fires.
    The post replaces the local ``rpc_latency`` timer — the router
    stamps the identical effect time the legacy path's shared timeout
    would fire at, so credit-release instants match across executors.
    """

    __slots__ = ()

    def _granted_one(self, i: int) -> None:
        req = self.req
        session = self.session
        session.node.cluster.router.post(
            self.is_write, req._ost[i], req._oid[i], req._ooff[i],
            req._nb[i], session.node.index, session.job,
            lambda i=i: self._piece_done(i),
        )

    def _granted_group(self, group: tuple[int, ...]) -> None:
        session = self.session
        session.node.cluster.router.post_many(
            self.is_write, self.req, group, session.node.index,
            session.job, self._piece_done,
        )


class ShardBatchSession(BatchSession):
    """Batch-backend session for the root domain of a sharded run."""

    driver_class = _ShardDataOpDriver
    span_attrs = {"sharded": True}


class ShardedRootCluster(Cluster):
    """The root domain: clients, MDS and namespace live; data RPCs are
    posted to the :class:`ShardRouter` instead of local OSTs.

    Built as a full :class:`Cluster` — the dormant root-side OST objects
    schedule no events until touched (caches flush lazily, disks idle),
    and keeping them preserves ``servers`` ordering and ``ServerId``
    bookkeeping without a parallel topology type.
    """

    def __init__(self, config: ClusterConfig | None = None) -> None:
        super().__init__(config)
        self.router = ShardRouter(self)

    def session(self, job: str, rank: int, node_index: int) -> ClientSession:
        node = self.nodes[node_index % len(self.nodes)]
        if self.config.sim_backend == "batch":
            return ShardBatchSession(node, job, rank, self.collector)
        return ShardClientSession(node, job, rank, self.collector)


class _DomainView:
    """Duck-typed :class:`ServerMonitor` target: a subset of one
    cluster's servers on that cluster's environment."""

    def __init__(self, cluster: Cluster, servers: list[ServerId]) -> None:
        self.env = cluster.env
        self.servers = servers
        self._cluster = cluster

    def server_counters(self, server: ServerId) -> dict[str, float]:
        return self._cluster.server_counters(server)


class DomainHost:
    """One OSS server domain on its own environment.

    Holds a full cluster replica (bit-identical construction whatever
    process hosts it) of which only this OSS's OSTs, its NIC link and
    the replica client links are exercised; a :class:`ServerMonitor`
    over just those OSTs samples on the same tick schedule as the root.
    Messages are injected at their effect times and walked through the
    same network-transfer + ``serve_fast`` chain as the batch backend.

    When tracing is on the host owns a **per-domain tracer** (installed
    as the module-global tracer while the domain simulates, here and in
    :meth:`run_window`), so the domain's spans never interleave with the
    coordinator's.  The merged trace is then shard-count invariant: root
    spans in root recording order, followed by each domain's spans in
    domain-index order, labelled ``domain{d}`` — the same stream whether
    the domain lived in-process or on a shard worker.
    """

    def __init__(self, config: ClusterConfig, domain_index: int,
                 sample_interval: float, tracer: _trace.Tracer | None = None,
                 spill_path: str | None = None) -> None:
        self.domain_index = domain_index
        self.tracer = tracer
        self.spill_path = spill_path
        self.spilled = 0
        saved = _trace.TRACER
        _trace.TRACER = tracer  # even None: never record into the root's
        try:
            self.cluster = Cluster(config)
            self.env = self.cluster.env
            self.ost_indices = list(config.domain_ost_indices(domain_index))
            servers = [self.cluster.osts[i].server_id
                       for i in self.ost_indices]
            self.monitor = ServerMonitor(_DomainView(self.cluster, servers),
                                         sample_interval=sample_interval)
            self.monitor.start()
        finally:
            _trace.TRACER = saved
        self._jobs: list[str] = []
        self.completions: list[tuple[int, float]] = []

    def add_jobs(self, new_jobs: list[tuple[int, str]]) -> None:
        for jid, name in new_jobs:
            if jid != len(self._jobs):
                raise SimulationError(
                    f"shard domain {self.domain_index}: job-id stream out "
                    f"of order ({jid} after {len(self._jobs)})"
                )
            self._jobs.append(name)

    def inject(self, batch: CrossShardBatch) -> None:
        """Schedule each message's arrival at its effect time.  Same-time
        arrivals keep batch order via the environment's sequence
        tie-break, so delivery order is shard-count invariant."""
        env = self.env
        now = env.now
        for k in range(len(batch.token)):
            ev = Event(env)
            ev._ok = True
            ev.callbacks.append(functools.partial(
                self._arrive, batch.kind[k], batch.ost[k], batch.oid[k],
                batch.ooff[k], batch.nb[k], batch.node[k], batch.job[k],
                batch.token[k],
            ))
            env._schedule(ev, batch.effect[k] - now)

    def _arrive(self, kind: int, oi: int, oid: int, ooff: int, nb: int,
                node: int, jid: int, token: int, _ev: Event) -> None:
        cluster = self.cluster
        ost = cluster.osts[oi]
        job = self._jobs[jid]
        links = cluster.route(cluster.client_links[node], ost.oss_link)
        if kind:  # write: payload crosses the fabric, then OST service
            cluster.net.transfer_batch([(
                nb, links,
                lambda: ost.serve_fast(oid, ooff, nb, job, True,
                                       lambda: self._complete(token)),
            )])
        else:  # read: OST service first, then the payload crosses back
            ost.serve_fast(
                oid, ooff, nb, job, False,
                lambda: cluster.net.transfer_batch(
                    [(nb, links, lambda: self._complete(token))]
                ),
            )

    def _complete(self, token: int) -> None:
        self.completions.append((token, self.env.now))

    def drain_completions(self) -> list[tuple[int, float]]:
        out, self.completions = self.completions, []
        return out

    def run_window(self, end: float, inclusive: bool) -> None:
        saved = _trace.TRACER
        _trace.TRACER = self.tracer
        try:
            self.env.run_to(end, self.tracer, inclusive=inclusive)
        finally:
            _trace.TRACER = saved

    def maybe_spill(self) -> None:
        """Spill finished spans once the buffer passes the threshold.

        Same threshold in every hosting mode, so the spill pattern (and
        with it the deterministic open-parent fallback in the merge) is
        shard-count invariant.
        """
        from repro.obs import distributed as _dist

        if (self.tracer is not None and self.spill_path is not None
                and len(self.tracer.spans) >= _dist.SPILL_THRESHOLD):
            self.spilled += _dist.spill_spans(self.tracer, self.spill_path)

    def ship_spans(self) -> dict[str, Any] | None:
        """This domain's span shipment (plus spool pointer when spilled)."""
        from repro.obs import distributed as _dist

        shipment = _dist.ship(self.tracer)
        if shipment is not None and self.spilled:
            shipment["spill_path"] = self.spill_path
            shipment["spilled"] = self.spilled
        return shipment


def run_hosts_guarded(
    hosts: "list[DomainHost]", stop: float, lookahead: float,
    active: set[int],
) -> tuple[list[tuple[int, list[tuple[int, float]]]], float, int]:
    """Advance ``hosts`` in λ-lockstep sub-windows without coordinator
    round-trips, under the **first-completion guard**.

    The caller guarantees the root is frozen for the whole span and that
    every undelivered message with effect < ``stop`` was injected before
    the call, so the only cross-domain information that can appear inside
    the span is a completion.  A completion at ``tc`` may wake the root,
    whose reaction posts take effect at ``tc + λ`` at the earliest —
    therefore the lockstep stops at the end of the first sub-window that
    produced any completion (its end is ≤ ``tc + λ`` by construction) or
    at ``stop``, whichever comes first.

    Only ``active`` domains (in-service messages or fresh injections) can
    complete, so sub-window pacing follows *their* horizons; that keeps
    the reached end — and with it the root's run chunking — identical for
    every domain→process partition, since the coordinator derives
    ``active`` without reference to the partition.  Inactive hosts still
    advance when they hold events inside a sub-window, but an inactive
    host on another worker may equally lag and catch up later: with
    nothing in service it can neither complete nor post, so its events
    touch no shared state.

    Returns ``(results, reached, subwindows)`` with every active host
    advanced to exactly ``reached`` (exclusive); sub-windows beyond the
    first are barriers the fixed policy would have paid.
    """
    guards = [h for h in hosts if h.domain_index in active]
    results: list[tuple[int, list[tuple[int, float]]]] = []
    subwindows = 0
    while True:
        frontier = min((h.env.peek() for h in guards), default=_INF)
        if frontier >= stop:
            return results, stop, subwindows
        end = frontier + lookahead
        if end > stop:
            end = stop
        got = False
        for host in hosts:
            if host.env.quiet_until(end, False):
                continue
            host.run_window(end, False)
            host.maybe_spill()
            comps = host.drain_completions()
            if comps:
                results.append((host.domain_index, comps))
                got = True
        subwindows += 1
        if got or end == stop:
            return results, end, subwindows


class LocalDomainGroup:
    """All server domains hosted in-process (``shards=1``, and the
    fallback inside daemonic pool workers where nested process spawning
    is forbidden).  Shares the coordinator's registry; spans go through
    the same per-domain tracers, spill spools and domain-order merge as
    the process-backed group, so the trace stream is identical either
    way."""

    def __init__(self, config: ClusterConfig, domains: list[int],
                 sample_interval: float) -> None:
        parent_tracer = _trace.get()
        self._tempdir = None
        if parent_tracer is not None:
            import tempfile

            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-shard-")
        self.hosts = [
            DomainHost(config, d, sample_interval,
                       tracer=(None if parent_tracer is None else
                               _trace.Tracer(trace_id=parent_tracer.trace_id)),
                       spill_path=(None if self._tempdir is None else
                                   f"{self._tempdir.name}/domain{d}.spans.jsonl"))
            for d in domains
        ]
        self.next_time = min((h.env.peek() for h in self.hosts),
                             default=_INF)

    def run_window(self, end: float, inclusive: bool,
                   outbox: dict[int, CrossShardBatch],
                   new_jobs: list[tuple[int, str]]
                   ) -> list[tuple[int, list[tuple[int, float]]]]:
        results = []
        nt = _INF
        for host in self.hosts:
            if new_jobs:
                host.add_jobs(new_jobs)
            batch = outbox.get(host.domain_index)
            if batch is None and host.env.quiet_until(end, inclusive):
                # Nothing arriving and nothing scheduled inside the
                # window: the host can neither complete a message nor
                # move its own horizon, so the (empty) run is skipped.
                t = host.env.peek()
                if t < nt:
                    nt = t
                continue
            if batch is not None:
                host.inject(batch)
            host.run_window(end, inclusive)
            host.maybe_spill()
            results.append((host.domain_index, host.drain_completions()))
            t = host.env.peek()
            if t < nt:
                nt = t
        self.next_time = nt
        return results

    def guarded_feasible(self, active: set[int]) -> bool:
        """In-process hosts always share one guard (the lockstep loop)."""
        return True

    def run_guarded(self, stop: float, lookahead: float,
                    outbox: dict[int, CrossShardBatch],
                    new_jobs: list[tuple[int, str]], active: set[int]
                    ) -> tuple[list[tuple[int, list[tuple[int, float]]]],
                               float, int]:
        for host in self.hosts:
            if new_jobs:
                host.add_jobs(new_jobs)
            batch = outbox.get(host.domain_index)
            if batch is not None:
                host.inject(batch)
        results, reached, subwindows = run_hosts_guarded(
            self.hosts, stop, lookahead, active)
        self.next_time = min((h.env.peek() for h in self.hosts),
                             default=_INF)
        return results, reached, subwindows

    def finish(self) -> dict[str, Any]:
        from repro.obs import distributed as _dist

        samples: list[tuple[float, ServerId, dict[str, float]]] = []
        events = 0
        for host in self.hosts:
            samples.extend(host.monitor.samples)
            events += host.env._seq
        parent_tracer = _trace.get()
        if parent_tracer is not None:
            for host in sorted(self.hosts, key=lambda h: h.domain_index):
                _dist.merge_spilled(parent_tracer, host.ship_spans(),
                                    worker=f"domain{host.domain_index}")
        return {"samples": samples, "events": events}

    def close(self) -> None:
        if self._tempdir is not None:
            self._tempdir.cleanup()


def _make_group(config: ClusterConfig, domains: list[int],
                sample_interval: float, shards: int):
    """Map server domains onto processes: ``shards`` is the total number
    of concurrently simulating processes, the calling process (root
    domain) included."""
    n_workers = min(max(0, shards - 1), len(domains))
    if n_workers > 0:
        import multiprocessing

        if multiprocessing.current_process().daemon:
            # Pool workers may not spawn children; in-process sharding is
            # bit-identical, just without the extra parallelism.
            logger.info(
                "sharded run inside a daemonic worker: hosting all %d "
                "server domains in-process", len(domains)
            )
        else:
            from repro.parallel.shardpool import ProcessDomainGroup

            return ProcessDomainGroup(config, domains, sample_interval,
                                      n_workers)
    return LocalDomainGroup(config, domains, sample_interval)


def execute_run_sharded(
    target: Workload,
    interference: "list[InterferenceSpec]",
    config: "ExperimentConfig",
    seed_salt: str = "",
    abort_at: float | None = None,
    shards: int = 1,
    window_policy: "WindowPolicy | str | None" = None,
) -> MonitoredRun:
    """Sharded counterpart of :func:`repro.experiments.runner.execute_run`.

    Produces a :class:`MonitoredRun` whose records, samples and derived
    vectors are bit-identical for every ``shards`` value *and* every
    ``window_policy``; both only choose how the executor schedules the
    same simulation (processes hosting domains, barriers per sim-second).
    """
    wall_start = time.perf_counter()
    if abort_at is not None and abort_at <= 0:
        raise ValueError(f"abort_at must be positive, got {abort_at}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    policy = WindowPolicy.resolve(window_policy)
    cfg = config.cluster
    lookahead = cfg.client.rpc_latency
    if lookahead <= 0:
        raise ValueError(
            "sharded execution needs rpc_latency > 0: the per-RPC latency "
            "is the conservative protocol's lookahead"
        )
    if lookahead >= config.sample_interval:
        raise ValueError(
            "sharded execution needs rpc_latency < sample_interval "
            f"({lookahead} >= {config.sample_interval})"
        )
    if policy.cap is not None and policy.cap >= config.sample_interval:
        raise ValueError(
            "adaptive window cap must be < sample_interval "
            f"({policy.cap} >= {config.sample_interval}): domain monitors "
            "tick every sample_interval, so wider spans are never provable"
        )
    logger.info(
        "execute_run_sharded: target=%s noise=%s seed=%d shards=%d "
        "domains=%d policy=%s", target.name,
        [spec.task for spec in interference] or "none", config.seed,
        shards, cfg.n_domains, policy.mode,
    )

    windows_counter = REGISTRY.counter("shard.windows")
    messages_counter = REGISTRY.counter("shard.messages")
    completions_counter = REGISTRY.counter("shard.completions")
    widened_counter = REGISTRY.counter("shard.windows_widened")
    elided_counter = REGISTRY.counter("shard.windows_elided")
    window_hist = REGISTRY.histogram("shard.window_wall_seconds")
    sim_hist = REGISTRY.histogram("shard.window_sim_seconds")

    cluster = ShardedRootCluster(cfg)
    router = cluster.router
    env = cluster.env
    monitor = ServerMonitor(
        _DomainView(cluster, [cluster.mds.server_id]),
        sample_interval=config.sample_interval,
    )
    monitor.start()
    group = _make_group(cfg, list(range(cfg.n_domains)),
                        config.sample_interval, shards)
    try:
        with _profile.phase("shard-run", target=target.name, shards=shards):
            noise_nodes = list(config.noise_nodes) or list(config.target_nodes)
            for spec_idx, spec in enumerate(interference):
                for copy in range(spec.instances):
                    workload = spec.build(copy)
                    workload.name = f"{workload.name}-{spec_idx}"
                    seed = derive_seed(config.seed, "noise", seed_salt,
                                       spec_idx, copy)
                    launch_interference(cluster, workload, noise_nodes, seed,
                                        record=False)

            t_done: list[float] = []
            adaptive = policy.adaptive
            cap = (policy.cap if policy.cap is not None
                   else config.sample_interval)
            single_domain = cfg.n_domains == 1
            # Messages injected into each domain but not yet completed
            # (the guarded round's activity set: only these domains can
            # produce a completion, everything else may safely lag).
            in_service = [0] * cfg.n_domains
            busy = 0

            def _take(end: float, inclusive: bool):
                nonlocal busy
                outbox, new_jobs = router.take_outbox(end, inclusive)
                for domain, batch in outbox.items():
                    k = len(batch.token)
                    in_service[domain] += k
                    busy += k
                return outbox, new_jobs

            def _deliver(results) -> int:
                nonlocal busy
                if single_domain:
                    # One domain's completions are already time-ordered
                    # (appended as its clock advances, heap ties resolved
                    # by its own sequence numbers): skip the merge sort.
                    merged = [(when, 0, token)
                              for _domain, comps in results
                              for token, when in comps]
                else:
                    merged = [
                        (when, domain, token)
                        for domain, comps in results
                        for token, when in comps
                    ]
                    merged.sort(key=lambda row: (row[0], row[1]))
                for when, domain, token in merged:
                    router.deliver(token, when)
                    in_service[domain] -= 1
                busy -= len(merged)
                return len(merged)

            def _window(end: float, inclusive: bool) -> None:
                t0 = time.perf_counter()
                begin = env.now
                if router.pending:
                    outbox, new_jobs = _take(end, inclusive)
                else:
                    # Nothing posted since the last take: the outbox scan
                    # and the (always-empty) new-jobs drain are no-ops.
                    outbox, new_jobs = {}, []
                results = group.run_window(end, inclusive, outbox, new_jobs)
                delivered = _deliver(results)
                env.run_to(end, _trace.TRACER, inclusive)
                windows_counter.inc()
                if outbox:
                    messages_counter.inc(
                        sum(len(b) for b in outbox.values()))
                completions_counter.inc(delivered)
                window_hist.observe(time.perf_counter() - t0)
                sim_hist.observe(end - begin)

            def _frontier() -> float:
                return min(env.peek(), group.next_time, router.min_effect())

            def _run_root_quiet(stop: float) -> float:
                """Run the root alone through ``[now, stop)`` under the
                first-post guard: a message posted at ``t`` shrinks the
                safe horizon to its effect ``t + λ`` (later posts have
                later effects, so one shrink suffices).  Returns the
                actual end reached."""
                queue = env._queue
                step = env._step
                tracer = _trace.TRACER
                posted = router.messages_posted
                while queue and queue[0][0] < stop:
                    step(queue, tracer)
                    if router.messages_posted != posted:
                        posted = router.messages_posted
                        eff = router.min_effect()
                        if eff < stop:
                            stop = eff
                return stop

            def _try_widen(frontier: float, bound: float | None) -> bool:
                """Attempt a widened root-only span from ``frontier``.

                Safe ⟺ the outbox is empty (no undelivered effect; and
                because effects are monotone in post order, a pending
                message always pins the frontier within ``λ`` of its
                effect) and every domain's horizon clears the span.  Only
                spans strictly wider than one fixed window are worth the
                attempt; a span never crosses ``bound`` (the run deadline
                or a pump boundary).
                """
                if not adaptive or router.pending:
                    return False
                horizon = min(group.next_time, frontier + cap)
                if bound is not None and horizon > bound:
                    horizon = bound
                if horizon <= frontier + lookahead:
                    return False
                actual = _run_root_quiet(horizon)
                widened_counter.inc()
                span = actual - frontier
                elided_counter.inc(max(0, math.ceil(span / lookahead) - 1))
                sim_hist.observe(span)
                if policy.audit is not None:
                    policy.audit.append({
                        "kind": "root",
                        "begin": frontier,
                        "planned": horizon,
                        "end": actual,
                        "min_effect": router.min_effect(),
                        "domain_next": group.next_time,
                        "root_next": env.peek(),
                    })
                return True

            def _try_guarded(frontier: float, bound: float | None) -> bool:
                """Attempt a guarded domain-ahead round from ``frontier``.

                When domain activity (not the root) paces the run, the
                group may advance many λ-sub-windows in one coordinator
                round: with the outbox drained below ``stop`` and the
                root frozen, new root posts can only take effect at
                ``env.peek() + λ`` or later, and the round's internal
                first-completion guard stops the lockstep within ``λ``
                of any completion — so every cross-domain effect still
                lands at or after the reached end.  The round then
                delivers and runs the root once, exactly as a fixed
                window would.
                """
                if not adaptive or (busy == 0 and not router.pending):
                    return False
                stop = min(env.peek() + lookahead, frontier + cap)
                if bound is not None and stop > bound:
                    stop = bound
                if stop <= frontier + lookahead:
                    return False
                if single_domain:
                    # One domain group: the activity set is constant and
                    # a single guard is trivially global — skip the set
                    # construction and the feasibility probe outright.
                    active = _SINGLE_DOMAIN
                else:
                    active = {d for d in range(cfg.n_domains)
                              if in_service[d]}
                    active.update(router.outbox_domains())
                    if not group.guarded_feasible(active):
                        return False
                t0 = time.perf_counter()
                if router.pending:
                    outbox, new_jobs = _take(stop, False)
                else:
                    outbox, new_jobs = {}, []
                results, reached, sub = group.run_guarded(
                    stop, lookahead, outbox, new_jobs, active)
                delivered = _deliver(results)
                if sub == 0 and delivered == 0 and not outbox:
                    # Every active horizon already cleared ``stop`` and
                    # nothing moved: an inactive host's event is pacing
                    # the frontier.  Fall through to a fixed window so
                    # it fires and the frontier advances.
                    return False
                env.run_to(reached, _trace.TRACER, False)
                windows_counter.inc()
                widened_counter.inc()
                elided_counter.inc(max(0, sub - 1))
                if outbox:
                    messages_counter.inc(
                        sum(len(b) for b in outbox.values()))
                completions_counter.inc(delivered)
                window_hist.observe(time.perf_counter() - t0)
                sim_hist.observe(reached - frontier)
                if policy.audit is not None:
                    policy.audit.append({
                        "kind": "guarded",
                        "begin": frontier,
                        "planned": stop,
                        "end": reached,
                        "subwindows": sub,
                        "completions": delivered,
                        "min_effect": router.min_effect(),
                        "domain_next": group.next_time,
                        "root_next": env.peek(),
                    })
                return True

            def _pump_to(boundary: float) -> None:
                """Advance every domain until nothing is pending before
                ``boundary`` (events at exactly ``boundary`` stay)."""
                while True:
                    frontier = _frontier()
                    if frontier >= boundary:
                        return
                    if frontier == _INF:
                        raise SimulationError(
                            "sharded run drained before reaching "
                            f"t={boundary}"
                        )
                    if _try_widen(frontier, boundary):
                        continue
                    if _try_guarded(frontier, boundary):
                        continue
                    _window(min(frontier + lookahead, boundary),
                            inclusive=False)

            if interference and config.warmup > 0:
                _pump_to(config.warmup)
                _window(config.warmup, inclusive=True)
                env.now = max(env.now, config.warmup)

            target_seed = derive_seed(config.seed, "target", target.name)
            handle = launch(cluster, target, list(config.target_nodes),
                            target_seed)
            handle.done.callbacks.append(lambda _ev: t_done.append(env.now))

            deadline = (abort_at + config.sample_interval
                        if abort_at is not None else None)
            while True:
                if deadline is None and t_done:
                    deadline = t_done[0] + config.sample_interval
                frontier = _frontier()
                if frontier == _INF:
                    raise SimulationError(
                        "event loop drained before the target completed"
                    )
                if _try_widen(frontier, deadline):
                    continue
                if _try_guarded(frontier, deadline):
                    continue
                end = frontier + lookahead
                if deadline is not None and end >= deadline:
                    _pump_to(deadline)
                    _window(deadline, inclusive=True)
                    break
                _window(end, inclusive=False)

            aborted = abort_at is not None and (
                not t_done or t_done[0] > abort_at
            )
            if aborted:
                logger.warning("run %s aborted at t=%.3fs (fault injection)",
                               target.name, abort_at)
            duration = deadline
            env.now = max(env.now, duration)

            finish = group.finish()
            order = {sid: i for i, sid in enumerate(cluster.servers)}
            rows = [row for row in finish["samples"] + monitor.samples
                    if row[0] <= duration]
            rows.sort(key=lambda row: (row[0], order[row[1]]))
            REGISTRY.gauge("shard.events_scheduled").set(
                env._seq + finish["events"])
    finally:
        group.close()

    run = MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=rows,
        servers=cluster.servers,
        duration=duration,
        metadata={
            "interference": [spec.task for spec in interference],
            "instances": sum(spec.instances for spec in interference),
            "warmup": config.warmup if interference else 0.0,
            "seed": config.seed,
            "target_nodes": list(config.target_nodes),
            "window_size": config.window_size,
            "sample_interval": config.sample_interval,
            "sharded": True,
            **({"aborted": True, "abort_at": abort_at} if aborted else {}),
        },
    )
    logger.info(
        "execute_run_sharded done: %s finished at t=%.3fs sim (%d records, "
        "%d samples, %d messages, %.2fs wall)",
        target.name, run.duration, len(run.records),
        len(run.server_samples), router.messages_posted,
        time.perf_counter() - wall_start,
    )
    return run
