"""Node-local burst buffer tier (the paper's §V mitigation substrate).

The related work the paper positions against includes burst-buffer
orchestration (Trio, Kougkas et al.): absorb an application's write
bursts into fast node-local storage and drain them to the PFS in the
background, so the application never waits on a contended OST. This
module implements that tier:

* :class:`BurstBuffer` — one node-local staging device (NVMe-class write
  bandwidth, bounded capacity) with a background drainer that replays
  buffered extents to the PFS through a hidden (untraced) client session,
  so drain traffic exercises the full striping/RPC/QoS path and *does*
  contend like any other writer;
* :class:`BurstBufferedSession` — wraps a normal
  :class:`~repro.sim.client.ClientSession`: writes complete at burst
  buffer speed (and are recorded with that latency, which is exactly the
  interference-shielding effect), reads of still-buffered extents are
  served locally, everything else passes through.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.units import GIB, MIB
from repro.sim.client import ClientSession, NullCollector
from repro.sim.engine import Environment, Event

__all__ = ["BurstBufferParams", "BurstBuffer", "BurstBufferedSession"]


@dataclass(frozen=True)
class BurstBufferParams:
    """One node-local staging device."""

    capacity_bytes: int = 4 * GIB
    #: Local absorb bandwidth (NVMe-class).
    write_bandwidth: float = 2 * GIB
    #: Local read-back bandwidth for buffered data.
    read_bandwidth: float = 3 * GIB
    #: Fixed per-operation latency of the local device.
    op_latency: float = 30e-6

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")


class BurstBuffer:
    """Staging space plus a background drainer to the PFS."""

    def __init__(self, env: Environment, drain_session: ClientSession,
                 params: BurstBufferParams | None = None) -> None:
        self.env = env
        self.params = params or BurstBufferParams()
        self._drain_session = drain_session
        self.level = 0  # bytes buffered, not yet drained
        self.absorbed_bytes = 0
        self.drained_bytes = 0
        self._pending: deque[tuple[str, int, int]] = deque()
        self._waiters: deque[tuple[Event, int]] = deque()
        #: (path, chunk_index) extents currently resident, for read-back.
        self._resident: dict[tuple[str, int], int] = {}
        self._chunk = 1 * MIB
        self._drainer_running = False

    # -- residency tracking ---------------------------------------------------

    def _chunks(self, path: str, offset: int, size: int):
        first = offset // self._chunk
        last = (offset + max(1, size) - 1) // self._chunk
        return ((path, c) for c in range(first, last + 1))

    def holds(self, path: str, offset: int, size: int) -> bool:
        return all(self._resident.get(key, 0) > 0
                   for key in self._chunks(path, offset, size))

    # -- write path --------------------------------------------------------------

    def write(self, path: str, offset: int, size: int):
        """Absorb a write locally; returns when it is safe in the buffer."""
        if size <= 0:
            raise ValueError(f"write size must be positive, got {size}")
        if size > self.params.capacity_bytes:
            raise ValueError("write larger than the whole burst buffer")
        while self.level + size > self.params.capacity_bytes:
            gate = Event(self.env)
            self._waiters.append((gate, size))
            self._kick_drainer()
            yield gate
        self.level += size
        self.absorbed_bytes += size
        yield self.env.timeout(
            self.params.op_latency + size / self.params.write_bandwidth
        )
        for key in self._chunks(path, offset, size):
            self._resident[key] = self._resident.get(key, 0) + 1
        self._pending.append((path, offset, size))
        self._kick_drainer()

    def read_local(self, size: int):
        """Serve a read from the local device."""
        yield self.env.timeout(
            self.params.op_latency + size / self.params.read_bandwidth
        )

    # -- drainer -------------------------------------------------------------------

    def _kick_drainer(self) -> None:
        if not self._drainer_running and self._pending:
            self._drainer_running = True
            self.env.process(self._drain_loop())

    def _drain_loop(self):
        session = self._drain_session
        while self._pending:
            path, offset, size = self._pending.popleft()
            yield from session.write(path, offset, size)
            self.level -= size
            self.drained_bytes += size
            for key in self._chunks(path, offset, size):
                remaining = self._resident.get(key, 0) - 1
                if remaining <= 0:
                    self._resident.pop(key, None)
                else:
                    self._resident[key] = remaining
            while self._waiters:
                gate, need = self._waiters[0]
                if self.level + need > self.params.capacity_bytes:
                    break
                self._waiters.popleft()
                gate.succeed()
        self._drainer_running = False


class BurstBufferedSession:
    """A ClientSession whose writes are absorbed by a burst buffer.

    Mirrors the generator API of :class:`ClientSession`; construct with
    :meth:`attach`, which wires the hidden drain session on the same
    compute node.
    """

    def __init__(self, inner: ClientSession, buffer: BurstBuffer) -> None:
        self.inner = inner
        self.buffer = buffer

    @classmethod
    def attach(cls, session: ClientSession,
               params: BurstBufferParams | None = None) -> "BurstBufferedSession":
        """Wrap ``session`` with a node-local burst buffer.

        The hidden drain session comes from the cluster's session
        factory, so drain traffic follows the active request path
        (event, batch or sharded) instead of always taking the
        per-request event path.
        """
        node = session.node
        drain = node.cluster.session(f"{session.job}-bbdrain",
                                     session.rank, node.index)
        drain.collector = NullCollector()
        return cls(session, BurstBuffer(session.env, drain, params))

    # -- delegated namespace/metadata ops ------------------------------------------

    def create(self, path: str, stripe_count: int = 1,
               stripe_size: int | None = None):
        yield from self.inner.create(path, stripe_count, stripe_size)

    def open(self, path: str):
        yield from self.inner.open(path)

    def close(self, path: str):
        yield from self.inner.close(path)

    def stat(self, path: str):
        yield from self.inner.stat(path)

    def unlink(self, path: str):
        yield from self.inner.unlink(path)

    def mkdir(self, path: str):
        yield from self.inner.mkdir(path)

    # -- buffered data path -----------------------------------------------------------

    def write(self, path: str, offset: int, size: int):
        """Absorb locally; recorded with the local (fast) latency."""
        from repro.common.records import IORecord, OpType

        start = self.inner.env.now
        yield self.inner.env.process(self.buffer.write(path, offset, size))
        f = self.inner.node.cluster.fs.lookup(path)
        f.size = max(f.size, offset + size)
        rec = IORecord(
            job=self.inner.job,
            rank=self.inner.rank,
            op_id=self.inner._next_op_id(),
            op=OpType.WRITE,
            path=path,
            offset=offset,
            size=size,
            start=start,
            end=self.inner.env.now,
            servers=tuple(),  # absorbed locally; no PFS server touched yet
        )
        self.inner.collector.add(rec)

    def read(self, path: str, offset: int, size: int):
        """Serve from the buffer when resident, else from the PFS."""
        if self.buffer.holds(path, offset, size):
            from repro.common.records import IORecord, OpType

            start = self.inner.env.now
            yield self.inner.env.process(self.buffer.read_local(size))
            rec = IORecord(
                job=self.inner.job, rank=self.inner.rank,
                op_id=self.inner._next_op_id(), op=OpType.READ, path=path,
                offset=offset, size=size, start=start,
                end=self.inner.env.now, servers=tuple(),
            )
            self.inner.collector.add(rec)
        else:
            yield from self.inner.read(path, offset, size)
