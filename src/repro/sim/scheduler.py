"""Block-layer I/O scheduler: elevator ordering plus request merging.

Sits between the OST/MDT logic and the :class:`~repro.sim.disk.DiskModel`.
Pending requests wait in a queue; the dispatcher picks the next request in
C-LOOK elevator order (smallest LBA at or beyond the head, wrapping to the
lowest LBA), merges queued requests that are contiguous with it (same
direction), and serves the merged extent in one disk operation. Merges and
queue occupancy feed the :class:`~repro.sim.disk.DiskStats` counters that
the paper's Table II metrics are sampled from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import SECTOR_SIZE
from repro.obs import trace as _trace
from repro.sim.disk import DiskModel, DiskStats
from repro.sim.engine import Environment, Event

__all__ = ["BlockRequest", "BlockDevice"]


@dataclass
class BlockRequest:
    """One request queued at the block layer.

    ``done`` is an :class:`Event` succeeded at completion, or (batch
    backend) a no-argument callable invoked directly at the completion
    tick — same timestamp, no Event allocation.
    """

    lba: int
    sectors: int
    is_write: bool
    done: "Event | object"
    enqueue_time: float = field(default=0.0)

    @property
    def end_lba(self) -> int:
        return self.lba + self.sectors


class BlockDevice:
    """A disk with an elevator/merging scheduler and diskstats counters."""

    #: Largest merged extent dispatched as one disk op (sectors). Mirrors
    #: typical ``max_sectors_kb`` of 1280 KiB.
    MAX_MERGED_SECTORS = 2560

    #: Consecutive read batches dispatched before a pending write gets a
    #: turn — the deadline scheduler's ``writes_starved`` policy. This is
    #: what keeps synchronous reads nearly immune to background writeback
    #: (the paper's Table I: ``ior-easy-read`` slows 1.004x under
    #: ``ior-easy-write`` interference). Higher than the kernel default of
    #: 2 because our dispatch units are coarse merged extents (~1.25 MiB,
    #: ~10 ms each), so one write turn costs a reader proportionally more
    #: than one request-sized turn does on real hardware.
    WRITES_STARVED_LIMIT = 5

    def __init__(self, env: Environment, model: DiskModel, name: str = "disk") -> None:
        self.env = env
        self.model = model
        self.name = name
        self.stats = DiskStats()
        self._queue: list[BlockRequest] = []
        self._busy = False
        self._in_service = 0
        self._writes_starved = 0
        #: Fail-slow fault injection: every service time is multiplied by
        #: this factor (Perseus-style device degradation; see
        #: repro.experiments.failslow).
        self.slowdown_factor = 1.0

    def inject_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the device: service times scale by
        ``factor`` from now on. ``1.0`` restores nominal speed."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self.slowdown_factor = factor

    # -- public API --------------------------------------------------------

    def submit(self, lba: int, sectors: int, is_write: bool) -> Event:
        """Queue a request; the returned event fires at completion."""
        if sectors <= 0:
            raise ValueError(f"block request needs >= 1 sector, got {sectors}")
        req = BlockRequest(lba, sectors, is_write, Event(self.env), self.env.now)
        self.stats.on_enqueue(self.env.now)
        self._queue.append(req)
        self._kick()
        return req.done

    def submit_batch(self, extents, is_write: bool, on_all_done) -> int:
        """Queue many same-direction requests arriving at one instant.

        ``extents`` is an iterable of ``(lba, sectors)``;
        ``on_all_done()`` runs at the tick the last one completes (the
        batch backend's replacement for per-request Events + AllOf).
        Returns the number of requests queued.
        """
        now = self.env.now
        pending = [0]

        def _one_done() -> None:
            pending[0] -= 1
            if pending[0] == 0:
                on_all_done()

        n = 0
        for lba, sectors in extents:
            if sectors <= 0:
                raise ValueError(f"block request needs >= 1 sector, got {sectors}")
            self._queue.append(BlockRequest(lba, sectors, is_write, _one_done, now))
            n += 1
        # Counters and the dispatch kick happen after the whole batch is
        # queued; dispatch itself is deferred a tick, so no completion can
        # race the pending count.
        pending[0] = n
        if n:
            self.stats.on_enqueue_batch(now, n)
            self._kick()
        return n

    def submit_bytes(self, byte_offset: int, nbytes: int, is_write: bool) -> Event:
        """Convenience wrapper converting a byte extent to sectors."""
        lba = byte_offset // SECTOR_SIZE
        end = -(-(byte_offset + max(1, nbytes)) // SECTOR_SIZE)
        return self.submit(lba, end - lba, is_write)

    def submit_bytes_batch(self, extents, is_write: bool, on_all_done) -> int:
        """Byte-extent counterpart of :meth:`submit_batch`."""
        def _sectors():
            for byte_offset, nbytes in extents:
                lba = byte_offset // SECTOR_SIZE
                end = -(-(byte_offset + max(1, nbytes)) // SECTOR_SIZE)
                yield lba, end - lba
        return self.submit_batch(_sectors(), is_write, on_all_done)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in queue plus requests being serviced."""
        return len(self._queue) + self._in_service

    # -- scheduling core -----------------------------------------------------

    def _pick_next(self) -> BlockRequest:
        """Read-priority C-LOOK elevator.

        Reads are dispatched ahead of writes (deadline-scheduler
        behaviour) unless writes have been starved ``WRITES_STARVED_LIMIT``
        times; within the chosen direction pool, pick the lowest LBA at or
        beyond the head, wrapping to the lowest LBA overall.
        """
        reads = [r for r in self._queue if not r.is_write]
        writes = [r for r in self._queue if r.is_write]
        if reads and (not writes or self._writes_starved < self.WRITES_STARVED_LIMIT):
            pool = reads
            if writes:
                self._writes_starved += 1
        else:
            pool = writes if writes else reads
            self._writes_starved = 0
        head = self.model.head_lba
        ahead = [r for r in pool if r.lba >= head]
        pool = ahead if ahead else pool
        chosen = min(pool, key=lambda r: (r.lba, r.enqueue_time))
        self._queue.remove(chosen)
        return chosen

    def _collect_merges(self, first: BlockRequest) -> list[BlockRequest]:
        """Pull queued requests contiguous with ``first`` (front and back)."""
        batch = [first]
        lo, hi = first.lba, first.end_lba
        budget = self.MAX_MERGED_SECTORS - first.sectors
        progress = True
        while progress and budget > 0:
            progress = False
            for req in list(self._queue):
                if req.is_write != first.is_write or req.sectors > budget:
                    continue
                if req.lba == hi:
                    batch.append(req)
                    hi = req.end_lba
                elif req.end_lba == lo:
                    batch.append(req)
                    lo = req.lba
                else:
                    continue
                self._queue.remove(req)
                self.stats.on_merge(req.is_write)
                budget -= req.sectors
                progress = True
        return batch

    def _kick(self) -> None:
        """Start the dispatcher if idle.

        The first look at the queue is deferred one tick (like the old
        dispatch Process's init event), so every same-instant submission
        is visible to the elevator before anything is picked.
        """
        if not self._busy:
            self._busy = True
            self.env.defer(self._dispatch_step)

    def _dispatch_step(self, _ev=None) -> None:
        """Pick/merge/serve one extent; chains itself until the queue drains."""
        if not self._queue:
            self._busy = False
            return
        first = self._pick_next()
        batch = self._collect_merges(first)
        lo = min(r.lba for r in batch)
        hi = max(r.end_lba for r in batch)
        sectors = hi - lo
        service = self.model.service_time(lo, sectors) * self.slowdown_factor
        tracer = _trace.TRACER
        span = tracer.start(
            "disk.io", self.env.now, device=self.name, lba=lo,
            sectors=sectors, write=first.is_write, merged=len(batch),
        ) if tracer is not None else None
        self._in_service = len(batch)
        self.env.after(
            service,
            lambda _ev: self._complete(batch, first.is_write, sectors, service, span),
        )

    def _complete(self, batch, is_write: bool, sectors: int, service: float,
                  span) -> None:
        self._in_service = 0
        if span is not None:
            tracer = _trace.TRACER
            if tracer is not None:
                tracer.finish(span, self.env.now)
        self.stats.on_complete(
            self.env.now, is_write, sectors, service, nrequests=len(batch)
        )
        for req in batch:
            done = req.done
            if type(done) is Event:
                done.succeed()
            else:
                done()
        self._dispatch_step()
