"""Block-layer I/O scheduler: elevator ordering plus request merging.

Sits between the OST/MDT logic and the :class:`~repro.sim.disk.DiskModel`.
Pending requests wait in a queue; the dispatcher picks the next request in
C-LOOK elevator order (smallest LBA at or beyond the head, wrapping to the
lowest LBA), merges queued requests that are contiguous with it (same
direction), and serves the merged extent in one disk operation. Merges and
queue occupancy feed the :class:`~repro.sim.disk.DiskStats` counters that
the paper's Table II metrics are sampled from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import SECTOR_SIZE
from repro.obs import trace as _trace
from repro.sim.disk import DiskModel, DiskStats
from repro.sim.engine import Environment, Event

__all__ = ["BlockRequest", "BlockDevice"]


@dataclass
class BlockRequest:
    """One request queued at the block layer."""

    lba: int
    sectors: int
    is_write: bool
    done: Event
    enqueue_time: float = field(default=0.0)

    @property
    def end_lba(self) -> int:
        return self.lba + self.sectors


class BlockDevice:
    """A disk with an elevator/merging scheduler and diskstats counters."""

    #: Largest merged extent dispatched as one disk op (sectors). Mirrors
    #: typical ``max_sectors_kb`` of 1280 KiB.
    MAX_MERGED_SECTORS = 2560

    #: Consecutive read batches dispatched before a pending write gets a
    #: turn — the deadline scheduler's ``writes_starved`` policy. This is
    #: what keeps synchronous reads nearly immune to background writeback
    #: (the paper's Table I: ``ior-easy-read`` slows 1.004x under
    #: ``ior-easy-write`` interference). Higher than the kernel default of
    #: 2 because our dispatch units are coarse merged extents (~1.25 MiB,
    #: ~10 ms each), so one write turn costs a reader proportionally more
    #: than one request-sized turn does on real hardware.
    WRITES_STARVED_LIMIT = 5

    def __init__(self, env: Environment, model: DiskModel, name: str = "disk") -> None:
        self.env = env
        self.model = model
        self.name = name
        self.stats = DiskStats()
        self._queue: list[BlockRequest] = []
        self._busy = False
        self._in_service = 0
        self._writes_starved = 0
        #: Fail-slow fault injection: every service time is multiplied by
        #: this factor (Perseus-style device degradation; see
        #: repro.experiments.failslow).
        self.slowdown_factor = 1.0

    def inject_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the device: service times scale by
        ``factor`` from now on. ``1.0`` restores nominal speed."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self.slowdown_factor = factor

    # -- public API --------------------------------------------------------

    def submit(self, lba: int, sectors: int, is_write: bool) -> Event:
        """Queue a request; the returned event fires at completion."""
        if sectors <= 0:
            raise ValueError(f"block request needs >= 1 sector, got {sectors}")
        req = BlockRequest(lba, sectors, is_write, Event(self.env), self.env.now)
        self.stats.on_enqueue(self.env.now)
        self._queue.append(req)
        if not self._busy:
            self._busy = True
            self.env.process(self._dispatch_loop())
        return req.done

    def submit_bytes(self, byte_offset: int, nbytes: int, is_write: bool) -> Event:
        """Convenience wrapper converting a byte extent to sectors."""
        lba = byte_offset // SECTOR_SIZE
        end = -(-(byte_offset + max(1, nbytes)) // SECTOR_SIZE)
        return self.submit(lba, end - lba, is_write)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in queue plus requests being serviced."""
        return len(self._queue) + self._in_service

    # -- scheduling core -----------------------------------------------------

    def _pick_next(self) -> BlockRequest:
        """Read-priority C-LOOK elevator.

        Reads are dispatched ahead of writes (deadline-scheduler
        behaviour) unless writes have been starved ``WRITES_STARVED_LIMIT``
        times; within the chosen direction pool, pick the lowest LBA at or
        beyond the head, wrapping to the lowest LBA overall.
        """
        reads = [r for r in self._queue if not r.is_write]
        writes = [r for r in self._queue if r.is_write]
        if reads and (not writes or self._writes_starved < self.WRITES_STARVED_LIMIT):
            pool = reads
            if writes:
                self._writes_starved += 1
        else:
            pool = writes if writes else reads
            self._writes_starved = 0
        head = self.model.head_lba
        ahead = [r for r in pool if r.lba >= head]
        pool = ahead if ahead else pool
        chosen = min(pool, key=lambda r: (r.lba, r.enqueue_time))
        self._queue.remove(chosen)
        return chosen

    def _collect_merges(self, first: BlockRequest) -> list[BlockRequest]:
        """Pull queued requests contiguous with ``first`` (front and back)."""
        batch = [first]
        lo, hi = first.lba, first.end_lba
        budget = self.MAX_MERGED_SECTORS - first.sectors
        progress = True
        while progress and budget > 0:
            progress = False
            for req in list(self._queue):
                if req.is_write != first.is_write or req.sectors > budget:
                    continue
                if req.lba == hi:
                    batch.append(req)
                    hi = req.end_lba
                elif req.end_lba == lo:
                    batch.append(req)
                    lo = req.lba
                else:
                    continue
                self._queue.remove(req)
                self.stats.on_merge(req.is_write)
                budget -= req.sectors
                progress = True
        return batch

    def _dispatch_loop(self):
        while self._queue:
            first = self._pick_next()
            batch = self._collect_merges(first)
            lo = min(r.lba for r in batch)
            hi = max(r.end_lba for r in batch)
            sectors = hi - lo
            service = self.model.service_time(lo, sectors) * self.slowdown_factor
            tracer = _trace.TRACER
            span = tracer.start(
                "disk.io", self.env.now, device=self.name, lba=lo,
                sectors=sectors, write=first.is_write, merged=len(batch),
            ) if tracer is not None else None
            self._in_service = len(batch)
            yield self.env.timeout(service)
            self._in_service = 0
            if span is not None:
                tracer.finish(span, self.env.now)
            self.stats.on_complete(
                self.env.now, first.is_write, sectors, service, nrequests=len(batch)
            )
            for req in batch:
                req.done.succeed()
        self._busy = False
