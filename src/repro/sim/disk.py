"""Rotational disk service model and ``/proc/diskstats``-style counters.

The paper's storage servers use 7200 RPM SATA3 disks, and its Table II
server metrics are the classic block-layer counters: completed I/Os,
sectors read/written, merged requests, queue insertions and queue wait
times. :class:`DiskModel` computes per-request service times from seek,
rotational and transfer components; :class:`DiskStats` mirrors the
diskstats fields so the server-side monitor can sample them exactly as a
real deployment samples ``/proc/diskstats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.units import MIB, SECTOR_SIZE

__all__ = ["DiskParams", "DiskModel", "FlashParams", "FlashModel",
           "DiskStats", "make_disk_model"]


@dataclass(frozen=True)
class DiskParams:
    """Mechanical characteristics of a rotational disk.

    Defaults approximate a 1 TB 7200 RPM SATA3 drive like the testbed's:
    ~150 MB/s sequential streaming, ~8.5 ms average seek, 4.17 ms average
    rotational latency (half a revolution at 7200 RPM).
    """

    capacity_bytes: int = 1000 * 1000 * MIB
    sequential_bandwidth: float = 150 * MIB  # bytes/s
    seek_min: float = 0.5e-3  # track-to-track seek, seconds
    seek_avg: float = 8.5e-3  # average (third-stroke) seek, seconds
    rpm: float = 7200.0

    @property
    def total_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_SIZE

    @property
    def rotational_latency_avg(self) -> float:
        """Average rotational latency: half a revolution."""
        return 0.5 * 60.0 / self.rpm


class DiskModel:
    """Computes service times for block requests against one disk.

    The model keeps the head position (last LBA touched); a request
    contiguous with the previous one streams at full sequential bandwidth,
    anything else pays a distance-scaled seek plus average rotational
    latency. This is what makes competing sequential read streams slow
    each other down dramatically (the paper's Table I read-read cells)
    while a single stream runs at full speed.
    """

    def __init__(self, params: DiskParams) -> None:
        self.params = params
        self._head_lba = 0

    @property
    def head_lba(self) -> int:
        return self._head_lba

    def service_time(self, lba: int, sectors: int) -> float:
        """Seconds to serve ``sectors`` starting at ``lba``; moves the head."""
        if sectors <= 0:
            raise ValueError(f"request must cover >= 1 sector, got {sectors}")
        if lba < 0:
            raise ValueError(f"negative LBA: {lba}")
        p = self.params
        positioning = 0.0
        if lba != self._head_lba:
            distance = abs(lba - self._head_lba)
            # Seek time grows sub-linearly with distance; a linear ramp
            # between min and ~2x avg at full stroke is a standard simple fit.
            frac = min(1.0, distance / max(1, p.total_sectors))
            positioning = p.seek_min + frac * (2.0 * p.seek_avg - p.seek_min)
            positioning += p.rotational_latency_avg
        transfer = sectors * SECTOR_SIZE / p.sequential_bandwidth
        self._head_lba = lba + sectors
        return positioning + transfer

    def service_batch(self, lbas, sectors) -> np.ndarray:
        """Vectorised service times for requests served back-to-back.

        Element *i* is served with the head where request *i-1* left it,
        exactly as ``len(lbas)`` sequential :meth:`service_time` calls
        (same elementwise float operations, so results match bit for
        bit). Moves the head to the end of the last request.
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        secs = np.asarray(sectors, dtype=np.int64)
        if lbas.size == 0:
            return np.zeros(0)
        if (secs <= 0).any():
            raise ValueError("batch request must cover >= 1 sector each")
        if (lbas < 0).any():
            raise ValueError("negative LBA in batch")
        p = self.params
        ends = lbas + secs
        prev = np.concatenate(([self._head_lba], ends[:-1]))
        distance = np.abs(lbas - prev)
        frac = np.minimum(1.0, distance / max(1, p.total_sectors))
        positioning = np.where(
            distance > 0,
            p.seek_min + frac * (2.0 * p.seek_avg - p.seek_min)
            + p.rotational_latency_avg,
            0.0,
        )
        transfer = secs * SECTOR_SIZE / p.sequential_bandwidth
        self._head_lba = int(ends[-1])
        return positioning + transfer


@dataclass(frozen=True)
class FlashParams:
    """Characteristics of a SATA/NVMe flash device (no mechanical parts).

    Used by the device ablation: on flash, the seek-amplification that
    drives the paper's extreme read/read interference disappears, leaving
    only bandwidth sharing — a qualitatively different Table I.
    """

    capacity_bytes: int = 1000 * 1000 * MIB
    read_bandwidth: float = 500 * MIB
    write_bandwidth: float = 450 * MIB
    #: Fixed per-command latency (FTL + interface).
    command_latency: float = 80e-6

    @property
    def total_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_SIZE


class FlashModel:
    """Service-time model for a flash device: latency + transfer, no seeks.

    Interface-compatible with :class:`DiskModel` (``service_time`` moves a
    nominal head so the elevator still has an ordering key, but position
    carries no cost).
    """

    def __init__(self, params: FlashParams) -> None:
        self.params = params
        self._head_lba = 0

    @property
    def head_lba(self) -> int:
        return self._head_lba

    def service_time(self, lba: int, sectors: int) -> float:
        if sectors <= 0:
            raise ValueError(f"request must cover >= 1 sector, got {sectors}")
        if lba < 0:
            raise ValueError(f"negative LBA: {lba}")
        self._head_lba = lba + sectors
        # Reads and writes differ little at this abstraction level; use
        # the slower (write) bandwidth as the conservative bound.
        bandwidth = min(self.params.read_bandwidth, self.params.write_bandwidth)
        return self.params.command_latency + sectors * SECTOR_SIZE / bandwidth

    def service_batch(self, lbas, sectors) -> np.ndarray:
        """Vectorised counterpart of :meth:`service_time` (see DiskModel)."""
        lbas = np.asarray(lbas, dtype=np.int64)
        secs = np.asarray(sectors, dtype=np.int64)
        if lbas.size == 0:
            return np.zeros(0)
        if (secs <= 0).any():
            raise ValueError("batch request must cover >= 1 sector each")
        if (lbas < 0).any():
            raise ValueError("negative LBA in batch")
        self._head_lba = int(lbas[-1] + secs[-1])
        bandwidth = min(self.params.read_bandwidth, self.params.write_bandwidth)
        return self.params.command_latency + secs * SECTOR_SIZE / bandwidth


def make_disk_model(params: "DiskParams | FlashParams"):
    """Factory: build the right service model for a device parameter set."""
    if isinstance(params, FlashParams):
        return FlashModel(params)
    if isinstance(params, DiskParams):
        return DiskModel(params)
    raise TypeError(f"unknown device parameters: {type(params)!r}")


@dataclass
class DiskStats:
    """Cumulative block-device counters (``/proc/diskstats`` semantics).

    Time-like gauges (``io_ticks``, ``weighted_time``) accumulate lazily:
    call :meth:`observe` with the current simulated time before reading
    them, exactly as the kernel updates these fields on access.
    """

    reads_completed: int = 0
    reads_merged: int = 0
    sectors_read: int = 0
    time_reading: float = 0.0
    writes_completed: int = 0
    writes_merged: int = 0
    sectors_written: int = 0
    time_writing: float = 0.0
    queue_insertions: int = 0
    in_flight: int = 0
    io_ticks: float = 0.0  # total time the device had I/O in flight
    weighted_time: float = 0.0  # sum over requests of their time in queue+service

    _last_observed: float = field(default=0.0, repr=False)

    def observe(self, now: float) -> None:
        """Accumulate time-weighted gauges up to ``now``."""
        dt = now - self._last_observed
        if dt < 0:
            raise ValueError(f"time went backwards: {self._last_observed} -> {now}")
        if self.in_flight > 0:
            self.io_ticks += dt
            self.weighted_time += self.in_flight * dt
        self._last_observed = now

    def on_enqueue(self, now: float) -> None:
        self.observe(now)
        self.queue_insertions += 1
        self.in_flight += 1

    def on_enqueue_batch(self, now: float, n: int) -> None:
        """N simultaneous insertions: one ``observe`` then bulk counters —
        identical to N :meth:`on_enqueue` calls at the same instant
        (repeat observes see ``dt == 0``)."""
        self.observe(now)
        self.queue_insertions += n
        self.in_flight += n

    def on_merge(self, is_write: bool) -> None:
        if is_write:
            self.writes_merged += 1
        else:
            self.reads_merged += 1

    def on_complete(self, now: float, is_write: bool, sectors: int, service: float,
                    nrequests: int = 1) -> None:
        """Record completion of a dispatched request covering ``nrequests``
        original (possibly merged) queue entries."""
        self.observe(now)
        if self.in_flight < nrequests:
            raise RuntimeError("completing more requests than are in flight")
        self.in_flight -= nrequests
        if is_write:
            self.writes_completed += nrequests
            self.sectors_written += sectors
            self.time_writing += service
        else:
            self.reads_completed += nrequests
            self.sectors_read += sectors
            self.time_reading += service

    def snapshot(self, now: float) -> dict[str, float]:
        """A plain-dict view of all counters at time ``now``."""
        self.observe(now)
        return {
            "reads_completed": float(self.reads_completed),
            "reads_merged": float(self.reads_merged),
            "sectors_read": float(self.sectors_read),
            "time_reading": self.time_reading,
            "writes_completed": float(self.writes_completed),
            "writes_merged": float(self.writes_merged),
            "sectors_written": float(self.sectors_written),
            "time_writing": self.time_writing,
            "queue_insertions": float(self.queue_insertions),
            "in_flight": float(self.in_flight),
            "io_ticks": self.io_ticks,
            "weighted_time": self.weighted_time,
        }
