"""Synchronisation primitives built on the event kernel.

The PFS simulator needs three: a counting :class:`Semaphore` (Lustre's
``max_rpcs_in_flight`` windows, MDS service threads), a :class:`Barrier`
(MPI-style rank synchronisation inside workloads) and a FIFO
:class:`Store` (producer/consumer queues such as the cache flusher).
All wake-ups are FIFO, preserving engine determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Environment, Event

__all__ = ["Semaphore", "Barrier", "Store"]


class Semaphore:
    """Counting semaphore with FIFO acquisition order."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"semaphore capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Returns an event that fires once a slot is held by the caller."""
        ev = Event(self.env)
        if self._available > 0 and not self._waiters:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a free slot inline, without creating an Event.

        The batch backend's fast path: a granted ``acquire()`` would fire
        on the next tick at the same timestamp, so taking the slot here
        and now is observationally identical while skipping the event.
        Returns False when the caller must queue via :meth:`acquire`.
        """
        if self._available > 0 and not self._waiters:
            self._available -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise RuntimeError("semaphore released more times than acquired")
            self._available += 1


class Barrier:
    """A reusable barrier for ``parties`` processes.

    Each call to :meth:`wait` returns an event that fires when all
    parties of the current generation have arrived.
    """

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {parties}")
        self.env = env
        self.parties = parties
        self._arrived: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.env)
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            batch, self._arrived = self._arrived, []
            for waiter in batch:
                waiter.succeed()
        return ev


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
