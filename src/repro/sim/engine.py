"""Minimal deterministic discrete-event kernel.

A stripped-down SimPy-style engine: *processes* are Python generators that
yield :class:`Event` objects and are resumed when those events trigger.
Determinism is guaranteed by a monotonically increasing schedule sequence
number used as the tie-breaker for simultaneous events — two runs with the
same seed replay the identical event order, which the labelling pipeline
relies on (DESIGN.md §5).

Event lifecycle: an event is *armed* when its outcome is decided
(:meth:`Event.succeed` / :meth:`Event.fail` / timeout creation) and
*fired* when the event loop delivers it to its callbacks at its scheduled
time. Waiters are resumed at fire time, never at arm time.

Only the features the PFS simulator needs are implemented: timeouts,
manually-triggered events, processes, failure propagation and ``AllOf``
conjunction events. There is deliberately no interruption API.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

from repro.obs import trace as _trace

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "CountEvent",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, drained loop, bad yields)."""


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_fired")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool | None = None  # None = pending, True/False = armed
        self._fired = False

    @property
    def armed(self) -> bool:
        """Outcome decided (scheduled for delivery)."""
        return self._ok is not None

    @property
    def triggered(self) -> bool:
        """Delivered: callbacks have run (or are running) at fire time."""
        return self._fired

    @property
    def ok(self) -> bool:
        if not self._fired:
            raise SimulationError("event has not fired yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Arm the event successfully; waiters wake at the current time."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Arm the event as failed; waiters see ``exc`` raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self.env._schedule(self, 0.0)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Event.__init__ inlined: timeouts are the single most-allocated
        # object in a run, and the extra frame showed up in sweep profiles.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._fired = False
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """Drives a generator; fires with the generator's return value.

    The generator may yield any :class:`Event`; it is resumed with the
    event's value (or, for failed events, the exception is thrown into
    the generator).
    """

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not isinstance(gen, Generator):
            raise TypeError(f"process requires a generator, got {type(gen)!r}")
        self._gen = gen
        # Kick off at the current time via an immediately-armed event.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._fired

    def _resume(self, event: Event) -> None:
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                target = self._gen.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
            self._gen.close()
            self.fail(exc)
            return
        if target.env is not self.env:
            self._gen.close()
            self.fail(SimulationError("process yielded an event from another environment"))
            return
        if target._fired:
            # The event already fired in the past: resume on the next tick.
            bridge = Event(self.env)
            bridge.callbacks.append(self._resume)
            bridge._ok = target._ok
            bridge._value = target._value
            self.env._schedule(bridge, 0.0)
        else:
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when every child event has fired successfully.

    Its value is the list of child values in the original order. If any
    child fails, the conjunction fails with that child's exception (first
    delivery wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        for ev in self._children:
            if ev.env is not env:
                raise SimulationError("AllOf child from another environment")
        pending = [ev for ev in self._children if not ev._fired]
        self._remaining = len(pending)
        if self._remaining == 0:
            self._finish()
        else:
            for ev in pending:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.armed:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._finish()

    def _finish(self) -> None:
        for ev in self._children:
            if ev._fired and not ev._ok:
                self.fail(ev._value)
                return
        self.succeed([ev._value for ev in self._children])


class CountEvent(Event):
    """Fires once ``expected`` completions have been reported.

    The batch backend's replacement for :class:`AllOf`: a burst of N
    striped RPCs needs one completion event, not N child Events plus a
    conjunction. A zero-length batch succeeds immediately (still via the
    event loop, so waiters resume on the next tick like any other event).
    """

    __slots__ = ("_expected",)

    def __init__(self, env: "Environment", expected: int) -> None:
        super().__init__(env)
        if expected < 0:
            raise ValueError(f"negative completion count: {expected}")
        self._expected = expected
        if expected == 0:
            self.succeed([])

    @property
    def remaining(self) -> int:
        return self._expected

    def complete(self) -> None:
        """Report one completion; the event succeeds on the last one."""
        if self._expected <= 0:
            raise SimulationError("CountEvent completed more times than expected")
        self._expected -= 1
        if self._expected == 0:
            self.succeed()


class Environment:
    """The event loop: a priority queue of (time, sequence, event)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heappush(self._queue, (self.now + delay, self._seq, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def after(self, delay: float, fn: Callable[[Event], None]) -> Timeout:
        """Schedule ``fn(event)`` after ``delay`` — a callback hop without
        the generator/Process machinery (the batch backend's chain link)."""
        t = Timeout(self, delay)
        t.callbacks.append(fn)
        return t

    def defer(self, fn: Callable[[Event], None]) -> Event:
        """Run ``fn(event)`` on the next tick at the current time."""
        ev = Event(self)
        ev.callbacks.append(fn)
        ev.succeed()
        return ev

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.processes_spawned += 1
        return Process(self, gen)

    # -- execution --------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``+inf`` when idle.

        The sharded executor's barrier computation: a conservative window
        may only extend to the minimum ``peek()`` across every shard
        environment (plus lookahead), so the queue head must be readable
        without firing anything.  It is also the adaptive window policy's
        safety proof: a queue whose head clears a span cannot schedule
        anything *into* that span (events never schedule into the past),
        so ``peek() >= end`` proves the environment quiet through ``end``.
        """
        return self._queue[0][0] if self._queue else float("inf")

    def quiet_until(self, end: float, inclusive: bool = False) -> bool:
        """True when nothing can fire inside ``[now, end)`` (``[now, end]``
        when ``inclusive``) — the peek-ahead query behind barrier elision:
        a quiet environment needs no window run at all."""
        if not self._queue:
            return True
        head = self._queue[0][0]
        return head > end if inclusive else head >= end

    def run_to(self, end: float, tracer=None, inclusive: bool = False) -> int:
        """Fire every event scheduled before ``end`` (through ``end`` when
        ``inclusive``) and return how many fired.

        The sharded executor's window primitive: unlike :meth:`run` it
        never advances ``now`` past the last fired event, so a domain can
        be driven through a window without its clock jumping to the
        window end (injections after the window compute their delays from
        the true last-event time).
        """
        queue = self._queue
        step = self._step
        fired = 0
        if inclusive:
            while queue and queue[0][0] <= end:
                step(queue, tracer)
                fired += 1
        else:
            while queue and queue[0][0] < end:
                step(queue, tracer)
                fired += 1
        return fired

    def step(self) -> None:
        """Fire the next scheduled event and run its callbacks."""
        self._step(self._queue, _trace.TRACER)

    def _step(self, queue: list, tracer) -> None:
        # Hot path: ``run()`` passes the queue and tracer in so the loop
        # pays no attribute or module-global lookups per event.
        when, _seq, event = heappop(queue)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        event._fired = True
        if tracer is not None:
            tracer.events_fired += 1
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), a float deadline, or
        an :class:`Event` whose firing stops the run (its value is
        returned; a failed event re-raises its exception).

        The tracer is resolved once per ``run()`` call; installing or
        removing one mid-run takes effect on the next call.
        """
        queue = self._queue
        step = self._step
        tracer = _trace.TRACER
        if isinstance(until, Event):
            stop = until
            while not stop._fired:
                if not queue:
                    raise SimulationError(
                        "event loop drained before the awaited event fired"
                    )
                step(queue, tracer)
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        while queue and queue[0][0] <= deadline:
            step(queue, tracer)
        if until is not None:
            self.now = max(self.now, deadline)
        return None
