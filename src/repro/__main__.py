"""Command-line entry point: regenerate paper artefacts.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table1 [--fast]      # the 7x7 slowdown matrix
    python -m repro fig1                 # Enzo latency series
    python -m repro table2               # server-metric catalogue
    python -m repro fig3 | fig4 | fig5   # model evaluations
    python -m repro all [--fast]         # everything, in order

``--fast`` shrinks workloads for a quick smoke pass; default sizes match
the benchmark suite. Results print to stdout; pass ``--out DIR`` to also
write one text file per experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.runner import ExperimentConfig

#: Paper artefacts (run by ``all``).
EXPERIMENTS = ("table1", "fig1", "table2", "fig3", "fig4", "fig5")

#: Extension experiments beyond the paper (run individually).
EXTENSIONS = ("devices", "crosscluster")


def _config(fast: bool) -> ExperimentConfig:
    return ExperimentConfig(window_size=0.25, sample_interval=0.125,
                            warmup=0.5 if fast else 1.0, seed=0)


def _scales(fast: bool) -> dict[str, float]:
    return {
        "target_scale": 0.15 if fast else 0.4,
        "noise_scale": 0.15 if fast else 0.25,
    }


def run_table1(fast: bool) -> str:
    from repro.experiments.table1 import run_table1, shape_checks

    s = _scales(fast)
    result = run_table1(_config(fast), target_scale=s["target_scale"],
                        noise_ranks=2 if fast else 3,
                        noise_instances=2 if fast else 3,
                        noise_scale=s["noise_scale"])
    lines = [result.render(), ""]
    for name, ok in shape_checks(result).items():
        lines.append(f"[{'ok' if ok else 'MISS'}] {name}")
    return "\n".join(lines)


def run_fig1(fast: bool) -> str:
    from repro.experiments.fig1 import run_fig1a, run_fig1b
    from repro.workloads.apps import EnzoConfig

    enzo = EnzoConfig(ranks=4, cycles=3 if fast else 5)
    a = run_fig1a(_config(fast), enzo, max_level=2 if fast else 3,
                  noise_scale=_scales(fast)["noise_scale"])
    b = run_fig1b(_config(fast), enzo,
                  noise_scale=_scales(fast)["noise_scale"])
    return "Figure 1(a)\n" + a.render() + "\n\nFigure 1(b)\n" + b.render()


def run_table2(fast: bool) -> str:
    from repro.experiments.table2 import run_table2

    return run_table2(_config(fast),
                      scale=_scales(fast)["target_scale"]).render()


def run_fig3(fast: bool) -> str:
    from repro.experiments.fig3 import (
        collect_dlio_bank,
        collect_io500_bank,
        run_fig3_dlio,
        run_fig3_io500,
    )

    s = _scales(fast)
    io500 = collect_io500_bank(_config(fast), target_scale=s["target_scale"],
                               max_level=2 if fast else 3,
                               noise_scale=s["noise_scale"])
    dlio_cfg = ExperimentConfig(window_size=0.5, sample_interval=0.125,
                                warmup=1.0, seed=0)
    dlio = collect_dlio_bank(dlio_cfg, max_level=2 if fast else 3,
                             noise_scale=s["noise_scale"],
                             steps_per_epoch=8 if fast else 12)
    a = run_fig3_io500(bank=io500)
    b = run_fig3_dlio(bank=dlio)
    return a.render() + "\n\n" + b.render()


def run_fig4(fast: bool) -> str:
    from repro.experiments.fig4 import run_fig4 as _run

    s = _scales(fast)
    return _run(_config(fast), target_scale=s["target_scale"],
                max_level=2 if fast else 3,
                noise_scale=s["noise_scale"]).render()


def run_fig5(fast: bool) -> str:
    from repro.experiments.fig5 import run_fig5 as _run

    return _run(_config(fast), max_level=2 if fast else 3,
                noise_scale=_scales(fast)["noise_scale"]).render()


def run_devices(fast: bool) -> str:
    from repro.experiments.devices import run_device_ablation

    return run_device_ablation(
        _config(fast), target_scale=_scales(fast)["target_scale"]
    ).render()


def run_crosscluster(fast: bool) -> str:
    from repro.experiments.cross_cluster import run_cross_cluster

    kwargs = {}
    if fast:
        kwargs = dict(target_tasks=("ior-easy-write", "ior-easy-read"),
                      target_scale=0.4, max_level=2)
    return run_cross_cluster(_config(fast), **kwargs).render()


_RUNNERS = {
    "table1": run_table1,
    "fig1": run_fig1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "devices": run_devices,
    "crosscluster": run_crosscluster,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=("list", "all", *EXPERIMENTS, *EXTENSIONS))
    parser.add_argument("--fast", action="store_true",
                        help="shrink workloads for a quick smoke pass")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="also write one text file per experiment here")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in (*EXPERIMENTS, *EXTENSIONS):
            print(name)
        return 0

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.time()
        print(f"==== {name} ====")
        text = _RUNNERS[name](args.fast)
        print(text)
        print(f"({time.time() - start:.0f}s)\n")
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
