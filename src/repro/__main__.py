"""Command-line entry point: regenerate paper artefacts.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table1 [--fast]      # the 7x7 slowdown matrix
    python -m repro fig1                 # Enzo latency series
    python -m repro table2               # server-metric catalogue
    python -m repro fig3 | fig4 | fig5   # model evaluations
    python -m repro all [--fast]         # everything, in order
    python -m repro robustness [--fast]  # F1 under telemetry faults
    python -m repro obs FILE [FILE ...]  # summarise traces/metrics/manifests
    python -m repro obs report FILE ... [--chrome-trace OUT.json]
                                         # merged report + Perfetto trace
    python -m repro bench [--only SUITE ...]    # regenerate BENCH_*.json
    python -m repro train --model-out M.npz     # train once, save the model
    python -m repro predict --model M.npz       # predict anywhere
    python -m repro serve --tenants 256 --chaos 'flood=0.1,stall=0.05'
                                         # multi-tenant service chaos soak

Simulator backend: ``--sim-backend batch`` routes every client burst
through the vectorised :mod:`repro.sim.batch` request path (one engine
event per batch instead of one process per striped RPC) with bit-
identical window vectors and labels; ``event`` (default) is the
per-request generator path. The backend is part of the run-cache key,
so the two never share cache entries.

Fault injection and resilience: ``--faults 'drop=0.2,kill=0.1,seed=1'``
attaches a deterministic :class:`repro.faults.FaultPlan` to the sweep
executor (worker/simulation faults; telemetry faults drive the
``robustness`` experiment), ``--run-timeout`` arms a per-run watchdog
and ``--retries`` bounds how often a failed run is retried before being
quarantined — a sweep with poisoned runs completes and reports them
instead of crashing.

``--fast`` shrinks workloads for a quick smoke pass; default sizes match
the benchmark suite. Results print to stdout; pass ``--out DIR`` to also
write one text file per experiment.

Sharded simulation: ``--shards N`` partitions each run's *server
domains* (one per OSS) over N resident worker processes synchronised by
a deterministic conservative time-window protocol (:mod:`repro.sim.
shard`) — one simulation scales across cores instead of only the sweep.
Output is bit-identical across shard counts (``--shards 4`` ==
``--shards 1``), so the run-cache key records only *that* sharding was
used, never the count.  ``--window-policy fixed|adaptive[:cap=S]``
tunes how the coordinator sizes sync windows (adaptive, the default,
elides barriers via root-quiet spans and guarded domain-ahead rounds);
it changes only the barrier count, never the output, and stays out of
cache keys for the same reason.

Sweep execution: ``--jobs N`` fans independent simulation runs over N
worker processes (``--jobs 0`` = all cores) with bit-identical results;
runs persist in a content-addressed cache (``--cache-dir``, default
``results/.runcache``) so e.g. ``fig4`` re-bins ``fig3``'s cached IO500
sweep and a re-run after a training-side change simulates nothing.
``--no-cache`` disables persistence.

Training execution mirrors it: the same ``--jobs`` fans independent
training restarts and grid cells over worker processes (bit-identical to
the serial restart loop), and trained models persist in a
content-addressed model cache (``--model-cache-dir``, default
``results/.modelcache``) keyed by dataset digest + training recipe, so a
warm re-run of a model experiment trains nothing. ``--no-model-cache``
disables it.

Observability: every experiment writes a JSON run manifest (seed, config,
git SHA, timings, sweep/cache statistics, a wall-clock phase profile and
a metric snapshot) next to its results. ``--trace PATH`` records a span
trace of all simulated I/O to a JSONL file — including runs executed in
worker processes: workers attach a tracer seeded with the parent's trace
context and ship their spans back, and the parent merges everything
(plus wall-clock queue-wait/execute/retry/cache-probe job spans) into
one multi-process timeline. ``--metrics-out PATH`` dumps the metrics
registry, ``-v``/``-vv`` turn on INFO/DEBUG logging, ``python -m repro
obs`` renders any exported file, and ``python -m repro obs report``
renders manifest + trace + metrics together — with ``--chrome-trace
OUT.json`` producing a Perfetto-loadable timeline.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time

from repro import obs
from repro.experiments.runner import ExperimentConfig, experiment_cluster

#: Paper artefacts (run by ``all``).
EXPERIMENTS = ("table1", "fig1", "table2", "fig3", "fig4", "fig5")

#: Extension experiments beyond the paper (run individually).
EXTENSIONS = ("devices", "crosscluster", "robustness")

#: JSON reports produced by runners (written next to the manifests).
_REPORTS: dict[str, dict] = {}


#: Simulator request path for every experiment this invocation runs;
#: set once from ``--sim-backend`` before any runner is called.
_SIM_BACKEND = "event"


def _cluster():
    cluster = experiment_cluster()
    if _SIM_BACKEND != "event":
        cluster = dataclasses.replace(cluster, sim_backend=_SIM_BACKEND)
    return cluster


def _config(fast: bool) -> ExperimentConfig:
    return ExperimentConfig(cluster=_cluster(), window_size=0.25,
                            sample_interval=0.125,
                            warmup=0.5 if fast else 1.0, seed=0)


def _scales(fast: bool) -> dict[str, float]:
    return {
        "target_scale": 0.15 if fast else 0.4,
        "noise_scale": 0.15 if fast else 0.25,
    }


def run_table1(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.table1 import run_table1, shape_checks

    s = _scales(fast)
    result = run_table1(_config(fast), target_scale=s["target_scale"],
                        noise_ranks=2 if fast else 3,
                        noise_instances=2 if fast else 3,
                        noise_scale=s["noise_scale"],
                        executor=executor)
    lines = [result.render(), ""]
    for name, ok in shape_checks(result).items():
        lines.append(f"[{'ok' if ok else 'MISS'}] {name}")
    return "\n".join(lines)


def run_fig1(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.fig1 import run_fig1a, run_fig1b
    from repro.workloads.apps import EnzoConfig

    enzo = EnzoConfig(ranks=4, cycles=3 if fast else 5)
    a = run_fig1a(_config(fast), enzo, max_level=2 if fast else 3,
                  noise_scale=_scales(fast)["noise_scale"])
    b = run_fig1b(_config(fast), enzo,
                  noise_scale=_scales(fast)["noise_scale"])
    return "Figure 1(a)\n" + a.render() + "\n\nFigure 1(b)\n" + b.render()


def run_table2(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.table2 import run_table2

    return run_table2(_config(fast),
                      scale=_scales(fast)["target_scale"],
                      executor=executor).render()


def run_fig3(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.fig3 import (
        collect_dlio_bank,
        collect_io500_bank,
        run_fig3_dlio,
        run_fig3_io500,
    )

    s = _scales(fast)
    io500 = collect_io500_bank(_config(fast), target_scale=s["target_scale"],
                               max_level=2 if fast else 3,
                               noise_scale=s["noise_scale"],
                               executor=executor, store=store)
    dlio_cfg = ExperimentConfig(cluster=_cluster(), window_size=0.5,
                                sample_interval=0.125, warmup=1.0, seed=0)
    dlio = collect_dlio_bank(dlio_cfg, max_level=2 if fast else 3,
                             noise_scale=s["noise_scale"],
                             steps_per_epoch=8 if fast else 12,
                             executor=executor, store=store)
    a = run_fig3_io500(bank=io500, trainer=trainer)
    b = run_fig3_dlio(bank=dlio, trainer=trainer)
    return a.render() + "\n\n" + b.render()


def run_fig4(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.fig4 import run_fig4 as _run

    s = _scales(fast)
    return _run(_config(fast), target_scale=s["target_scale"],
                max_level=2 if fast else 3,
                noise_scale=s["noise_scale"],
                executor=executor, trainer=trainer, store=store).render()


def run_fig5(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.fig5 import run_fig5 as _run

    return _run(_config(fast), max_level=2 if fast else 3,
                noise_scale=_scales(fast)["noise_scale"],
                executor=executor, trainer=trainer, store=store).render()


def run_devices(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.devices import run_device_ablation

    return run_device_ablation(
        _config(fast), target_scale=_scales(fast)["target_scale"]
    ).render()


def run_crosscluster(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.cross_cluster import run_cross_cluster

    kwargs = {}
    if fast:
        kwargs = dict(target_tasks=("ior-easy-write", "ior-easy-read"),
                      target_scale=0.4, max_level=2)
    return run_cross_cluster(_config(fast), trainer=trainer,
                             store=store, **kwargs).render()


def run_robustness(fast: bool, executor, trainer=None, store=None) -> str:
    from repro.experiments.robustness import run_robustness as _run

    kwargs = {}
    if fast:
        kwargs = dict(max_level=1, drop_rates=(0.0, 0.4),
                      blank_rates=(0.0, 0.4), gap_policies=("zero", "mean"),
                      slow_factors=(8.0,), epochs=30)
    result = _run(_config(fast), executor=executor, trainer=trainer,
                  store=store, **kwargs)
    _REPORTS["robustness"] = result.to_report()
    return result.render()


_RUNNERS = {
    "table1": run_table1,
    "fig1": run_fig1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "devices": run_devices,
    "crosscluster": run_crosscluster,
    "robustness": run_robustness,
}


def _fail(message: str) -> int:
    """One-line CLI error: print to stderr, exit nonzero (no traceback)."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _add_dataset_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset-dir", type=pathlib.Path,
                        default=pathlib.Path("results/.dataset"),
                        help="columnar dataset store directory: labelled "
                             "windows persist as content-addressed shards "
                             "and rebuilds simulate only missing pairs "
                             "(default: %(default)s)")
    parser.add_argument("--no-dataset-cache", action="store_true",
                        help="collect windows in memory instead of through "
                             "the on-disk dataset store")


def _open_store(args):
    """The CLI's DatasetStore (or ``None`` with ``--no-dataset-cache``)."""
    if args.no_dataset_cache:
        return None
    from repro.data import DatasetStore

    try:
        return DatasetStore(args.dataset_dir)
    except OSError as exc:
        raise SystemExit(_fail(
            f"dataset dir {args.dataset_dir} is not usable ({exc}); "
            f"pass --dataset-dir or --no-dataset-cache"))


def main_obs_report(argv: list[str]) -> int:
    """``python -m repro obs report`` — one merged report over artefacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs report",
        description="Render a run manifest, a (multi-process) trace and "
                    "a metrics snapshot into one report: per-phase and "
                    "per-worker breakdowns, executor/cache health, and "
                    "optionally a Chrome trace-event JSON for Perfetto.",
    )
    parser.add_argument("files", nargs="+", type=pathlib.Path,
                        help="any mix of manifest.json, *.trace.jsonl "
                             "and *.metrics.json from one run")
    parser.add_argument("--chrome-trace", type=pathlib.Path, default=None,
                        metavar="OUT.json",
                        help="also write the trace as Chrome trace-event "
                             "JSON (load in Perfetto / about:tracing)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logs, -vv: DEBUG logs")
    args = parser.parse_args(argv)
    if args.verbose:
        obs.configure_logging("DEBUG" if args.verbose > 1 else "INFO")

    from repro.obs.summary import sniff_kind

    manifest = None
    spans = None
    metrics = None
    for path in args.files:
        try:
            kind = sniff_kind(path)
            if kind == "manifest":
                manifest = obs.load_manifest(path)
            elif kind == "trace":
                spans = (spans or []) + obs.load_trace(path)
            else:
                metrics = {**(metrics or {}), **obs.load_metrics(path)}
        except (OSError, ValueError) as exc:
            return _fail(str(exc))
    print(obs.render_report(manifest=manifest, spans=spans, metrics=metrics))
    if args.chrome_trace is not None:
        if spans is None:
            return _fail("--chrome-trace needs a *.trace.jsonl input")
        trace_id = manifest.trace_id if manifest is not None else None
        trace_id = trace_id or next(
            (s.trace_id for s in spans if s.trace_id), None)
        obs.save_chrome_trace(spans, args.chrome_trace, trace_id=trace_id)
        print(f"wrote {args.chrome_trace}")
    return 0


def main_obs(argv: list[str]) -> int:
    """``python -m repro obs`` — summarise exported observability files."""
    if argv and argv[0] == "report":
        return main_obs_report(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Summarise exported traces, metric snapshots and "
                    "run manifests from their files alone ('obs report' "
                    "renders them together, with a Chrome trace export).",
    )
    parser.add_argument("files", nargs="+", type=pathlib.Path,
                        help="*.trace.jsonl, *.metrics.json or manifest.json")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logs, -vv: DEBUG logs")
    args = parser.parse_args(argv)
    if args.verbose:
        obs.configure_logging("DEBUG" if args.verbose > 1 else "INFO")
    status = 0
    for path in args.files:
        print(f"==== {path} ====")
        try:
            print(obs.summarise_file(path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            status = 1
        print()
    return status


def main_train(argv: list[str]) -> int:
    """``python -m repro train`` — train a predictor once, save it to npz."""
    parser = argparse.ArgumentParser(
        prog="python -m repro train",
        description="Collect an IO500 interference sweep, train the "
                    "kernel predictor and save it as a portable "
                    "npz model file.",
    )
    parser.add_argument("--model-out", type=pathlib.Path, required=True,
                        metavar="MODEL.npz",
                        help="where to write the trained model")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the sweep for a quick smoke pass")
    parser.add_argument("--multiclass", action="store_true",
                        help="train the 3-class (<2x, 2-5x, >=5x) model "
                             "instead of the binary one")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation and "
                             "training restarts (default: 1)")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=pathlib.Path("results/.runcache"),
                        help="run cache directory (default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the run cache")
    parser.add_argument("--model-cache-dir", type=pathlib.Path,
                        default=pathlib.Path("results/.modelcache"),
                        help="model cache directory (default: %(default)s)")
    parser.add_argument("--no-model-cache", action="store_true",
                        help="do not read or write the model cache")
    _add_dataset_flags(parser)
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logs, -vv: DEBUG logs")
    args = parser.parse_args(argv)
    if args.verbose:
        obs.configure_logging("DEBUG" if args.verbose > 1 else "INFO")
    if args.jobs <= 0:
        return _fail(f"--jobs must be a positive integer, got {args.jobs}")

    from repro.core.labeling import BINARY_THRESHOLDS, MULTICLASS_THRESHOLDS
    from repro.experiments.fig3 import collect_io500_bank, evaluate_bank
    from repro.parallel import RunCache, SweepExecutor, TrainExecutor

    cache = None if args.no_cache else RunCache(args.cache_dir)
    executor = SweepExecutor(n_jobs=args.jobs, cache=cache)
    trainer = TrainExecutor(
        n_jobs=args.jobs,
        cache=None if args.no_model_cache else args.model_cache_dir,
    )
    store = _open_store(args)
    thresholds = (MULTICLASS_THRESHOLDS if args.multiclass
                  else BINARY_THRESHOLDS)
    s = _scales(args.fast)
    start = time.time()
    bank = collect_io500_bank(_config(args.fast),
                              target_scale=s["target_scale"],
                              max_level=2 if args.fast else 3,
                              noise_scale=s["noise_scale"],
                              executor=executor, store=store)
    result = evaluate_bank(bank, "train-io500", thresholds, trainer=trainer)
    elapsed = time.time() - start
    result.predictor.save(args.model_out)
    print(result.render())
    stats = trainer.stats()
    cache_note = "model cache: off"
    if stats["cache"] is not None:
        cache_note = (f"model cache: {stats['cache']['hits']} hit(s), "
                      f"{stats['cache']['misses']} miss(es)")
    print(f"\ntrained {stats['trainings_executed']} restart(s) "
          f"in {elapsed:.0f}s ({cache_note})")
    if store is not None:
        # One parseable line: the CI warm-append smoke greps it to prove
        # a second build simulates and re-aggregates nothing.
        print(f"dataset: appended={store.pairs_appended} "
              f"reused={store.pairs_reused} "
              f"shards_scanned={store.shards_scanned} "
              f"runs_executed={executor.runs_executed}")
    print(f"wrote {args.model_out}")
    return 0


def main_predict(argv: list[str]) -> int:
    """``python -m repro predict`` — score a run with a saved model."""
    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description="Load a model saved by 'repro train' and print "
                    "per-window interference severities for a persisted "
                    "run (--run DIR) or a freshly simulated demo run.",
    )
    parser.add_argument("--model", type=pathlib.Path, required=True,
                        metavar="MODEL.npz",
                        help="model file written by 'repro train'")
    parser.add_argument("--run", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="a run directory written by "
                             "repro.monitor.persist.save_run; omitted = "
                             "simulate a demo run")
    parser.add_argument("--window-size", type=float, default=0.25,
                        help="aggregation window seconds "
                             "(default: %(default)s)")
    parser.add_argument("--sample-interval", type=float, default=0.125,
                        help="server sampling interval seconds "
                             "(default: %(default)s)")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the demo simulation")
    args = parser.parse_args(argv)
    if args.window_size <= 0:
        return _fail(f"--window-size must be positive, got "
                     f"{args.window_size}")
    if args.sample_interval <= 0:
        return _fail(f"--sample-interval must be positive, got "
                     f"{args.sample_interval}")

    from repro.core.predictor import InterferencePredictor

    try:
        predictor = InterferencePredictor.load(args.model)
    except (OSError, ValueError, KeyError) as exc:
        return _fail(f"cannot load model {args.model}: {exc}")

    if args.run is not None:
        from repro.monitor.persist import load_run

        try:
            run = load_run(args.run)
        except (OSError, ValueError, KeyError) as exc:
            return _fail(f"cannot load run {args.run}: {exc}")
    else:
        from repro.experiments.runner import InterferenceSpec, execute_run
        from repro.workloads.io500 import make_io500_task

        s = _scales(args.fast)
        target = make_io500_task("ior-easy-write", ranks=2,
                                 scale=s["target_scale"])
        noise = [InterferenceSpec("ior-easy-write", instances=2, ranks=2,
                                  scale=s["noise_scale"])]
        run = execute_run(target, noise, _config(args.fast),
                          seed_salt="predict-demo")
        print("(no --run given: scoring a simulated demo run of "
              "ior-easy-write under write noise)")

    severities = predictor.predict_run(run, args.window_size,
                                       args.sample_interval)
    names = (["<2x", ">=2x"] if predictor.n_classes == 2
             else ["<2x", "2-5x", ">=5x"])
    print(f"model: {args.model} ({predictor.n_classes} classes, "
          f"dtype {predictor.param_dtype})")
    for window, severity in sorted(severities.items()):
        t0 = window * args.window_size
        print(f"  window {window:>4d} [{t0:7.2f}s, "
              f"{t0 + args.window_size:7.2f}s)  -> {names[severity]}")
    counts = {name: 0 for name in names}
    for severity in severities.values():
        counts[names[severity]] += 1
    summary = ", ".join(f"{name}: {count}"
                        for name, count in counts.items())
    print(f"{len(severities)} windows ({summary})")
    return 0


def main_serve(argv: list[str]) -> int:
    """``python -m repro serve`` — run the multi-tenant service soak."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the resilient multi-tenant prediction service "
                    "against a simulated tenant population: micro-batched "
                    "fused inference, admission control, backpressure, "
                    "deadlines, per-tenant circuit breakers and an "
                    "optional deterministic chaos plan.",
    )
    parser.add_argument("--tenants", type=int, default=64, metavar="N",
                        help="concurrent tenant streams (default: %(default)s)")
    parser.add_argument("--windows", type=int, default=8, metavar="N",
                        help="windows per tenant stream "
                             "(default: %(default)s)")
    parser.add_argument("--model", type=pathlib.Path, default=None,
                        metavar="MODEL.npz",
                        help="serve a model saved by 'repro train'; omitted "
                             "= train a small synthetic model first")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="deterministic tenant-chaos spec, e.g. "
                             "'flood=0.1,stall=0.05,disconnect=0.05,"
                             "reorder=0.1,dup=0.1,slow=0.02,seed=3' (see "
                             "repro.faults.SERVICE_FAULT_SPEC_FIELDS)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the tenants' synthetic window "
                             "streams (default: %(default)s)")
    parser.add_argument("--think", type=float, default=0.0,
                        metavar="SECONDS",
                        help="nominal seconds between one tenant's windows "
                             "(default: 0 = submit as fast as served)")
    parser.add_argument("--max-tenants", type=int, default=1024,
                        help="admission cap (default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="per-tenant ingest queue bound "
                             "(default: %(default)s)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="largest fused micro-batch "
                             "(default: %(default)s)")
    parser.add_argument("--deadline", type=float, default=1.0,
                        metavar="SECONDS",
                        help="per-request deadline before degradation "
                             "(default: %(default)s)")
    parser.add_argument("--report-out", type=pathlib.Path, default=None,
                        metavar="REPORT.json",
                        help="write the soak report as JSON here")
    parser.add_argument("--metrics-out", type=pathlib.Path, default=None,
                        help="write the final metrics-registry snapshot "
                             "to this JSON file")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logs, -vv: DEBUG logs")
    args = parser.parse_args(argv)
    if args.verbose:
        obs.configure_logging("DEBUG" if args.verbose > 1 else "INFO")
    if args.tenants <= 0:
        return _fail(f"--tenants must be a positive integer, "
                     f"got {args.tenants}")
    if args.windows <= 0:
        return _fail(f"--windows must be a positive integer, "
                     f"got {args.windows}")
    if args.think < 0:
        return _fail(f"--think must be >= 0, got {args.think}")
    plan = None
    if args.chaos:
        from repro.faults import parse_service_fault_spec

        try:
            plan = parse_service_fault_spec(args.chaos)
        except ValueError as exc:
            return _fail(f"bad --chaos spec: {exc}")
    from repro.serve import ServeConfig, run_soak

    try:
        config = ServeConfig(max_tenants=args.max_tenants,
                             queue_depth=args.queue_depth,
                             max_batch=args.max_batch,
                             deadline=args.deadline)
    except ValueError as exc:
        return _fail(str(exc))

    from repro.core.predictor import InterferencePredictor

    if args.model is not None:
        try:
            predictor = InterferencePredictor.load(args.model)
        except (OSError, ValueError, KeyError) as exc:
            return _fail(f"cannot load model {args.model}: {exc}")
    else:
        from repro.bench import bench_train_dataset
        from repro.core.nn.train import TrainConfig

        print("(no --model given: training a small synthetic model)")
        predictor = InterferencePredictor.train(
            bench_train_dataset(),
            config=TrainConfig(epochs=10, patience=5, seed=0), restarts=1)

    report = run_soak(predictor.deploy(), n_tenants=args.tenants,
                      n_windows=args.windows, config=config, plan=plan,
                      seed=args.seed, think=args.think)
    doc = report.to_dict()
    terminal = report.terminal_counts
    print(f"soak: {args.tenants} tenant(s) x {args.windows} window(s)"
          + (f" under chaos plan {plan.digest()}" if plan else " (no chaos)"))
    print(f"  terminal: " + ", ".join(
        f"{state}={terminal[state]}" for state in sorted(terminal)))
    print(f"  resolved {doc['windows_resolved']} windows at "
          f"{doc['windows_per_second']:,.0f}/s "
          f"(p50 {1e3 * doc['latency_p50_seconds']:.2f}ms, "
          f"p99 {1e3 * doc['latency_p99_seconds']:.2f}ms)")
    from repro.obs.report import service_health

    for line in service_health(obs.REGISTRY.snapshot()):
        print(f"  {line}")
    if args.report_out is not None:
        import json

        args.report_out.parent.mkdir(parents=True, exist_ok=True)
        args.report_out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.report_out}")
    if args.metrics_out:
        obs.save_metrics(obs.REGISTRY, args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}")
    if report.errors:
        print(f"ERROR: {len(report.errors)} tenant(s) hit unhandled "
              f"exceptions", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs":
        return main_obs(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench import main as main_bench

        return main_bench(argv[1:])
    if argv and argv[0] == "train":
        return main_train(argv[1:])
    if argv and argv[0] == "predict":
        return main_predict(argv[1:])
    if argv and argv[0] == "serve":
        return main_serve(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", metavar="experiment",
                        help="one of: list, all, "
                             + ", ".join((*EXPERIMENTS, *EXTENSIONS)))
    parser.add_argument("--fast", action="store_true",
                        help="shrink workloads for a quick smoke pass")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="also write one text file per experiment here")
    parser.add_argument("--sim-backend", choices=("event", "batch"),
                        default="event",
                        help="simulator request path: per-request generator "
                             "processes (event, default) or the vectorised "
                             "batched fast path (batch); results are "
                             "bit-identical (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation sweeps "
                             "(default: 1 = in-process)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard each simulation's server domains over "
                             "N processes (conservative-sync protocol; "
                             "output bit-identical across shard counts; "
                             "default: unsharded legacy path)")
    parser.add_argument("--window-policy", metavar="SPEC", default=None,
                        help="sharded sync-window sizing: 'fixed', "
                             "'adaptive' (default) or "
                             "'adaptive:cap=SECONDS'; output is "
                             "bit-identical across policies — only the "
                             "barrier count changes (requires --shards)")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=pathlib.Path("results/.runcache"),
                        help="content-addressed run cache directory "
                             "(default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the run cache")
    parser.add_argument("--model-cache-dir", type=pathlib.Path,
                        default=pathlib.Path("results/.modelcache"),
                        help="content-addressed trained-model cache "
                             "directory (default: %(default)s)")
    parser.add_argument("--no-model-cache", action="store_true",
                        help="do not read or write the model cache")
    _add_dataset_flags(parser)
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault injection spec, e.g. "
                             "'drop=0.2,blank=0.1,kill=0.05,seed=1' "
                             "(see repro.faults.FAULT_SPEC_FIELDS)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="watchdog: kill and retry any single "
                             "simulation run exceeding this wall time")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retries per failed/timed-out run before it "
                             "is quarantined (default: 0)")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record a span trace of all simulated I/O "
                             "to this JSONL file")
    parser.add_argument("--metrics-out", type=pathlib.Path, default=None,
                        help="write the final metrics-registry snapshot "
                             "to this JSON file")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logs, -vv: DEBUG logs")
    args = parser.parse_args(argv)

    if args.verbose:
        obs.configure_logging("DEBUG" if args.verbose > 1 else "INFO")

    global _SIM_BACKEND
    _SIM_BACKEND = args.sim_backend

    known = ("list", "all", *EXPERIMENTS, *EXTENSIONS)
    if args.experiment not in known:
        return _fail(f"unknown experiment {args.experiment!r} "
                     f"(choose from: {', '.join(known)})")
    if args.jobs <= 0:
        return _fail(f"--jobs must be a positive integer, got {args.jobs}")
    if args.shards is not None:
        if args.shards <= 0:
            return _fail(f"--shards must be a positive integer, "
                         f"got {args.shards}")
        # A shard worker hosts whole OSS domains, so shards beyond the
        # domain count would just be idle processes blocking on every
        # window barrier.  Clamp (with a note) rather than reject: the
        # request is over-provisioned, not wrong.
        n_domains = _cluster().n_domains
        if args.shards > n_domains:
            print(f"note: --shards {args.shards} exceeds the cluster's "
                  f"{n_domains} OSS domain(s); clamping to {n_domains} "
                  f"(one worker per domain is the maximum useful "
                  f"sharding)", file=sys.stderr)
            args.shards = n_domains
    window_policy = None
    if args.window_policy is not None:
        if args.shards is None:
            return _fail("--window-policy requires --shards (it tunes the "
                         "sharded executor's sync windows)")
        from repro.sim.shard import WindowPolicy

        try:
            window_policy = WindowPolicy.parse(args.window_policy)
        except ValueError as exc:
            return _fail(f"bad --window-policy spec: {exc}")
        sample_interval = _config(args.fast).sample_interval
        if (window_policy.cap is not None
                and window_policy.cap >= sample_interval):
            return _fail(
                f"--window-policy adaptive cap must be < the experiment "
                f"sample_interval ({window_policy.cap} >= "
                f"{sample_interval}): domain monitors tick every "
                f"sample_interval, so wider spans are never provable")
    if args.run_timeout is not None and args.run_timeout <= 0:
        return _fail(f"--run-timeout must be positive, got {args.run_timeout}")
    if args.retries < 0:
        return _fail(f"--retries must be >= 0, got {args.retries}")
    fault_plan = None
    if args.faults:
        from repro.faults import parse_fault_spec

        try:
            fault_plan = parse_fault_spec(args.faults)
        except ValueError as exc:
            return _fail(f"bad --faults spec: {exc}")

    if args.experiment == "list":
        for name in (*EXPERIMENTS, *EXTENSIONS):
            print(name)
        return 0

    from repro.parallel import RunCache, SweepExecutor

    cache = None
    if not args.no_cache:
        try:
            cache = RunCache(args.cache_dir)
            probe = cache.directory / ".write-probe"
            probe.write_bytes(b"")
            probe.unlink()
        except OSError as exc:
            return _fail(f"cache dir {args.cache_dir} is not writable "
                         f"({exc}); pass --cache-dir or --no-cache")
    executor = SweepExecutor(n_jobs=args.jobs, cache=cache,
                             run_timeout=args.run_timeout,
                             retries=args.retries, fault_plan=fault_plan,
                             shards=args.shards,
                             window_policy=window_policy)

    from repro.parallel import TrainExecutor

    trainer = TrainExecutor(
        n_jobs=args.jobs,
        cache=None if args.no_model_cache else args.model_cache_dir,
        run_timeout=args.run_timeout,
        retries=args.retries,
    )

    store = _open_store(args)

    tracer = None
    if args.trace:
        # Deterministic trace id: a digest of what is being run, never
        # wall-clock or pid derived, so same-command traces share an id.
        import hashlib

        material = (f"{args.experiment}:{_config(args.fast).seed}:"
                    f"{args.sim_backend}:{int(args.fast)}")
        trace_id = hashlib.sha256(material.encode()).hexdigest()[:16]
        tracer = obs.install_tracer(obs.Tracer(trace_id=trace_id))
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    manifest_dir = args.out if args.out else pathlib.Path("results")
    try:
        for name in names:
            from repro.obs import profile as _profile

            profiler = _profile.install(tracer=tracer)
            start = time.time()
            print(f"==== {name} ====")
            try:
                text = _RUNNERS[name](args.fast, executor, trainer, store)
            finally:
                _profile.uninstall()
            elapsed = time.time() - start
            print(text)
            print(f"({elapsed:.0f}s)\n")
            if args.verbose:
                print(profiler.render())
                print()
            if args.out:
                (args.out / f"{name}.txt").write_text(text + "\n")
            manifest = obs.build_manifest(
                name=name,
                seed=_config(args.fast).seed,
                config={"fast": args.fast,
                        **obs.config_to_dict(_config(args.fast))},
                timings={"run": elapsed},
                extra={"scales": _scales(args.fast),
                       "sweep": executor.stats(),
                       "training": trainer.stats(),
                       "dataset": store.stats() if store is not None else None,
                       "profile": profiler.summary()},
            )
            obs.write_manifest(manifest,
                               manifest_dir / f"{name}.manifest.json")
            if name in _REPORTS:
                import json

                report_path = manifest_dir / f"{name}.report.json"
                report_path.parent.mkdir(parents=True, exist_ok=True)
                report_path.write_text(
                    json.dumps(_REPORTS.pop(name), indent=2) + "\n")
                print(f"wrote {report_path}")
        if executor.quarantined:
            print(f"WARNING: {len(executor.quarantined)} run(s) quarantined; "
                  "see the manifest's sweep.faults section")
        if trainer.quarantined:
            print(f"WARNING: {len(trainer.quarantined)} training(s) "
                  "quarantined; see the manifest's training section")
    finally:
        if tracer is not None:
            obs.uninstall_tracer()
    if tracer is not None:
        obs.save_trace(tracer, args.trace)
        print(f"wrote {len(tracer.spans)} spans to {args.trace}")
    if args.metrics_out:
        obs.save_metrics(obs.REGISTRY, args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
