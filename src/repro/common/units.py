"""Byte-size and device units used throughout the simulator.

All sizes in the code base are plain integers in bytes; all times are
floats in seconds. These constants keep workload and device configs
readable (``4 * MIB`` rather than ``4194304``).
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Disk sector size in bytes, matching the 512-byte sectors that
#: ``/proc/diskstats`` counts (the paper's Table II "disk sectors" metrics).
SECTOR_SIZE: int = 512


def bytes_to_sectors(nbytes: int) -> int:
    """Number of 512-byte sectors covering ``nbytes`` (rounded up).

    ``/proc/diskstats`` accounts whole sectors, so a 1-byte request still
    moves one sector.
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return -(-nbytes // SECTOR_SIZE)


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``1.5 MiB``) for logs and reports."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
