"""Shared primitives: units, seeded RNG derivation, I/O records, time windows.

These are deliberately dependency-free (NumPy only) so every other
subpackage — the simulator, the workloads, the monitors and the learning
core — can build on a single vocabulary of types.
"""

from repro.common.units import (
    KIB,
    MIB,
    GIB,
    SECTOR_SIZE,
    bytes_to_sectors,
    format_bytes,
)
from repro.common.rng import derive_rng, derive_seed
from repro.common.records import IORecord, OpType, ServerId, ServerKind
from repro.common.windows import TimeWindow, iter_windows, window_index

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "SECTOR_SIZE",
    "bytes_to_sectors",
    "format_bytes",
    "derive_rng",
    "derive_seed",
    "IORecord",
    "OpType",
    "ServerId",
    "ServerKind",
    "TimeWindow",
    "iter_windows",
    "window_index",
]
