"""Operation types, server identities and DXT-style I/O records.

:class:`IORecord` is the common currency between the simulator's client
instrumentation, the Darshan-DXT-like client monitor, and the labelling
pipeline. One record corresponds to one application-level I/O call
(read/write/open/close/stat/create/unlink), not to an individual RPC —
matching what Darshan DXT logs at POSIX level in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpType(enum.Enum):
    """Application-level I/O operation categories.

    The paper's client-side monitor groups these into three families:
    *read*, *write* and *metadata* (open/close/stat/create/unlink).
    """

    READ = "read"
    WRITE = "write"
    OPEN = "open"
    CLOSE = "close"
    STAT = "stat"
    CREATE = "create"
    UNLINK = "unlink"
    MKDIR = "mkdir"

    @property
    def is_data(self) -> bool:
        return self in (OpType.READ, OpType.WRITE)

    @property
    def is_metadata(self) -> bool:
        return not self.is_data

    @property
    def family(self) -> str:
        """``"read"``, ``"write"`` or ``"meta"`` — the paper's 3 groups."""
        if self is OpType.READ:
            return "read"
        if self is OpType.WRITE:
            return "write"
        return "meta"


class ServerKind(enum.Enum):
    """Lustre server roles: object storage target vs metadata target."""

    OST = "ost"
    MDT = "mdt"


@dataclass(frozen=True)
class ServerId:
    """Stable identity of one PFS server target (an OST or the MDT).

    The learning core builds one per-server feature vector per
    :class:`ServerId`; ordering is total (by kind then index) so feature
    layouts are stable.
    """

    kind: ServerKind
    index: int

    def __lt__(self, other: "ServerId") -> bool:
        if not isinstance(other, ServerId):
            return NotImplemented
        return (self.kind.value, self.index) < (other.kind.value, other.index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}{self.index}"


@dataclass
class IORecord:
    """One completed application-level I/O operation (DXT-style).

    Attributes
    ----------
    job:
        Name of the workload instance that issued the op (the paper's
        per-application separation: target vs interference workloads).
    rank:
        MPI-style rank within the job.
    op_id:
        Sequence number of this op within ``(job, rank)``. Deterministic
        across repeated runs of the same seeded workload, which is what
        makes baseline/interference matching exact.
    op:
        Operation category.
    path:
        File path the op addressed.
    offset, size:
        Byte extent for data ops; ``0`` for metadata ops.
    start, end:
        Simulated wall-clock interval of the call.
    servers:
        The PFS servers this op touched (stripe targets for data ops, the
        MDT for metadata ops). Used to attribute client-side load to
        per-server vectors.
    """

    job: str
    rank: int
    op_id: int
    op: OpType
    path: str
    offset: int
    size: int
    start: float
    end: float
    servers: tuple[ServerId, ...] = field(default_factory=tuple)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def key(self) -> tuple[str, int, int]:
        """Matching key for baseline/interference pairing."""
        return (self.job, self.rank, self.op_id)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"op {self.key} ends before it starts: [{self.start}, {self.end}]"
            )
        if self.size < 0 or self.offset < 0:
            raise ValueError(f"op {self.key} has negative extent")
