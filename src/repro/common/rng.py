"""Deterministic RNG derivation.

Reproducing the paper's labelling pipeline requires *exactly* repeatable
runs: the baseline execution and the interference execution of a workload
must issue the identical operation sequence so per-operation latency
ratios can be matched (paper §III-D). Every stochastic component therefore
derives its generator from the experiment seed plus a stable string path,
never from global state.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, *path: str | int) -> int:
    """Derive a child seed from ``seed`` and a path of string/int keys.

    Uses BLAKE2b over the rendered path so the mapping is stable across
    Python versions and processes (``hash()`` is salted and unusable here).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "little")


def derive_rng(seed: int, *path: str | int) -> np.random.Generator:
    """A :class:`numpy.random.Generator` derived from ``seed`` and a path."""
    return np.random.default_rng(derive_seed(seed, *path))
