"""Fixed-size time windows.

The whole framework is windowed: monitors aggregate per user-defined time
window, labels are computed per window, and the model predicts per window
(paper §III). A window ``w`` covers ``[w*size, (w+1)*size)`` seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class TimeWindow:
    """Half-open time interval ``[start, end)`` with its index."""

    index: int
    start: float
    end: float

    @property
    def size(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def window_index(t: float, window_size: float) -> int:
    """Index of the window containing time ``t``.

    Times exactly on a boundary belong to the *later* window, consistent
    with the half-open convention.
    """
    if window_size <= 0:
        raise ValueError(f"window_size must be positive, got {window_size}")
    if not math.isfinite(t):
        raise ValueError(f"non-finite time: {t}")
    if t < 0:
        raise ValueError(f"negative time: {t}")
    idx = int(t / window_size)
    # Guard against float rounding placing a boundary time one window early.
    if t >= (idx + 1) * window_size:
        idx += 1
    return idx


def window_indices(times: np.ndarray, window_size: float) -> np.ndarray:
    """Vectorised :func:`window_index` over an array of times.

    Returns int64 indices; bit-identical to calling :func:`window_index`
    elementwise, including the boundary guard.
    """
    if window_size <= 0:
        raise ValueError(f"window_size must be positive, got {window_size}")
    times = np.asarray(times, dtype=np.float64)
    if times.size and not np.isfinite(times).all():
        raise ValueError("non-finite time in window_indices input")
    if times.size and times.min() < 0:
        raise ValueError(f"negative time: {times.min()}")
    idx = (times / window_size).astype(np.int64)
    # Same float-rounding guard as the scalar version.
    idx += times >= (idx + 1) * window_size
    return idx


def iter_windows(horizon: float, window_size: float) -> Iterator[TimeWindow]:
    """All windows needed to cover ``[0, horizon)``."""
    if window_size <= 0:
        raise ValueError(f"window_size must be positive, got {window_size}")
    if not math.isfinite(horizon):
        raise ValueError(f"non-finite horizon: {horizon}")
    count = max(0, math.ceil(horizon / window_size))
    for i in range(count):
        yield TimeWindow(i, i * window_size, (i + 1) * window_size)
