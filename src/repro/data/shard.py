"""Columnar window shards: the on-disk unit of the dataset ETL layer.

A *shard* is one fixed-size slice of labelled windows — the per-server
feature vectors, the raw degradation levels and the per-window source
tags of up to ``max_windows_per_shard`` windows from a single (target,
scenario) pair.  Shards are plain ``.npz`` archives written with
``allow_pickle=False`` and a format-versioned embedded JSON document,
the exact persistence idiom of
:meth:`repro.core.predictor.InterferencePredictor.save`: self-describing,
loadable from untrusted storage, and round-tripping every array
bit-exactly.

Shards never hold class labels — like :class:`repro.experiments.datagen.
WindowBank` they store the *raw* slowdown levels, so the binary and
3-class datasets re-bin one shard set instead of duplicating it.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.parallel.cachekey import DATASET_FORMAT

__all__ = ["SHARD_FORMAT", "WindowShard", "write_shard", "read_shard"]

#: Bumped whenever the shard ``.npz`` layout changes incompatibly.
#: Tracks :data:`repro.parallel.cachekey.DATASET_FORMAT`, which salts the
#: shard keys — a layout change retires old shards by key, and this
#: version check rejects any stale file a key collision might surface.
SHARD_FORMAT = DATASET_FORMAT

_SHARD_KIND = "repro-window-shard"


@dataclass
class WindowShard:
    """One decoded shard: vectors, levels and sources plus its metadata."""

    X: np.ndarray  # (n, servers, features), float64
    levels: np.ndarray  # (n,), float64 raw slowdown ratios
    sources: list[str]  # (n,) per-window provenance tags
    meta: dict[str, Any]

    def __len__(self) -> int:
        return len(self.levels)


def write_shard(path: str | pathlib.Path, X: np.ndarray, levels: np.ndarray,
                sources: list[str], meta: dict[str, Any] | None = None
                ) -> pathlib.Path:
    """Write one columnar window shard to ``path``.

    ``X`` and ``levels`` are stored as float64 so the assembled dataset's
    bytes — and therefore its :meth:`~repro.core.dataset.Dataset.
    content_digest` — are bit-identical to the in-memory pipeline, which
    materialises both as float.  Returns the path written.
    """
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    levels = np.ascontiguousarray(np.asarray(levels, dtype=float))
    if X.ndim != 3:
        raise ValueError(f"X must be (windows, servers, features), "
                         f"got shape {X.shape}")
    if len(X) != len(levels) or len(X) != len(sources):
        raise ValueError(
            f"inconsistent shard lengths: X={len(X)} levels={len(levels)} "
            f"sources={len(sources)}")
    doc = {
        "kind": _SHARD_KIND,
        "format": SHARD_FORMAT,
        "n_windows": len(X),
        "n_servers": int(X.shape[1]),
        "n_features": int(X.shape[2]),
        **(meta or {}),
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fp:
        np.savez_compressed(
            fp,
            meta=np.array(json.dumps(doc)),
            X=X,
            levels=levels,
            # Unicode array, not object array: loads under
            # allow_pickle=False, and the repeated per-pair tag
            # compresses to nearly nothing.
            sources=np.array(sources, dtype=np.str_),
        )
    return path


def read_shard(path: str | pathlib.Path) -> WindowShard:
    """Read a shard written by :func:`write_shard`.

    Raises ``ValueError`` for anything that is not a well-formed shard
    of the current format (foreign npz, truncated archive, version or
    shape mismatch) and ``OSError`` for unreadable paths — the caller
    (the store) treats both as a corrupt entry, never as data.
    """
    import pickle
    import zipfile

    path = pathlib.Path(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, pickle.UnpicklingError, EOFError,
            ValueError) as exc:
        # Arbitrary bytes surface from np.load as any of these (bad zip
        # magic falls through to the pickle reader); uniformly a
        # ValueError so the store treats them all as corruption.
        raise ValueError(f"{path}: not a valid npz archive ({exc})") from exc
    with data:
        if "meta" not in data:
            raise ValueError(f"{path}: not a window shard (no meta)")
        meta = json.loads(str(data["meta"][()]))
        if meta.get("kind") != _SHARD_KIND:
            raise ValueError(f"{path}: unexpected kind {meta.get('kind')!r}")
        if meta.get("format") != SHARD_FORMAT:
            raise ValueError(
                f"{path}: shard format {meta.get('format')!r} not supported "
                f"by this version (expects {SHARD_FORMAT})")
        X = np.asarray(data["X"], dtype=float)
        levels = np.asarray(data["levels"], dtype=float)
        sources = [str(s) for s in data["sources"]]
    if X.ndim != 3:
        raise ValueError(f"{path}: X has shape {X.shape}, expected 3-D")
    if len(X) != len(levels) or len(X) != len(sources):
        raise ValueError(
            f"{path}: inconsistent lengths X={len(X)} levels={len(levels)} "
            f"sources={len(sources)}")
    if len(X) != int(meta.get("n_windows", len(X))):
        raise ValueError(
            f"{path}: meta says {meta['n_windows']} windows, file holds "
            f"{len(X)}")
    return WindowShard(X=X, levels=levels, sources=sources, meta=meta)
