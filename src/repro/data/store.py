"""Incremental, content-addressed, out-of-core dataset store.

:class:`DatasetStore` is the columnar ETL layer between the sweep engine
and the trainer.  It persists each (target, scenario) pair's labelled
windows as fixed-size columnar shards (:mod:`repro.data.shard`), keyed
by :func:`repro.parallel.cachekey.dataset_shard_key` — the pair's full
run-key material plus the post-processing knobs — and records them in an
on-disk manifest.  ``build_bank``/``build`` then:

1. **simulate only missing pairs** — pairs whose key is already in the
   manifest reuse their shards untouched, so a warm rebuild executes
   zero simulations and zero re-aggregations (the counters prove it);
2. **append** new pairs' windows as shards (bounded by
   ``max_windows_per_shard``, so append cost scales with *new* windows,
   never with what is already ingested);
3. **assemble** the requested pairs, in sweep order, into a single
   memmap-backed array (``np.lib.format.open_memmap``) cached under a
   key derived from the ordered shard list — so even the shard scan runs
   at most once per distinct sweep composition.

The assembled :class:`~repro.experiments.datagen.WindowBank` /
:class:`~repro.core.dataset.Dataset` is **bit-identical** to the
in-memory :func:`~repro.experiments.datagen.collect_windows` path — same
:func:`~repro.experiments.datagen.label_pair` post-processing, same
sweep order, float64 round-tripped exactly — so
:meth:`~repro.core.dataset.Dataset.content_digest` and therefore every
warm :class:`~repro.parallel.modelcache.ModelCache` key survives the
migration.  Only the backing storage changes: ``X`` is a read-only
memmap, keeping peak RSS bounded by shard size instead of dataset size.

Layout under ``directory``::

    manifest.json                      # pair key -> entry (atomic rename)
    shards/<key[:2]>/<key>-NNN.npz     # columnar window shards
    shards/<key[:2]>/<key>.spec.json   # the key's raw material
    assemblies/<akey>.npy              # memmap-backed assembled X
    assemblies/<akey>.meta.npz         # levels + sources of the assembly
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller
from repro.obs import profile as _profile
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.parallel.cachekey import (
    DATASET_FORMAT,
    dataset_shard_key_material,
    stable_hash,
)
from repro.data.shard import read_shard, write_shard

if TYPE_CHECKING:
    from repro.core.dataset import Dataset
    from repro.experiments.datagen import Scenario, WindowBank
    from repro.experiments.runner import ExperimentConfig
    from repro.parallel import RunCache, SweepExecutor
    from repro.workloads.base import Workload

__all__ = ["DatasetStore"]

logger = get_logger("data.store")

_STORE_KIND = "repro-dataset-store"
_MANIFEST = "manifest.json"
_SHARD_DIR = "shards"
_ASSEMBLY_DIR = "assemblies"


class DatasetStore:
    """On-disk incremental dataset of labelled interference windows.

    ``max_windows_per_shard`` bounds both shard file size and the
    working set of the append/assembly loops — it is the knob that keeps
    peak RSS flat as the store grows.
    """

    def __init__(self, directory: str | pathlib.Path,
                 max_windows_per_shard: int = 4096) -> None:
        if max_windows_per_shard < 1:
            raise ValueError("max_windows_per_shard must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_windows_per_shard = int(max_windows_per_shard)
        self.pairs_appended = 0
        self.pairs_reused = 0
        self.pairs_skipped = 0
        self.windows_appended = 0
        self.shards_written = 0
        self.shards_scanned = 0
        self.assembly_hits = 0
        self.assembly_misses = 0
        self.errors = 0
        self.last_build: dict[str, Any] | None = None

    # -- manifest ---------------------------------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / _MANIFEST

    def _fresh_manifest(self) -> dict[str, Any]:
        return {"kind": _STORE_KIND, "format": DATASET_FORMAT, "seq": 0,
                "entries": {}}

    def load_manifest(self) -> dict[str, Any]:
        """The current manifest document (fresh/empty if none or stale)."""
        path = self.manifest_path
        if not path.exists():
            return self._fresh_manifest()
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self._error("unreadable manifest %s (%s); starting fresh",
                        path, exc)
            return self._fresh_manifest()
        if doc.get("kind") != _STORE_KIND:
            raise ValueError(
                f"{path} is not a dataset-store manifest "
                f"(kind={doc.get('kind')!r})")
        if doc.get("format") != DATASET_FORMAT:
            # A format bump re-keys every shard anyway; old entries can
            # never be referenced again, so the store restarts cleanly.
            logger.warning("manifest %s has format %r, current is %r; "
                           "starting fresh", path, doc.get("format"),
                           DATASET_FORMAT)
            return self._fresh_manifest()
        doc.setdefault("seq", 0)
        doc.setdefault("entries", {})
        return doc

    def _write_manifest(self, doc: dict[str, Any]) -> None:
        tmp = self.manifest_path.with_name(
            f"{_MANIFEST}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=False))
        os.replace(tmp, self.manifest_path)

    def _error(self, msg: str, *args: Any) -> None:
        self.errors += 1
        REGISTRY.counter("data.store.errors").inc()
        logger.warning(msg, *args)

    # -- paths ------------------------------------------------------------

    def _shard_path(self, key: str, index: int) -> pathlib.Path:
        return self.directory / _SHARD_DIR / key[:2] / f"{key}-{index:03d}.npz"

    def _stem_path(self, stem: str) -> pathlib.Path:
        return self.directory / _SHARD_DIR / stem[:2] / f"{stem}.npz"

    def _spec_path(self, key: str) -> pathlib.Path:
        return self.directory / _SHARD_DIR / key[:2] / f"{key}.spec.json"

    def _entry_complete(self, entry: dict[str, Any]) -> bool:
        """All shard files of an entry are still present on disk."""
        return all(self._stem_path(stem).exists() for stem in entry["shards"])

    # -- append -----------------------------------------------------------

    def _append_pair(self, manifest: dict[str, Any], key: str,
                     material: dict[str, Any], target: "Workload",
                     scenario: "Scenario", part: "WindowBank | None",
                     baseline_key: str, run_key: str) -> None:
        """Write one pair's windows as shards and record the entry.

        ``part is None`` (a pair that produced no labelled windows) is
        recorded too — with zero shards — so a warm rebuild skips the
        pair instead of re-simulating it just to relearn it was empty.
        """
        stems: list[str] = []
        n_bytes = 0
        shape = None
        if part is not None:
            shape = (int(part.X.shape[1]), int(part.X.shape[2]))
            step = self.max_windows_per_shard
            for index, start in enumerate(range(0, len(part), step)):
                stop = start + step
                path = self._shard_path(key, index)
                with _profile.phase("shard-write"):
                    write_shard(
                        path,
                        part.X[start:stop],
                        part.levels[start:stop],
                        part.sources[start:stop],
                        meta={
                            "key": key,
                            "shard_index": index,
                            "target": target.name,
                            "scenario": scenario.name,
                            "baseline_run_key": baseline_key,
                            "interfered_run_key": run_key,
                        },
                    )
                stems.append(path.name[:-len(".npz")])
                n_bytes += path.stat().st_size
                self.shards_written += 1
                REGISTRY.counter("data.store.shards_written").inc()
        spec = self._spec_path(key)
        spec.parent.mkdir(parents=True, exist_ok=True)
        spec.write_text(json.dumps(material, indent=1, sort_keys=True))
        manifest["entries"][key] = {
            "seq": manifest["seq"],
            "target": target.name,
            "scenario": scenario.name,
            "source": f"{target.name}:{scenario.name}",
            "windows": 0 if part is None else len(part),
            "shards": stems,
            "bytes": n_bytes,
            **({"n_servers": shape[0], "n_features": shape[1]}
               if shape else {}),
            "baseline_run_key": baseline_key,
            "interfered_run_key": run_key,
        }
        manifest["seq"] += 1
        self.pairs_appended += 1
        self.windows_appended += 0 if part is None else len(part)
        REGISTRY.counter("data.store.pairs_appended").inc()
        REGISTRY.counter("data.store.windows_appended").inc(
            0 if part is None else len(part))

    def _evict(self, manifest: dict[str, Any], key: str) -> None:
        """Drop an entry and its files (corrupt or incomplete)."""
        entry = manifest["entries"].pop(key, None)
        if entry is None:
            return
        for stem in entry["shards"]:
            try:
                self._stem_path(stem).unlink(missing_ok=True)
            except OSError:
                pass
        try:
            self._spec_path(key).unlink(missing_ok=True)
        except OSError:
            pass
        self._write_manifest(manifest)

    # -- assembly ---------------------------------------------------------

    def _assembly_key(self, ordered_stems: list[str]) -> str:
        return stable_hash({"kind": "dataset-assembly",
                            "format": DATASET_FORMAT,
                            "shards": ordered_stems})

    def _load_assembly(self, akey: str) -> "tuple[np.ndarray, np.ndarray, list[str]] | None":
        base = self.directory / _ASSEMBLY_DIR
        x_path, meta_path = base / f"{akey}.npy", base / f"{akey}.meta.npz"
        if not (x_path.exists() and meta_path.exists()):
            return None
        try:
            X = np.lib.format.open_memmap(x_path, mode="r")
            with np.load(meta_path, allow_pickle=False) as meta:
                levels = np.asarray(meta["levels"], dtype=float)
                sources = [str(s) for s in meta["sources"]]
            if X.ndim != 3 or not (len(X) == len(levels) == len(sources)):
                raise ValueError(f"assembly {akey} is inconsistent")
        except (OSError, ValueError) as exc:
            self._error("corrupt assembly %s (%s); rebuilding from shards",
                        akey, exc)
            return None
        return X, levels, sources

    def _assemble(self, manifest: dict[str, Any],
                  ordered_keys: list[str]) -> "WindowBank":
        """Assemble the keys' shards, in order, into a memmap-backed bank."""
        from repro.experiments.datagen import WindowBank

        entries = [manifest["entries"][k] for k in ordered_keys]
        ordered_stems = [stem for e in entries for stem in e["shards"]]
        total = sum(e["windows"] for e in entries)
        if total == 0:
            raise RuntimeError("no labelled windows were produced")
        akey = self._assembly_key(ordered_stems)
        cached = self._load_assembly(akey)
        if cached is not None:
            self.assembly_hits += 1
            REGISTRY.counter("data.store.assembly_hits").inc()
            X, levels, sources = cached
            return WindowBank(X, levels, sources=sources)

        self.assembly_misses += 1
        REGISTRY.counter("data.store.assembly_misses").inc()
        base = self.directory / _ASSEMBLY_DIR
        base.mkdir(parents=True, exist_ok=True)
        tmp_x = base / f"{akey}.{os.getpid()}.tmp.npy"
        tmp_meta = base / f"{akey}.{os.getpid()}.tmp.meta.npz"
        levels = np.empty(total, dtype=float)
        sources: list[str] = []
        X = None
        row = 0
        with _profile.phase("shard-scan", shards=len(ordered_stems)):
            for stem in ordered_stems:
                try:
                    shard = read_shard(self._stem_path(stem))
                except (OSError, ValueError) as exc:
                    # Content-addressed stores treat corruption as loss,
                    # never as data: evict the owning entry so the next
                    # build re-simulates just that pair.
                    key = stem.rsplit("-", 1)[0]
                    self._error("corrupt shard %s (%s); evicting entry %s",
                                stem, exc, key)
                    self._evict(manifest, key)
                    try:
                        tmp_x.unlink(missing_ok=True)
                    except OSError:
                        pass
                    raise RuntimeError(
                        f"shard {stem} was corrupt; its entry has been "
                        f"evicted — re-run the build to regenerate it"
                    ) from exc
                if X is None:
                    X = np.lib.format.open_memmap(
                        tmp_x, mode="w+", dtype=np.float64,
                        shape=(total, shard.X.shape[1], shard.X.shape[2]))
                n = len(shard)
                X[row:row + n] = shard.X
                levels[row:row + n] = shard.levels
                sources.extend(shard.sources)
                row += n
                self.shards_scanned += 1
                REGISTRY.counter("data.store.shards_scanned").inc()
        if row != total or X is None:
            raise RuntimeError(
                f"assembly mismatch: manifest promises {total} windows, "
                f"shards held {row}")
        with _profile.phase("shard-assemble", windows=total):
            X.flush()
            del X
            with open(tmp_meta, "wb") as fp:
                np.savez_compressed(
                    fp, levels=levels,
                    sources=np.array(sources, dtype=np.str_))
            os.replace(tmp_meta, base / f"{akey}.meta.npz")
            os.replace(tmp_x, base / f"{akey}.npy")
        X = np.lib.format.open_memmap(base / f"{akey}.npy", mode="r")
        return WindowBank(X, levels, sources=sources)

    # -- build ------------------------------------------------------------

    def build_bank(
        self,
        targets: "list[Workload]",
        scenarios: "list[Scenario]",
        config: "ExperimentConfig",
        include_quiet_windows: bool = True,
        n_jobs: int = 1,
        cache: "RunCache | str | None" = None,
        executor: "SweepExecutor | None" = None,
    ) -> "WindowBank":
        """Incrementally build the sweep's window bank, out-of-core.

        Simulates only pairs missing from the store (via the executor,
        which itself dedups and caches *runs*), appends their shards,
        and returns a bank whose ``X`` is a read-only memmap.  The bank
        is bit-identical to :func:`~repro.experiments.datagen.
        collect_windows` over the same arguments.
        """
        from repro.experiments.datagen import (
            _skip_pair,
            label_pair,
            sweep_pairs,
        )
        from repro.parallel import PairJob, RunJob, SweepExecutor

        executor = executor or SweepExecutor(n_jobs=n_jobs, cache=cache)
        manifest = self.load_manifest()
        sweep = sweep_pairs(targets, scenarios, include_quiet_windows)
        pair_jobs = [
            PairJob(target, tuple(scenario.interference), config,
                    seed_salt=scenario.name)
            for target, scenario in sweep
        ]
        keys = [executor.shard_key_for(job) for job in pair_jobs]
        for key in keys:
            entry = manifest["entries"].get(key)
            if entry is not None and not self._entry_complete(entry):
                self._error("entry %s is missing shard files; evicting", key)
                self._evict(manifest, key)
        missing: list[int] = []
        seen: set[str] = set()
        for i, key in enumerate(keys):
            if key in manifest["entries"]:
                continue
            if key in seen:
                continue  # same pair requested twice: append once
            seen.add(key)
            missing.append(i)
        reused = len([k for k in keys if k in manifest["entries"]])
        self.pairs_reused += reused
        REGISTRY.counter("data.store.pairs_reused").inc(reused)

        t0 = time.monotonic()
        if missing:
            with _profile.phase("dataset-sweep", pairs=len(missing)):
                paired = executor.run_pairs([pair_jobs[i] for i in missing])
            labeller = DegradationLabeller(window_size=config.window_size)
            with _profile.phase("dataset-label"):
                for i, pair in zip(missing, paired):
                    target, scenario = sweep[i]
                    if pair is None:
                        _skip_pair(target, scenario)
                        self.pairs_skipped += 1
                        REGISTRY.counter("data.store.pairs_skipped").inc()
                        continue
                    part = label_pair(labeller, target, scenario, pair,
                                      config)
                    self._append_pair(
                        manifest, keys[i],
                        dataset_shard_key_material(
                            target, tuple(scenario.interference), config,
                            seed_salt=scenario.name, salt=executor.salt,
                            faults=executor._fault_material(),
                            sharded=executor.shards is not None),
                        target, scenario, part,
                        baseline_key=executor.key_for(
                            RunJob(target, (), config, seed_salt="")),
                        run_key=executor.key_for(
                            RunJob(target, tuple(scenario.interference),
                                   config, seed_salt=scenario.name)),
                    )
            self._write_manifest(manifest)
        append_seconds = time.monotonic() - t0

        t1 = time.monotonic()
        ordered = [k for k in keys if k in manifest["entries"]]
        bank = self._assemble(manifest, ordered)
        self.last_build = {
            "pairs": len(sweep),
            "missing_pairs": len(missing),
            "reused_pairs": reused,
            "windows": len(bank),
            "append_seconds": append_seconds,
            "assemble_seconds": time.monotonic() - t1,
        }
        return bank

    def build(
        self,
        targets: "list[Workload]",
        scenarios: "list[Scenario]",
        config: "ExperimentConfig",
        thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
        include_quiet_windows: bool = True,
        source: str = "",
        n_jobs: int = 1,
        cache: "RunCache | str | None" = None,
        executor: "SweepExecutor | None" = None,
    ) -> "Dataset":
        """Build (incrementally) and bin the sweep's dataset.

        ``content_digest()`` of the result equals the in-memory
        :func:`~repro.experiments.datagen.generate_dataset` digest for
        the same arguments — pinned by tests — so warm model-cache keys
        survive switching to the store.
        """
        from repro.experiments.datagen import bank_to_dataset

        bank = self.build_bank(targets, scenarios, config,
                               include_quiet_windows=include_quiet_windows,
                               n_jobs=n_jobs, cache=cache, executor=executor)
        return bank_to_dataset(bank, thresholds, source=source)

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Store counters + on-disk totals, manifest-ready."""
        manifest = self.load_manifest()
        entries = manifest["entries"]
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "windows": sum(e["windows"] for e in entries.values()),
            "shards": sum(len(e["shards"]) for e in entries.values()),
            "bytes": sum(e["bytes"] for e in entries.values()),
            "max_windows_per_shard": self.max_windows_per_shard,
            "pairs_appended": self.pairs_appended,
            "pairs_reused": self.pairs_reused,
            "pairs_skipped": self.pairs_skipped,
            "windows_appended": self.windows_appended,
            "shards_written": self.shards_written,
            "shards_scanned": self.shards_scanned,
            "assembly_hits": self.assembly_hits,
            "assembly_misses": self.assembly_misses,
            "errors": self.errors,
            "last_build": self.last_build,
        }
