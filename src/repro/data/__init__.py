"""Columnar out-of-core dataset ETL.

Streams labelled interference windows to content-addressed columnar
shards during datagen sweeps and rebuilds datasets incrementally —
simulate once, append forever, never re-aggregate what a prior sweep
already produced.  See :mod:`repro.data.store` for the architecture and
DESIGN.md §14 for the on-disk contract.
"""

from repro.data.shard import SHARD_FORMAT, WindowShard, read_shard, write_shard
from repro.data.store import DatasetStore

__all__ = [
    "SHARD_FORMAT",
    "WindowShard",
    "read_shard",
    "write_shard",
    "DatasetStore",
]
