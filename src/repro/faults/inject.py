"""Post-hoc fault injection into monitored runs.

The transforms here corrupt a :class:`~repro.monitor.aggregator.
MonitoredRun`'s *telemetry* — the server sample stream and the client
trace — without touching the simulation that produced it.  That split is
what makes the robustness sweep cheap: one clean (cached) simulation
serves every point of a drop-rate × blank-rate grid, because faults are
re-applied deterministically from the :class:`~repro.faults.plan.
FaultPlan` at analysis time.

Every transform is pure (inputs are never mutated) and bit-reproducible:
the random draws come from the plan's seed plus a caller-supplied scope
string (normally the run's job name), one fixed-size draw block per
sample, so the same plan applied to the same run twice yields identical
output.  Injection counts land both on the returned
:class:`FaultStats` and in the ``faults.*`` metrics of
:data:`repro.obs.metrics.REGISTRY`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.common.records import IORecord, ServerId
from repro.common.windows import window_index
from repro.faults.plan import FaultPlan
from repro.monitor.aggregator import MonitoredRun
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["FaultStats", "sample_clock_skews", "inject_sample_faults",
           "blank_client_windows", "apply_faults"]

logger = get_logger("faults.inject")


@dataclass
class FaultStats:
    """What one injection pass actually did (manifest-ready)."""

    samples_in: int = 0
    samples_dropped: int = 0
    samples_delayed: int = 0
    samples_lost_late: int = 0
    samples_duplicated: int = 0
    servers_skewed: int = 0
    windows_blanked: int = 0
    records_blanked: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    def merge(self, other: "FaultStats") -> "FaultStats":
        for name, value in asdict(other).items():
            setattr(self, name, getattr(self, name) + value)
        return self


def sample_clock_skews(
    plan: FaultPlan, servers: list[ServerId], scope: str
) -> dict[ServerId, float]:
    """Per-server clock skew, uniform in ``[-max, +max]``, deterministic.

    Each server's skew derives from its own rng path, so the mapping is
    independent of server-list order.
    """
    if plan.clock_skew_max <= 0:
        return {server: 0.0 for server in servers}
    return {
        server: float(plan.rng("skew", scope, str(server)).uniform(
            -plan.clock_skew_max, plan.clock_skew_max))
        for server in servers
    }


def inject_sample_faults(
    samples: list[tuple[float, ServerId, dict[str, float]]],
    plan: FaultPlan,
    scope: str,
    duration: float,
    servers: list[ServerId] | None = None,
) -> tuple[list[tuple[float, ServerId, dict[str, float]]], FaultStats]:
    """Drop / delay / duplicate / clock-skew a server sample stream.

    Returns the faulted stream in *delivery* order (each row keeps its
    possibly-skewed sample time) plus the injection stats.  A delayed
    sample whose delivery would land past ``duration`` is lost — the
    collection window closed before it arrived.
    """
    stats = FaultStats(samples_in=len(samples))
    if servers is None:
        servers = sorted({server for _, server, _ in samples}, key=str)
    skews = sample_clock_skews(plan, servers, scope)
    stats.servers_skewed = sum(1 for s in skews.values() if s != 0.0)
    rng = plan.rng("samples", scope)
    delivered: list[tuple[float, float, ServerId, dict[str, float]]] = []
    for t, server, metrics in samples:
        # One fixed-size draw block per sample keeps the stream aligned
        # whatever mix of faults is enabled.
        u_drop, u_dup, u_delay, u_amount = rng.random(4)
        if plan.sample_drop_rate and u_drop < plan.sample_drop_rate:
            stats.samples_dropped += 1
            continue
        t_obs = max(0.0, t + skews.get(server, 0.0))
        delivery = t_obs
        if plan.sample_delay_rate and u_delay < plan.sample_delay_rate:
            delivery = t_obs + u_amount * plan.sample_delay_max
            stats.samples_delayed += 1
            if delivery > duration:
                stats.samples_lost_late += 1
                continue
        delivered.append((delivery, t_obs, server, metrics))
        if plan.sample_duplicate_rate and u_dup < plan.sample_duplicate_rate:
            stats.samples_duplicated += 1
            delivered.append((delivery, t_obs, server, dict(metrics)))
    delivered.sort(key=lambda row: row[0])
    return [(t_obs, server, metrics)
            for _, t_obs, server, metrics in delivered], stats


def blank_client_windows(
    records: list[IORecord],
    plan: FaultPlan,
    scope: str,
    job: str,
    window_size: float,
    duration: float,
) -> tuple[list[IORecord], FaultStats]:
    """Erase the target job's records from deterministically-chosen windows.

    Models a client monitor losing whole aggregation windows (SHM buffer
    overrun, flush failure).  Other jobs' records are untouched.
    """
    if window_size <= 0:
        raise ValueError(f"window_size must be positive, got {window_size}")
    stats = FaultStats()
    if plan.window_blank_rate <= 0 or not records:
        return list(records), stats
    n_windows = max(1, int(-(-duration // window_size)))
    blanked = {
        w for w in range(n_windows)
        if plan.rng("blank", scope, w).random() < plan.window_blank_rate
    }
    stats.windows_blanked = len(blanked)
    kept: list[IORecord] = []
    for rec in records:
        if rec.job == job and window_index(rec.end, window_size) in blanked:
            stats.records_blanked += 1
            continue
        kept.append(rec)
    return kept, stats


def apply_faults(
    run: MonitoredRun, plan: FaultPlan, window_size: float = 1.0
) -> MonitoredRun:
    """A faulted copy of ``run`` (telemetry faults only; run untouched).

    The returned run carries the injection stats in
    ``metadata["faults"]`` and the originating plan's digest, and the
    pass increments the ``faults.*`` registry counters.
    """
    samples, stats = inject_sample_faults(
        run.server_samples, plan, run.job, run.duration, servers=run.servers
    )
    records, blank_stats = blank_client_windows(
        run.records, plan, run.job, run.job, window_size, run.duration
    )
    stats.merge(blank_stats)
    for name, value in stats.to_dict().items():
        if name != "samples_in" and value:
            REGISTRY.counter(f"faults.{name}").inc(value)
    if stats.samples_dropped or stats.windows_blanked:
        logger.info(
            "faults applied to %s: dropped %d/%d samples, blanked %d windows",
            run.job, stats.samples_dropped, stats.samples_in,
            stats.windows_blanked,
        )
    metadata = dict(run.metadata)
    metadata["faults"] = {"plan": plan.digest(), **stats.to_dict()}
    return MonitoredRun(
        job=run.job,
        records=records,
        server_samples=samples,
        servers=list(run.servers),
        duration=run.duration,
        metadata=metadata,
    )
