"""Deterministic fault plans.

Production telemetry is gappy: LASSi-style monitor pipelines lose and
delay samples, client monitors blank whole aggregation windows, and
shared-cluster sweep workers die or wedge.  A :class:`FaultPlan`
describes one such fault regime as data — a frozen, serialisable
dataclass whose every decision ("is this sample dropped?", "does this
worker crash?") derives from :func:`repro.common.rng.derive_rng` over
the plan seed plus a stable string path.  Replaying the same plan
against the same run therefore injects the bit-identical fault
sequence, in-process or across worker processes.

Three fault domains, with deliberately different cache semantics:

* **telemetry** (drop / delay / duplicate / clock-skew server samples,
  blank client windows) corrupts the *view* of a run, never the run
  itself.  It is applied downstream of the simulator, so clean runs stay
  cacheable and one cached sweep serves a whole fault grid.
* **simulation** (abort a run at a chosen simulated time) changes the
  run's content and therefore participates in the run-cache key
  (:meth:`FaultPlan.sim_material`).
* **worker** (kill / flake / stall sweep workers) perturbs *execution*
  only; a retried run produces the identical result, so these never
  enter the cache key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng

__all__ = ["FaultPlan", "parse_fault_spec", "FAULT_SPEC_FIELDS"]

_RATE_FIELDS = (
    "sample_drop_rate", "sample_delay_rate", "sample_duplicate_rate",
    "window_blank_rate", "run_abort_rate", "worker_kill_rate",
    "worker_flaky_rate", "worker_stall_rate",
)
_NONNEG_FIELDS = (
    "sample_delay_max", "clock_skew_max", "run_abort_after",
    "worker_stall_seconds",
)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault regime (all rates in ``[0, 1]``)."""

    seed: int = 0

    # -- telemetry faults (view-level; cache-neutral) ----------------------
    #: Fraction of server-monitor samples silently lost.
    sample_drop_rate: float = 0.0
    #: Fraction of samples delivered late (by up to ``sample_delay_max``).
    sample_delay_rate: float = 0.0
    #: Maximum delivery delay in (simulated) seconds.
    sample_delay_max: float = 0.0
    #: Fraction of samples delivered twice.
    sample_duplicate_rate: float = 0.0
    #: Per-server sample-clock skew, uniform in ``[-max, +max]`` seconds.
    clock_skew_max: float = 0.0
    #: Fraction of client windows whose records never reach aggregation.
    window_blank_rate: float = 0.0

    # -- simulation faults (content-level; enter the cache key) ------------
    #: Fraction of simulated runs killed mid-flight.
    run_abort_rate: float = 0.0
    #: Simulated seconds after which an aborted run is cut off.
    run_abort_after: float = 1.0

    # -- worker faults (execution-level; cache-neutral) --------------------
    #: Fraction of runs whose worker dies on *every* attempt (poisoned).
    worker_kill_rate: float = 0.0
    #: Fraction of (run, attempt) pairs that fail transiently.
    worker_flaky_rate: float = 0.0
    #: Fraction of (run, attempt) pairs that stall before executing.
    worker_stall_rate: float = 0.0
    #: Wall-clock seconds an injected stall sleeps.
    worker_stall_seconds: float = 0.5

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in _NONNEG_FIELDS:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    # -- deterministic decisions ------------------------------------------

    def rng(self, *path: str | int) -> np.random.Generator:
        """A generator bound to this plan and a stable decision path."""
        return derive_rng(self.seed, "faults", *path)

    def _hit(self, rate: float, *path: str | int) -> bool:
        return rate > 0.0 and self.rng(*path).random() < rate

    def run_abort_time(self, job: str, seed_salt: str = "") -> float | None:
        """Simulated time this run is killed at, or ``None`` (spared)."""
        if self._hit(self.run_abort_rate, "abort", job, seed_salt):
            return self.run_abort_after
        return None

    def kills_worker(self, key: str) -> bool:
        """Persistent poison: the run identified by ``key`` always dies."""
        return self._hit(self.worker_kill_rate, "kill", key)

    def worker_is_flaky(self, key: str, attempt: int) -> bool:
        """Transient failure: this (run, attempt) dies, a retry may live."""
        return self._hit(self.worker_flaky_rate, "flaky", key, attempt)

    def worker_stall(self, key: str, attempt: int) -> float:
        """Seconds this (run, attempt) sleeps before executing (0 = none)."""
        if self._hit(self.worker_stall_rate, "stall", key, attempt):
            return self.worker_stall_seconds
        return 0.0

    # -- classification ----------------------------------------------------

    @property
    def has_telemetry_faults(self) -> bool:
        return any(getattr(self, f) > 0 for f in (
            "sample_drop_rate", "sample_delay_rate", "sample_duplicate_rate",
            "clock_skew_max", "window_blank_rate",
        ))

    @property
    def affects_simulation(self) -> bool:
        return self.run_abort_rate > 0

    @property
    def has_worker_faults(self) -> bool:
        return any(getattr(self, f) > 0 for f in (
            "worker_kill_rate", "worker_flaky_rate", "worker_stall_rate",
        ))

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def sim_material(self) -> dict:
        """The fields that change *run content* — the cache-key payload."""
        return {
            "seed": self.seed,
            "run_abort_rate": self.run_abort_rate,
            "run_abort_after": self.run_abort_after,
        }

    def digest(self) -> str:
        """Stable short hash identifying the whole plan."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


#: CLI spec shorthand → dataclass field (``--faults drop=0.2,kill=0.5``).
FAULT_SPEC_FIELDS: dict[str, str] = {
    "seed": "seed",
    "drop": "sample_drop_rate",
    "delay": "sample_delay_rate",
    "delay_max": "sample_delay_max",
    "dup": "sample_duplicate_rate",
    "skew": "clock_skew_max",
    "blank": "window_blank_rate",
    "abort": "run_abort_rate",
    "abort_after": "run_abort_after",
    "kill": "worker_kill_rate",
    "flaky": "worker_flaky_rate",
    "stall": "worker_stall_rate",
    "stall_s": "worker_stall_seconds",
}


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse ``key=value`` pairs (see :data:`FAULT_SPEC_FIELDS`).

    Example: ``"drop=0.2,blank=0.1,kill=0.5,seed=3"``.  Raises
    :class:`ValueError` on unknown keys or unparseable values; field
    range checks come from :class:`FaultPlan` itself.
    """
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"fault spec item {part!r} is not key=value")
        field = FAULT_SPEC_FIELDS.get(key.strip())
        if field is None:
            raise ValueError(
                f"unknown fault spec key {key.strip()!r} "
                f"(known: {', '.join(sorted(FAULT_SPEC_FIELDS))})"
            )
        try:
            kwargs[field] = int(value) if field == "seed" else float(value)
        except ValueError:
            raise ValueError(
                f"fault spec {key.strip()}={value!r}: not a number"
            ) from None
    return FaultPlan(**kwargs)
