"""``repro.faults`` — deterministic fault injection and its bookkeeping.

Production telemetry pipelines drop, delay and duplicate samples; sweep
workers crash and wedge.  This package makes those failure modes a
first-class, *seeded* part of the reproduction so the degradation
machinery (missing-data policies in the aggregator, the streaming
predictor's staleness fallback, the executor's retry/quarantine loop)
can be exercised bit-reproducibly:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the serialisable fault
  regime whose every decision derives from ``repro.common.rng``;
* :mod:`repro.faults.inject` — pure post-hoc transforms that corrupt a
  monitored run's telemetry (cache-friendly: clean simulations are
  cached, faults are re-applied per grid point);
* :mod:`repro.faults.service` — :class:`ServiceFaultPlan`, the
  tenant-level chaos regime (floods, stalls, disconnects, reordered and
  duplicated windows, slow-model stalls) the prediction service's soak
  harness (:func:`repro.serve.run_soak`) injects.

Live injection points live with their hosts: the
:class:`~repro.monitor.server_monitor.ServerMonitor` accepts a plan and
faults its sample stream as it collects, and the
:class:`~repro.parallel.executor.SweepExecutor` consults the plan for
worker kills/stalls and simulated-run aborts.
"""

from repro.faults.inject import (
    FaultStats,
    apply_faults,
    blank_client_windows,
    inject_sample_faults,
    sample_clock_skews,
)
from repro.faults.plan import FAULT_SPEC_FIELDS, FaultPlan, parse_fault_spec
from repro.faults.service import (
    SERVICE_FAULT_SPEC_FIELDS,
    ServiceFaultPlan,
    TenantProfile,
    parse_service_fault_spec,
)

__all__ = [
    "FaultPlan",
    "FaultStats",
    "FAULT_SPEC_FIELDS",
    "SERVICE_FAULT_SPEC_FIELDS",
    "ServiceFaultPlan",
    "TenantProfile",
    "parse_fault_spec",
    "parse_service_fault_spec",
    "apply_faults",
    "inject_sample_faults",
    "blank_client_windows",
    "sample_clock_skews",
]
