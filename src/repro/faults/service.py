"""Deterministic tenant-level chaos for the prediction service.

:class:`repro.faults.FaultPlan` describes what goes wrong *inside* one
run — lost samples, killed workers.  A long-lived multi-tenant service
faces a different weather system: whole tenants misbehave.  They flood
(burst far past their nominal window rate), stall mid-stream, disconnect
and never come back, deliver windows out of order or twice — and the
service itself can wedge (a slow model stalls the batcher while arrivals
pile up).  :class:`ServiceFaultPlan` describes one such regime as data,
with every decision derived from :func:`repro.common.rng.derive_rng`
over the plan seed plus a stable path, exactly like its sibling: the
same plan against the same tenant population injects the bit-identical
chaos schedule on every soak.

Chaos is decided **per tenant** (:meth:`ServiceFaultPlan.tenant_profile`
returns the full misbehaviour profile of one tenant id) and **per
batch** for service-side stalls, so the harness can drive thousands of
concurrent tenants without any shared mutable fault state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.common.rng import derive_rng

__all__ = [
    "ServiceFaultPlan",
    "TenantProfile",
    "SERVICE_FAULT_SPEC_FIELDS",
    "parse_service_fault_spec",
]

_RATE_FIELDS = (
    "flood_rate", "stall_rate", "disconnect_rate", "reorder_rate",
    "duplicate_rate", "slow_batch_rate",
)
_POSITIVE_FIELDS = ("flood_factor",)
_NONNEG_FIELDS = ("stall_windows", "reorder_depth", "slow_batch_seconds")


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's resolved misbehaviour (all decided at admission).

    ``reorder_plan`` / ``duplicate_plan`` are decided lazily per window
    via the plan's RNG; this frozen part is what shapes the tenant's
    traffic envelope.
    """

    tenant: str
    floods: bool = False
    flood_factor: float = 1.0
    stalls_at: int | None = None  #: window index before which it stalls
    stall_windows: int = 0
    disconnects_at: int | None = None  #: window index at which it vanishes
    reorders: bool = False
    duplicates: bool = False

    @property
    def chaotic(self) -> bool:
        return (self.floods or self.stalls_at is not None
                or self.disconnects_at is not None or self.reorders
                or self.duplicates)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """One deterministic tenant-chaos regime (rates in ``[0, 1]``)."""

    seed: int = 0

    # -- tenant-traffic chaos ----------------------------------------------
    #: Fraction of tenants that flood: their inter-window think time is
    #: divided by ``flood_factor``, bursting the admission path.
    flood_rate: float = 0.0
    flood_factor: float = 8.0
    #: Fraction of tenants that stall mid-stream (stop sending for
    #: ``stall_windows`` windows' worth of time, then resume).
    stall_rate: float = 0.0
    stall_windows: int = 4
    #: Fraction of tenants that disconnect mid-stream and never finish.
    disconnect_rate: float = 0.0
    #: Fraction of tenants whose windows are delivered out of order
    #: (shuffled within a bounded distance of ``reorder_depth``).
    reorder_rate: float = 0.0
    reorder_depth: int = 2
    #: Fraction of a chaotic tenant's windows that are delivered twice.
    duplicate_rate: float = 0.0

    # -- service-side chaos ------------------------------------------------
    #: Probability that one micro-batch's forward pass stalls.
    slow_batch_rate: float = 0.0
    #: Wall-clock seconds an injected model stall sleeps.
    slow_batch_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in _POSITIVE_FIELDS:
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in _NONNEG_FIELDS:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    # -- deterministic decisions ------------------------------------------

    def rng(self, *path: str | int):
        """A generator bound to this plan and a stable decision path."""
        return derive_rng(self.seed, "serve-faults", *path)

    def _hit(self, rate: float, *path: str | int) -> bool:
        return rate > 0.0 and self.rng(*path).random() < rate

    def tenant_profile(self, tenant: str, n_windows: int) -> TenantProfile:
        """The full chaos profile of one tenant over its window stream.

        Stall and disconnect points are drawn from the *interior* of the
        stream (never window 0) so a misbehaving tenant always shows the
        service some healthy traffic first — the regime the circuit
        breaker has to recognise.
        """
        floods = self._hit(self.flood_rate, "flood", tenant)
        stalls_at = None
        if n_windows > 1 and self._hit(self.stall_rate, "stall", tenant):
            stalls_at = 1 + int(self.rng("stall-at", tenant)
                                .integers(0, n_windows - 1))
        disconnects_at = None
        if n_windows > 1 and self._hit(self.disconnect_rate, "disc", tenant):
            disconnects_at = 1 + int(self.rng("disc-at", tenant)
                                     .integers(0, n_windows - 1))
        return TenantProfile(
            tenant=tenant,
            floods=floods,
            flood_factor=self.flood_factor if floods else 1.0,
            stalls_at=stalls_at,
            stall_windows=self.stall_windows,
            disconnects_at=disconnects_at,
            reorders=self._hit(self.reorder_rate, "reorder", tenant),
            duplicates=self._hit(self.duplicate_rate, "dup-tenant", tenant),
        )

    def delivery_order(self, profile: TenantProfile,
                       n_windows: int) -> list[int]:
        """The (possibly shuffled) order this tenant sends its windows.

        A reordering tenant's stream is permuted so no window moves more
        than ``reorder_depth`` positions from its in-order slot — the
        bounded-displacement regime a reorder buffer of that depth can
        fully absorb.  Each window draws a delay in
        ``[0, reorder_depth]`` and the stream is stable-sorted by
        ``window + delay``: any two windows more than ``reorder_depth``
        apart keep their relative order, which bounds every window's
        displacement (in both directions) by ``reorder_depth``.
        """
        order = list(range(n_windows))
        if not profile.reorders or self.reorder_depth == 0:
            return order
        delays = self.rng("order", profile.tenant).integers(
            0, self.reorder_depth + 1, size=n_windows)
        order.sort(key=lambda w: (w + int(delays[w]), w))
        return order

    def duplicates_window(self, profile: TenantProfile, window: int) -> bool:
        """Whether this tenant delivers ``window`` twice."""
        return (profile.duplicates
                and self._hit(self.duplicate_rate, "dup",
                              profile.tenant, window))

    def batch_stall(self, batch_index: int) -> float:
        """Injected model-stall seconds before scoring batch N (0 = none)."""
        if self._hit(self.slow_batch_rate, "slow-batch", batch_index):
            return self.slow_batch_seconds
        return 0.0

    # -- classification / serialisation -----------------------------------

    @property
    def has_tenant_faults(self) -> bool:
        return any(getattr(self, f) > 0 for f in (
            "flood_rate", "stall_rate", "disconnect_rate", "reorder_rate",
            "duplicate_rate",
        ))

    @property
    def has_service_faults(self) -> bool:
        return self.slow_batch_rate > 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def digest(self) -> str:
        """Stable short hash identifying the whole plan."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


#: CLI spec shorthand -> dataclass field (``--chaos flood=0.1,stall=0.05``).
SERVICE_FAULT_SPEC_FIELDS: dict[str, str] = {
    "seed": "seed",
    "flood": "flood_rate",
    "flood_x": "flood_factor",
    "stall": "stall_rate",
    "stall_w": "stall_windows",
    "disconnect": "disconnect_rate",
    "reorder": "reorder_rate",
    "reorder_depth": "reorder_depth",
    "dup": "duplicate_rate",
    "slow": "slow_batch_rate",
    "slow_s": "slow_batch_seconds",
}

_INT_FIELDS = {"seed", "stall_windows", "reorder_depth"}


def parse_service_fault_spec(spec: str) -> ServiceFaultPlan:
    """Parse ``key=value`` pairs (see :data:`SERVICE_FAULT_SPEC_FIELDS`).

    Example: ``"flood=0.1,stall=0.05,disconnect=0.05,dup=0.2,seed=3"``.
    Raises :class:`ValueError` on unknown keys or unparseable values;
    range checks come from :class:`ServiceFaultPlan` itself.
    """
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"chaos spec item {part!r} is not key=value")
        field = SERVICE_FAULT_SPEC_FIELDS.get(key.strip())
        if field is None:
            raise ValueError(
                f"unknown chaos spec key {key.strip()!r} "
                f"(known: {', '.join(sorted(SERVICE_FAULT_SPEC_FIELDS))})"
            )
        try:
            kwargs[field] = (int(value) if field in _INT_FIELDS
                             else float(value))
        except ValueError:
            raise ValueError(
                f"chaos spec {key.strip()}={value!r}: not a number"
            ) from None
    return ServiceFaultPlan(**kwargs)
