"""Content-addressed on-disk cache of trained predictors.

The training-side sibling of :class:`repro.parallel.cache.RunCache`.
Layout (same two-hex-digit fan-out)::

    <cache_dir>/
      <key[:2]>/<key>/
        spec.json      # the key material, for humans and debugging
        model.npz      # InterferencePredictor.save output

Keys come from :func:`repro.parallel.cachekey.train_key`: the dataset's
content digest plus the complete training recipe (thresholds,
``TrainConfig``, architecture, seed/restart schedule) plus the
code-version salt.  Anything that could change the trained parameters
changes the key, so a hit is always safe to use — a warm rerun of an
experiment executes **zero** trainings and returns bit-identical models.

Entries are written atomically (write to a private temporary directory,
rename into place), so concurrent invocations can share one cache
directory without locking.  A corrupted entry — truncated npz, bad JSON,
format-version mismatch — is treated as a miss: deleted and retrained,
never allowed to crash an experiment.

Hit/miss/store/error counts land both on the instance (:meth:`stats`)
and in the metrics registry (``parallel.modelcache.*``), from where
they flow into run manifests.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
from typing import Any

from repro.core.predictor import InterferencePredictor
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["ModelCache"]

logger = get_logger("parallel.modelcache")

_MODEL_FILE = "model.npz"
_SPEC_FILE = "spec.json"


class ModelCache:
    """Persist and recall trained :class:`InterferencePredictor`s by key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self._hit_counter = REGISTRY.counter("parallel.modelcache.hits")
        self._miss_counter = REGISTRY.counter("parallel.modelcache.misses")
        self._store_counter = REGISTRY.counter("parallel.modelcache.stores")
        self._error_counter = REGISTRY.counter("parallel.modelcache.errors")

    def path_for(self, key: str) -> pathlib.Path:
        """Directory an entry with ``key`` lives in (existing or not)."""
        if len(key) < 3:
            raise ValueError(f"implausibly short cache key: {key!r}")
        return self.directory / key[:2] / key

    def __contains__(self, key: str) -> bool:
        return (self.path_for(key) / _MODEL_FILE).is_file()

    def get(self, key: str) -> InterferencePredictor | None:
        """The cached predictor for ``key``, or ``None`` (miss/corrupt)."""
        entry = self.path_for(key)
        model_file = entry / _MODEL_FILE
        if not model_file.is_file():
            self.misses += 1
            self._miss_counter.inc()
            return None
        try:
            predictor = InterferencePredictor.load(model_file)
        except Exception as exc:  # any corruption: retrain, never crash
            self.errors += 1
            self.misses += 1
            self._error_counter.inc()
            self._miss_counter.inc()
            logger.warning("dropping corrupt model-cache entry %s (%s: %s)",
                           key, type(exc).__name__, exc)
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self.hits += 1
        self._hit_counter.inc()
        return predictor

    def put(self, key: str, predictor: InterferencePredictor,
            material: dict[str, Any] | None = None) -> None:
        """Store ``predictor`` under ``key`` (no-op when already present)."""
        entry = self.path_for(key)
        if (entry / _MODEL_FILE).is_file():
            return
        tmp = self.directory / f".tmp-{os.getpid()}-{key[:16]}"
        shutil.rmtree(tmp, ignore_errors=True)
        try:
            tmp.mkdir(parents=True)
            predictor.save(tmp / _MODEL_FILE)
            if material is not None:
                (tmp / _SPEC_FILE).write_text(
                    json.dumps(material, indent=2, sort_keys=True) + "\n")
            entry.parent.mkdir(parents=True, exist_ok=True)
            try:
                tmp.rename(entry)
            except OSError:
                # Lost the race against a concurrent writer; theirs is
                # byte-equivalent (same key), keep it.
                shutil.rmtree(tmp, ignore_errors=True)
                return
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.stores += 1
        self._store_counter.inc()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"??/*/{_MODEL_FILE}"))

    def stats(self) -> dict[str, Any]:
        """Counters for manifests: hits/misses/stores/errors this process."""
        return {
            "directory": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }
