"""Parallel training executor with content-addressed model caching.

The experiments train many *independent* models — restarts of one
recipe, seed repetitions, grid cells of an ablation — and the serial
restart loop in :meth:`repro.core.predictor.InterferencePredictor.train`
leaves all of that parallelism on the table.  :class:`TrainExecutor`
extends the :mod:`repro.parallel` machinery from simulation sweeps to
the training stack with the same three stacked layers:

1. **Deduplication** — jobs are keyed by :func:`repro.parallel.cachekey.
   train_key` (dataset content digest + complete training recipe);
   identical trainings execute once per batch.
2. **Caching** — with a :class:`~repro.parallel.modelcache.ModelCache`
   attached, trained predictors persist on disk; a warm rerun of an
   experiment executes **zero** trainings.
3. **Parallelism** — the unit of parallel work is one *restart*, so even
   a single training run with ``restarts=3`` fans out.  Restart ``r`` of
   a run seeded ``s`` derives its initialisation from
   :func:`repro.core.nn.train.restart_seed` and trains on the same
   normalised tensor whichever process executes it, and the parent
   selects the best restart with the serial loop's exact comparison
   (strictly-lower validation score, ties to the lowest restart index) —
   making parallel results **bit-identical** to the serial loop.

The resilience layer is shared, not reimplemented: with ``run_timeout``
or ``retries`` configured, restarts execute under
:func:`repro.parallel.supervise.run_supervised` — the same watchdog,
retry-with-backoff and quarantine machinery the sweep executor uses.  A
job any of whose restarts was quarantined yields ``None`` instead of
crashing the experiment.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.core.dataset import Dataset, Normalizer
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.obs import distributed as _dist
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.distributed import WALL_CLOCK, TraceContext
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.parallel.cachekey import train_key, train_key_material
from repro.parallel.executor import (
    _default_start_method,
    emit_job_spans,
    record_batch_telemetry,
    resolve_n_jobs,
)
from repro.parallel.modelcache import ModelCache
from repro.parallel.supervise import run_supervised

__all__ = ["TrainJob", "TrainExecutor"]

logger = get_logger("parallel.trainer")


@dataclass
class TrainJob:
    """One model-training request (the executor's unit of work)."""

    dataset: Dataset
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS
    config: TrainConfig | None = None
    kernel_hidden: tuple[int, ...] = (64, 32)
    head_hidden: tuple[int, ...] = (32,)
    seed: int = 0
    restarts: int = 3

    def effective_config(self) -> TrainConfig:
        """The config training actually uses (mirrors the serial loop's
        ``config or TrainConfig(seed=seed)`` default)."""
        return self.config or TrainConfig(seed=self.seed)


def _train_restart_task(item, trace_ctx: TraceContext | None = None):
    """Worker body: train one restart, return it with its telemetry.

    Runs in a pool worker or supervised child.  The metrics registry is
    reset first so the returned snapshot is exactly this restart's delta.
    With a ``trace_ctx`` the worker attaches a fresh tracer and ships its
    finished spans back in ``aux["trace"]``; without one any inherited
    tracer is detached — same protocol as the sweep executor's workers.
    """
    task_key, payload, _attempt = item
    (X, y, n_servers, n_features, n_classes, config,
     kernel_hidden, head_hidden, seed, restart, normalizer) = payload
    worker_tracer = _dist.attach(trace_ctx)
    REGISTRY.reset()
    started = time.monotonic()
    start = time.perf_counter()
    score, model, history = InterferencePredictor.train_restart(
        X, y, n_servers, n_features, n_classes, config,
        kernel_hidden=kernel_hidden, head_hidden=head_hidden,
        seed=seed, restart=restart, normalizer=normalizer,
    )
    wall = time.perf_counter() - start
    aux = {"pid": os.getpid(), "started": started,
           "trace": _dist.ship(worker_tracer)}
    return task_key, score, model, history, wall, REGISTRY.snapshot(), aux


class TrainExecutor:
    """Runs batches of model trainings: deduplicated, cached, parallel.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) trains in-process via the
        serial restart loop; ``0``/negative uses every core.
    cache:
        A :class:`ModelCache`, a directory path to open one in, or
        ``None`` for no persistent cache (in-batch deduplication still
        applies).
    salt:
        Extra cache-key salt, appended to the code-version salt.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available, else ``spawn``.
    run_timeout:
        Wall-clock seconds one *restart* may take before the watchdog
        kills its worker.  ``None`` disables the watchdog.
    retries:
        Retry budget per restart before quarantine.
    retry_backoff:
        Base of the exponential retry backoff in seconds.
    """

    def __init__(self, n_jobs: int = 1,
                 cache: ModelCache | str | os.PathLike | None = None,
                 salt: str = "", start_method: str | None = None,
                 run_timeout: float | None = None,
                 retries: int = 0,
                 retry_backoff: float = 0.05) -> None:
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError(f"run_timeout must be positive, got {run_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        if cache is not None and not isinstance(cache, ModelCache):
            cache = ModelCache(cache)
        self.cache = cache
        self.salt = salt
        self.start_method = start_method or _default_start_method()
        self.run_timeout = run_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.trainings_executed = 0
        self.jobs_deduplicated = 0
        self.retries_used = 0
        self.timeouts = 0
        #: job key -> {"seed", "restarts", "attempts", "errors"}.
        self.quarantined: dict[str, dict] = {}
        REGISTRY.gauge("parallel.train.n_jobs").set(self.n_jobs)

    # -- keys -------------------------------------------------------------

    def key_for(self, job: TrainJob) -> str:
        return train_key(job.dataset.content_digest(), job.thresholds,
                         job.effective_config(), job.kernel_hidden,
                         job.head_hidden, job.seed, job.restarts,
                         salt=self.salt)

    def _material(self, job: TrainJob) -> dict:
        return train_key_material(job.dataset.content_digest(),
                                  job.thresholds, job.effective_config(),
                                  job.kernel_hidden, job.head_hidden,
                                  job.seed, job.restarts, salt=self.salt)

    def _needs_supervision(self) -> bool:
        return self.run_timeout is not None or self.retries > 0

    # -- execution --------------------------------------------------------

    def train_predictor(self, dataset: Dataset, **kwargs
                        ) -> InterferencePredictor:
        """Train (or recall) one predictor; kwargs mirror ``TrainJob``.

        Raises if the training was quarantined — single trainings are
        all-or-nothing, unlike grid batches.
        """
        result = self.train_predictors([TrainJob(dataset, **kwargs)])[0]
        if result is None:
            raise RuntimeError(
                "training quarantined: "
                f"{next(iter(self.quarantined.values()), {})}")
        return result

    def train_predictors(self, jobs: list[TrainJob]
                         ) -> list[InterferencePredictor | None]:
        """Train ``jobs`` and return predictors in submission order.

        Jobs with equal keys train once and share one result object.
        Slots whose training was quarantined hold ``None``; without
        failures no slot is ever ``None``.
        """
        total_counter = REGISTRY.counter("parallel.train.requested")
        exec_counter = REGISTRY.counter("parallel.train.executed")
        dedup_counter = REGISTRY.counter("parallel.train.deduplicated")
        total_counter.inc(len(jobs))
        tracer = _trace.get()

        with _profile.phase("train", jobs=len(jobs)):
            with _profile.phase("plan"):
                keys = []
                for job in jobs:
                    InterferencePredictor.check_train_inputs(
                        job.dataset, job.thresholds, job.restarts)
                    keys.append(self.key_for(job))
            results: dict[str, InterferencePredictor] = {}
            pending: dict[str, TrainJob] = {}
            with _profile.phase("cache-probe"):
                for job, key in zip(jobs, keys):
                    if key in results or key in pending:
                        self.jobs_deduplicated += 1
                        dedup_counter.inc()
                        continue
                    cached = None
                    if self.cache is not None:
                        probe = (tracer.start("cache.probe",
                                              _dist.wall_now(tracer),
                                              clock=WALL_CLOCK, key=key[:12],
                                              cache="model")
                                 if tracer is not None else None)
                        cached = self.cache.get(key)
                        if probe is not None:
                            tracer.finish(probe, _dist.wall_now(tracer),
                                          hit=cached is not None)
                    if cached is not None:
                        results[key] = cached
                    else:
                        pending[key] = job

            n_restarts = sum(job.restarts for job in pending.values())
            logger.info(
                "training batch: %d jobs -> %d unique, %d cache hits, "
                "%d to train (%d restarts, n_jobs=%d)",
                len(jobs), len(jobs) - self.jobs_deduplicated,
                len(jobs) - len(pending) - self.jobs_deduplicated,
                len(pending), n_restarts, self.n_jobs,
            )

            if pending:
                self.trainings_executed += n_restarts
                exec_counter.inc(n_restarts)
                with _profile.phase("execute", restarts=n_restarts):
                    if not self._needs_supervision() and (
                            self.n_jobs == 1 or n_restarts == 1):
                        self._train_serial(pending, results)
                    else:
                        self._train_parallel(pending, results)

        return [results.get(key) for key in keys]

    def _train_serial(self, pending: dict[str, TrainJob],
                      results: dict[str, InterferencePredictor]) -> None:
        """In-process path: delegate to the serial restart loop itself."""
        wall_hist = REGISTRY.histogram("parallel.train.seconds")
        for key, job in pending.items():
            start = time.perf_counter()
            predictor = InterferencePredictor.train(
                job.dataset, job.thresholds, job.config,
                kernel_hidden=job.kernel_hidden,
                head_hidden=job.head_hidden,
                seed=job.seed, restarts=job.restarts,
            )
            wall_hist.observe(time.perf_counter() - start)
            self._store(key, job, predictor)
            results[key] = predictor

    def _train_parallel(self, pending: dict[str, TrainJob],
                        results: dict[str, InterferencePredictor]) -> None:
        """Fan restarts over worker processes; select best per job.

        The normaliser is fitted once per job in the parent — exactly as
        the serial loop does — and shipped (fitted, not applied) with
        the raw training tensor to every restart; workers apply it per
        batch, which trains on the same bits as transforming up front.
        """
        wall_hist = REGISTRY.histogram("parallel.train.seconds")
        wait_hist = REGISTRY.histogram("parallel.train.queue_wait_seconds")
        normalizers: dict[str, Normalizer] = {}
        tasks: list[tuple[str, tuple]] = []
        with _profile.phase("prepare"):
            for key, job in pending.items():
                norm = Normalizer().fit(job.dataset.X)
                normalizers[key] = norm
                config = job.effective_config()
                n_classes = len(job.thresholds) + 1
                for restart in range(job.restarts):
                    payload = (job.dataset.X, job.dataset.y,
                               job.dataset.n_servers,
                               job.dataset.n_features, n_classes, config,
                               job.kernel_hidden, job.head_hidden,
                               job.seed, restart, norm)
                    tasks.append((f"{key}/r{restart}", payload))

        tracer = _trace.get()
        trace_ctx = _dist.current_context() if tracer is not None else None
        worker_fn = functools.partial(_train_restart_task,
                                      trace_ctx=trace_ctx)
        #: job key -> restart index -> (score, model, history)
        trained: dict[str, dict[int, tuple]] = {key: {} for key in pending}
        #: task key -> shipment info for the submission-order span merge.
        traced: dict[str, dict] = {}
        submit = time.monotonic()

        def worker_label(task_key: str) -> str:
            key, _, rtag = task_key.rpartition("/r")
            return f"{key[:12]}/r{rtag}"

        def harvest(payload) -> None:
            task_key, score, model, history, wall, snapshot, aux = payload
            REGISTRY.merge_snapshot(snapshot, worker=worker_label(task_key))
            wall_hist.observe(wall)
            wait_hist.observe(max(0.0, aux["started"] - submit))
            traced[task_key] = {"submit": submit, "wall": wall,
                                "worker": worker_label(task_key), **aux}
            key, _, rtag = task_key.rpartition("/r")
            trained[key][int(rtag)] = (score, model, history)

        attempts: dict[str, list[dict]] = {}
        if self._needs_supervision():
            stats = run_supervised(
                tasks, worker_fn,
                ctx=multiprocessing.get_context(self.start_method),
                workers=self.n_jobs,
                on_success=lambda _key, payload: harvest(payload),
                run_timeout=self.run_timeout,
                retries=self.retries,
                retry_backoff=self.retry_backoff,
                describe=lambda task_key, _p: {
                    "seed": pending[task_key.rpartition("/r")[0]].seed,
                    "restarts": pending[task_key.rpartition("/r")[0]].restarts,
                },
                metric_prefix="parallel.train",
            )
            self.retries_used += stats.retries_used
            self.timeouts += stats.timeouts
            attempts = stats.attempts
            for task_key, info in stats.quarantined.items():
                key = task_key.rpartition("/r")[0]
                self.quarantined.setdefault(key, info)
        else:
            ctx = multiprocessing.get_context(self.start_method)
            workers = min(self.n_jobs, len(tasks))
            with ctx.Pool(processes=workers) as pool:
                for payload in pool.imap_unordered(
                        worker_fn,
                        [(k, p, 0) for k, p in tasks], chunksize=1):
                    harvest(payload)
        if tracer is not None:
            emit_job_spans(tracer, [k for k, _ in tasks], traced,
                           attempts, span_prefix="train")
        record_batch_telemetry(traced, prefix="parallel.train")

        for key, job in pending.items():
            restarts = trained[key]
            if len(restarts) < job.restarts:
                continue  # quarantined restart(s): job yields None
            # The serial loop's exact selection: strictly lower score
            # wins, so ties keep the lowest restart index.
            best: tuple | None = None
            for restart in range(job.restarts):
                score, model, history = restarts[restart]
                if best is None or score < best[0]:
                    best = (score, model, history)
            assert best is not None
            predictor = InterferencePredictor(
                model=best[1], normalizer=normalizers[key],
                thresholds=job.thresholds, history=best[2],
            )
            self._store(key, job, predictor)
            results[key] = predictor

    def _store(self, key: str, job: TrainJob,
               predictor: InterferencePredictor) -> None:
        if self.cache is None:
            return
        self.cache.put(key, predictor, material=self._material(job))

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict:
        """Executor + cache counters, manifest-ready."""
        stats = {
            "n_jobs": self.n_jobs,
            "trainings_executed": self.trainings_executed,
            "jobs_deduplicated": self.jobs_deduplicated,
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        if (self.quarantined or self.run_timeout is not None
                or self.retries):
            stats["run_timeout"] = self.run_timeout
            stats["retries"] = self.retries
            stats["retries_used"] = self.retries_used
            stats["timeouts"] = self.timeouts
            stats["quarantined"] = [
                {"key": key, **info}
                for key, info in sorted(self.quarantined.items())
            ]
        return stats
