"""Stable content-addressed keys for simulation runs.

A cached run is only reusable when *everything* that shapes its outcome
is part of its key: the target workload's full specification, the
interference mix, the experiment and cluster configuration (which embeds
the seed) and a code-version salt that invalidates every entry when the
simulator changes behaviour.  Keys are a BLAKE2b digest over canonical
JSON (sorted keys, no whitespace), so they are stable across processes,
Python versions and dict orderings — the property the on-disk cache and
the cross-process sweep deduplication both rely on.

Two deliberate normalisations keep the key *minimal* (anything not in
the key becomes a cache hit instead of a pointless recompute):

* ``window_size`` is dropped — it only parameterises post-processing
  (labelling and vector assembly), never the simulation itself, so the
  window-size ablation can re-bin one sweep instead of re-running it;
* for baseline runs (no interference) the ``seed_salt`` is cleared and
  the warm-up zeroed, because both only affect noise launches.  This is
  what lets every scenario of a target share a single baseline run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.obs.manifest import config_to_dict, jsonable
from repro.workloads.base import Workload

__all__ = [
    "CACHE_FORMAT",
    "DATASET_FORMAT",
    "canonical_json",
    "stable_hash",
    "workload_spec",
    "run_key_material",
    "run_key",
    "train_key_material",
    "train_key",
    "dataset_shard_key_material",
    "dataset_shard_key",
]

#: Bumped whenever the persisted run layout or key material changes.
#: 2: the cluster config grew ``sim_backend`` (event vs batch request
#: path) — it participates in the key via ``config_to_dict``, and the
#: bump retires entries written before the batched fast path existed.
CACHE_FORMAT = 2

#: Bumped whenever the columnar window-shard layout
#: (:mod:`repro.data.shard`) or its key material changes.  Separate from
#: ``CACHE_FORMAT`` so retiring shard files does not retire cached runs.
DATASET_FORMAT = 1


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON (sorted keys, compact)."""
    return json.dumps(jsonable(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any, digest_size: int = 20) -> str:
    """Hex BLAKE2b digest of the canonical JSON form of ``obj``."""
    h = hashlib.blake2b(digest_size=digest_size)
    h.update(canonical_json(obj).encode())
    return h.hexdigest()


def workload_spec(workload: Workload) -> dict[str, Any]:
    """A JSON-safe full description of a workload instance.

    Captures the concrete class plus every instance attribute (the
    config dataclass, the job name, any extra knobs), so two workloads
    hash equal exactly when they would generate the same operations.
    """
    spec: dict[str, Any] = {"type": type(workload).__qualname__}
    spec.update(config_to_dict(vars(workload)))
    return spec


def _code_salt(extra_salt: str) -> str:
    from repro import __version__

    return f"{__version__}/f{CACHE_FORMAT}/{extra_salt}"


def run_key_material(
    target: Workload,
    interference: Iterable[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    salt: str = "",
    faults: dict[str, Any] | None = None,
    sharded: bool = False,
) -> dict[str, Any]:
    """The key's raw material (also persisted next to cache entries).

    ``faults`` carries the *simulation-affecting* part of a
    :class:`repro.faults.FaultPlan` (``plan.sim_material()``): a run
    aborted mid-flight has different content than a clean run and must
    never collide with it in the cache.  Worker- and telemetry-level
    faults don't change run content and stay out of the key.

    ``sharded`` marks runs produced by the sharded executor
    (:mod:`repro.sim.shard`).  It is a *boolean*, never the shard
    count: ``--shards N`` is bit-identical to ``--shards 1`` by
    contract, so keys stay shard-count-invariant and warm caches keep
    hitting whatever parallelism the machine offers.  Sharded execution
    is a distinct execution model from the legacy single-environment
    path (per-domain client-link replicas), hence the key separation.
    """
    interference = tuple(interference)
    cfg = config_to_dict(config)
    cfg.pop("window_size", None)  # post-processing only; see module doc
    if not interference:
        seed_salt = ""
        cfg["warmup"] = 0.0
    material = {
        "kind": "monitored-run",
        "salt": _code_salt(salt),
        "target": workload_spec(target),
        "interference": [config_to_dict(spec) for spec in interference],
        "config": cfg,
        "seed_salt": seed_salt,
    }
    if faults:
        material["faults"] = dict(faults)
    if sharded:
        material["sharded"] = True
    return material


def run_key(
    target: Workload,
    interference: Iterable[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    salt: str = "",
    faults: dict[str, Any] | None = None,
    sharded: bool = False,
) -> str:
    """Content-addressed key of one monitored run."""
    return stable_hash(run_key_material(target, interference, config,
                                        seed_salt=seed_salt, salt=salt,
                                        faults=faults, sharded=sharded))


def dataset_shard_key_material(
    target: Workload,
    interference: Iterable[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    salt: str = "",
    faults: dict[str, Any] | None = None,
    sharded: bool = False,
) -> dict[str, Any]:
    """Key material of one (target, scenario) pair's labelled windows.

    A window shard holds the *post-processed* product of a baseline +
    interfered run pair: per-window per-server vectors and degradation
    levels.  Its content is therefore shaped by both runs' full key
    material **plus** the post-processing knobs that ``run_key``
    deliberately drops — ``window_size`` (labelling and vector windows)
    and ``sample_interval`` (server-feature aggregation).  Re-binning at
    a new window size keys new shards while reusing the same cached
    runs, exactly the split the run cache's normalisation was built for.
    """
    return {
        "kind": "window-shard",
        "salt": _code_salt(salt),
        "format": DATASET_FORMAT,
        "baseline": run_key_material(target, (), config, salt=salt,
                                     faults=faults, sharded=sharded),
        "interfered": run_key_material(target, tuple(interference), config,
                                       seed_salt=seed_salt, salt=salt,
                                       faults=faults, sharded=sharded),
        "window_size": config.window_size,
        "sample_interval": config.sample_interval,
    }


def dataset_shard_key(
    target: Workload,
    interference: Iterable[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    salt: str = "",
    faults: dict[str, Any] | None = None,
    sharded: bool = False,
) -> str:
    """Content-addressed key of one pair's labelled window shards."""
    return stable_hash(dataset_shard_key_material(
        target, interference, config, seed_salt=seed_salt, salt=salt,
        faults=faults, sharded=sharded))


def train_key_material(
    dataset_digest: str,
    thresholds: tuple[float, ...],
    config: Any,
    kernel_hidden: tuple[int, ...],
    head_hidden: tuple[int, ...],
    seed: int,
    restarts: int,
    salt: str = "",
) -> dict[str, Any]:
    """The model-cache key's raw material (persisted next to entries).

    A cached model is reusable only when every input that shapes the
    trained parameters is part of its key: the training data's content
    digest (:meth:`repro.core.dataset.Dataset.content_digest`), the
    severity thresholds, the full :class:`~repro.core.nn.train.
    TrainConfig`, the architecture, and the seed/restart schedule.  The
    same code-version salt as the run cache invalidates entries across
    behaviour-changing releases.
    """
    return {
        "kind": "trained-predictor",
        "salt": _code_salt(salt),
        "dataset": dataset_digest,
        "thresholds": list(thresholds),
        "config": config_to_dict(config),
        "kernel_hidden": list(kernel_hidden),
        "head_hidden": list(head_hidden),
        "seed": seed,
        "restarts": restarts,
    }


def train_key(
    dataset_digest: str,
    thresholds: tuple[float, ...],
    config: Any,
    kernel_hidden: tuple[int, ...],
    head_hidden: tuple[int, ...],
    seed: int,
    restarts: int,
    salt: str = "",
) -> str:
    """Content-addressed key of one training run (dataset + recipe)."""
    return stable_hash(train_key_material(
        dataset_digest, thresholds, config, kernel_hidden, head_hidden,
        seed, restarts, salt=salt))
