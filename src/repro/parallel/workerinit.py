"""One-time worker-process initialisation shared by sweep and shard pools.

Sweep pool workers used to do their whole setup inside every task body:
``_execute_job`` imported the simulation stack on first use (expensive
under the ``spawn`` start method), detached or attached the tracer, and
reset the metrics registry per task.  The genuinely one-time parts now
live here as a ``multiprocessing.Pool`` *initializer* — run once per
worker process, not once per task — and the long-lived shard workers
(:mod:`repro.parallel.shardpool`) call the same function at startup.

What stays per-task on purpose: ``_execute_job`` still calls
``attach(trace_ctx)`` and ``REGISTRY.reset()`` for every job, because a
job's shipped snapshot/spans must be exactly that job's delta.  The
initializer makes those per-task calls cheap (modules hot, base state
installed), it does not replace them.
"""

from __future__ import annotations

from typing import Any

from repro.obs import distributed as _dist
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer

__all__ = ["init_worker"]


def init_worker(trace_ctx: "Any | None" = None) -> Tracer | None:
    """Initialise the current process as a pool worker.

    * pre-imports the heavy simulation/monitoring modules so the first
      task does not pay import latency (a no-op under ``fork``, the
      bulk of worker startup under ``spawn``);
    * installs a fresh tracer seeded from ``trace_ctx`` — or detaches
      any tracer inherited via ``fork``, so an untraced worker never
      records into the parent's span list;
    * resets the metrics registry so fork-inherited parent counters
      never leak into the first shipped snapshot.

    Returns the installed worker tracer (``None`` when untraced).
    """
    # Pre-import the modules every job body touches; keeping this list
    # explicit (rather than importing repro.*) bounds worker startup.
    import repro.experiments.runner  # noqa: F401
    import repro.monitor.aggregator  # noqa: F401
    import repro.sim.batch  # noqa: F401
    import repro.sim.cluster  # noqa: F401
    import repro.workloads.io500  # noqa: F401

    tracer = _dist.attach(trace_ctx)
    REGISTRY.reset()
    return tracer
