"""Long-lived shard worker processes hosting server domains.

The sweep pool's unit of work is a whole run; a sharded run instead
needs workers that stay resident across thousands of sync windows, each
round-trip carrying one window's columnar message batches.  This module
provides that: :class:`ProcessDomainGroup` starts one worker process per
shard (same start-method resolution and worker-init path as the sweep
pool), assigns server domains round-robin, and drives all workers
through each conservative window over duplex pipes — send every worker
its window, then collect every reply (the window barrier).

IPC thinning: a worker whose domains have no inbound messages this
window and whose cached horizon clears the window end has provably
nothing to do — its hosts would fire zero events and report the same
``next_time`` — so the coordinator skips the round-trip entirely
(``shard.worker_windows_skipped``; actual sends land in
``shard.ipc_roundtrips``).  Job-name broadcasts stay contiguous across
skips: interned job ids are buffered per worker and flushed with its
next real window, so every worker still sees the id stream in order.
Combined with the coordinator's adaptive window policy
(:class:`~repro.sim.shard.WindowPolicy`), quiet stretches of a run cost
zero pipe traffic instead of one barrier per lookahead.

Telemetry crosses the boundary exactly like sweep workers' does, except
that spans are **per domain**, not per worker: each
:class:`~repro.sim.shard.DomainHost` owns a tracer seeded from the
parent's :class:`~repro.obs.distributed.TraceContext`, and at the end of
the run every domain's spans ship home and merge in domain-index order
under a ``domain{d}`` label.  The domain→worker mapping changes with the
shard count, the domain order does not — so a traced ``--shards 4`` run
emits the byte-identical span stream of ``--shards 1``.  Registry
snapshots stay per worker (counters sum; wall-clock gauges get
``shard{i}`` labels).  Between windows a domain whose span buffer has
grown past :data:`repro.obs.distributed.SPILL_THRESHOLD` spills it to an
on-disk JSONL spool (:func:`repro.obs.distributed.spill_spans`), so
tracing a million-event sharded run keeps worker memory bounded; the
parent folds each spool back in at merge time.

Wall-clock shard health lands in the registry every window:
``shard.barrier_wait_seconds`` (spread between the first and last worker
reply — time the fastest shard spent blocked on the barrier) and the
``shard.worker_window_seconds{worker=shardN}`` per-worker gauges feeding
the skew number.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from typing import Any

from repro.obs import distributed as _dist
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import ClusterConfig

__all__ = ["ProcessDomainGroup", "ShardWorkerError"]

logger = get_logger("parallel.shardpool")

_INF = float("inf")

#: Back-compat alias; the canonical constant lives with the spill code.
SPILL_THRESHOLD = _dist.SPILL_THRESHOLD

#: Seconds between liveness checks while waiting on a worker reply.
_LIVENESS_POLL = 0.05


class ShardWorkerError(RuntimeError):
    """A shard worker died (or went silent) mid-run.

    Raised instead of blocking forever on the worker's pipe; the message
    names the dead worker, the server domains it hosted and its exit
    code, so the failed run is attributable without attaching a
    debugger to a wedged coordinator.
    """


def _shard_worker_main(conn, config: ClusterConfig, domains: list[int],
                       sample_interval: float, trace_ctx: dict | None,
                       spool_dir: str) -> None:
    """Worker body: host ``domains`` and serve window requests forever.

    Protocol (parent -> worker): ``("window", end, inclusive, outbox,
    new_jobs)`` answered with ``("ok", completions, next_time)``;
    ``("finish",)`` answered with ``("done", samples, events, snapshot,
    shipments)`` — shipments being ``(domain_index, spans)`` pairs — and
    exit.  The worker announces ``("ready", next_time)`` once its
    domains are built.
    """
    from repro.obs.trace import Tracer
    from repro.parallel.workerinit import init_worker
    from repro.sim.shard import DomainHost, run_hosts_guarded

    base = init_worker(trace_ctx)
    hosts = [
        DomainHost(config, d, sample_interval,
                   tracer=(None if base is None else
                           Tracer(trace_id=base.trace_id)),
                   spill_path=(None if base is None else
                               os.path.join(spool_dir,
                                            f"domain{d}.spans.jsonl")))
        for d in domains
    ]
    conn.send(("ready", min((h.env.peek() for h in hosts), default=_INF)))
    while True:
        msg = conn.recv()
        if msg[0] == "window":
            _, end, inclusive, outbox, new_jobs = msg
            results = []
            next_time = _INF
            for host in hosts:
                if new_jobs:
                    host.add_jobs(new_jobs)
                batch = outbox.get(host.domain_index)
                if batch is None and host.env.quiet_until(end, inclusive):
                    # Same per-host skip as LocalDomainGroup: no inbound
                    # messages and nothing scheduled inside the window.
                    t = host.env.peek()
                    if t < next_time:
                        next_time = t
                    continue
                if batch is not None:
                    host.inject(batch)
                host.run_window(end, inclusive)
                host.maybe_spill()
                results.append((host.domain_index,
                                host.drain_completions()))
                t = host.env.peek()
                if t < next_time:
                    next_time = t
            conn.send(("ok", results, next_time))
        elif msg[0] == "guarded":
            # One guarded domain-ahead round: the worker's hosts advance
            # through many λ-sub-windows under the first-completion
            # guard (repro.sim.shard.run_hosts_guarded) in a single
            # duplex round-trip.  Only issued when every active domain
            # lives on this worker, so the guard is globally binding.
            _, stop, lookahead, outbox, new_jobs, active = msg
            for host in hosts:
                if new_jobs:
                    host.add_jobs(new_jobs)
                batch = outbox.get(host.domain_index)
                if batch is not None:
                    host.inject(batch)
            results, reached, subwindows = run_hosts_guarded(
                hosts, stop, lookahead, active)
            next_time = min((h.env.peek() for h in hosts), default=_INF)
            conn.send(("guarded-ok", results, reached, subwindows,
                       next_time))
        elif msg[0] == "finish":
            samples = []
            events = 0
            for host in hosts:
                samples.extend(host.monitor.samples)
                events += host.env._seq
            shipments = [(host.domain_index, host.ship_spans())
                         for host in hosts] if base is not None else []
            conn.send(("done", samples, events, REGISTRY.snapshot(),
                       shipments))
            conn.close()
            return
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"shard worker: unknown message {msg[0]!r}")


class ProcessDomainGroup:
    """Server domains fanned out over resident worker processes.

    Drop-in for :class:`repro.sim.shard.LocalDomainGroup`: same
    ``run_window`` / ``finish`` / ``close`` surface and the same
    deterministic result ordering (replies are collected in worker-index
    order and completions re-sorted by domain index), so the coordinator
    cannot observe which process hosted a domain.
    """

    def __init__(self, config: ClusterConfig, domains: list[int],
                 sample_interval: float, n_workers: int,
                 start_method: str | None = None,
                 recv_timeout: float | None = None) -> None:
        from repro.parallel.executor import _default_start_method

        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be positive, "
                             f"got {recv_timeout}")
        self.recv_timeout = recv_timeout
        ctx = multiprocessing.get_context(
            start_method or _default_start_method())
        parent_tracer = _trace.get()
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
        self._workers: list[dict[str, Any]] = []
        self.next_time = _INF
        self.windows = 0
        self._ipc_counter = REGISTRY.counter("shard.ipc_roundtrips")
        self._skipped_counter = REGISTRY.counter(
            "shard.worker_windows_skipped")
        for w in range(n_workers):
            assigned = domains[w::n_workers]
            trace_ctx = None
            if parent_tracer is not None:
                trace_ctx = _dist.TraceContext(
                    trace_id=parent_tracer.trace_id or "",
                    worker=f"shard{w}",
                ).to_dict()
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, config, assigned, sample_interval,
                      trace_ctx, self._tempdir.name),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append({"proc": proc, "conn": parent_conn,
                                  "domains": assigned,
                                  "domain_set": set(assigned),
                                  "label": f"shard{w}",
                                  "next_time": _INF, "pending_jobs": []})
        for worker in self._workers:
            tag, next_time = self._recv(worker, waiting_for="ready")
            if tag != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"shard worker failed to start: {tag!r}")
            worker["next_time"] = next_time
            if next_time < self.next_time:
                self.next_time = next_time
        logger.info("shard pool: %d workers hosting %d domains",
                    n_workers, len(domains))

    def _recv(self, worker: dict[str, Any], waiting_for: str):
        """One pipe read that cannot deadlock on a dead worker.

        A worker killed mid-window (OOM, signal, crash in the domain
        host) never answers, and a bare ``conn.recv()`` would park the
        whole run forever.  Poll the pipe at liveness granularity
        instead: a closed pipe or a dead process raises a descriptive
        :class:`ShardWorkerError` naming the domains that went down,
        and ``recv_timeout`` (optional) bounds the wait for a live but
        wedged worker.
        """
        conn, proc = worker["conn"], worker["proc"]
        where = (f"shard worker {worker['label']} hosting domain(s) "
                 f"{', '.join(str(d) for d in worker['domains'])}")
        deadline = (None if self.recv_timeout is None
                    else time.monotonic() + self.recv_timeout)
        while True:
            try:
                if conn.poll(_LIVENESS_POLL):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardWorkerError(
                    f"{where} closed its pipe while the coordinator "
                    f"awaited {waiting_for} ({exc or 'EOF'})") from exc
            if not proc.is_alive():
                # One last zero-timeout poll: the worker may have sent
                # its reply and exited between our poll and the check.
                if conn.poll(0):
                    try:
                        return conn.recv()
                    except (EOFError, OSError):
                        pass
                raise ShardWorkerError(
                    f"{where} died (exitcode {proc.exitcode}) before "
                    f"replying with {waiting_for}")
            if deadline is not None and time.monotonic() > deadline:
                raise ShardWorkerError(
                    f"{where} sent no {waiting_for} within "
                    f"{self.recv_timeout}s (process alive but "
                    f"unresponsive)")

    def run_window(self, end: float, inclusive: bool, outbox: dict,
                   new_jobs: list) -> list[tuple[int, list]]:
        t0 = time.perf_counter()
        if new_jobs:
            for worker in self._workers:
                worker["pending_jobs"].extend(new_jobs)
        sent: list[dict[str, Any]] = []
        for worker in self._workers:
            worker_outbox = {d: outbox[d] for d in worker["domains"]
                             if d in outbox}
            nt = worker["next_time"]
            if not worker_outbox and (nt > end if inclusive else nt >= end):
                # Quiet worker: no inbound messages and its cached
                # horizon (only a window run can move it) clears the
                # span — the round-trip would fire nothing and echo the
                # same next_time.  Buffered job ids flush with its next
                # real window, keeping the id stream contiguous.
                self._skipped_counter.inc()
                continue
            jobs, worker["pending_jobs"] = worker["pending_jobs"], []
            worker["conn"].send(("window", end, inclusive, worker_outbox,
                                 jobs))
            sent.append(worker)
        self._ipc_counter.inc(len(sent))
        results: list[tuple[int, list]] = []
        replies: list[float] = []
        for worker in sent:
            tag, worker_results, worker_next = self._recv(
                worker, waiting_for="its window reply")
            elapsed = time.perf_counter() - t0
            replies.append(elapsed)
            if tag != "ok":  # pragma: no cover - defensive
                raise RuntimeError(f"shard worker error: {tag!r}")
            results.extend(worker_results)
            worker["next_time"] = worker_next
            REGISTRY.gauge(
                f"shard.worker_window_seconds{{worker={worker['label']}}}"
            ).set(elapsed)
        if len(replies) > 1:
            REGISTRY.histogram("shard.barrier_wait_seconds").observe(
                max(replies) - min(replies))
        results.sort(key=lambda row: row[0])
        self.next_time = min(
            (worker["next_time"] for worker in self._workers), default=_INF)
        self.windows += 1
        return results

    def guarded_feasible(self, active: set[int]) -> bool:
        """A guarded round needs its first-completion guard to bind every
        domain that could complete; across processes that is only
        enforceable when all of them share one worker (otherwise an
        independently-guarded worker could overshoot a sibling's
        completion reaction)."""
        hit = 0
        for worker in self._workers:
            if active & worker["domain_set"]:
                hit += 1
                if hit > 1:
                    return False
        return hit == 1

    def run_guarded(self, stop: float, lookahead: float, outbox: dict,
                    new_jobs: list, active: set[int]
                    ) -> tuple[list[tuple[int, list]], float, int]:
        target = None
        for worker in self._workers:
            if active & worker["domain_set"]:
                target = worker
                break
        if new_jobs:
            for worker in self._workers:
                worker["pending_jobs"].extend(new_jobs)
        t0 = time.perf_counter()
        worker_outbox = {d: outbox[d] for d in target["domains"]
                         if d in outbox}
        jobs, target["pending_jobs"] = target["pending_jobs"], []
        target["conn"].send(("guarded", stop, lookahead, worker_outbox,
                             jobs, active))
        self._ipc_counter.inc()
        self._skipped_counter.inc(len(self._workers) - 1)
        tag, results, reached, subwindows, worker_next = self._recv(
            target, waiting_for="its guarded-round reply")
        if tag != "guarded-ok":  # pragma: no cover - defensive
            raise RuntimeError(f"shard worker error: {tag!r}")
        target["next_time"] = worker_next
        REGISTRY.gauge(
            f"shard.worker_window_seconds{{worker={target['label']}}}"
        ).set(time.perf_counter() - t0)
        results.sort(key=lambda row: row[0])
        self.next_time = min(
            (worker["next_time"] for worker in self._workers), default=_INF)
        self.windows += 1
        return results, reached, subwindows

    def finish(self) -> dict[str, Any]:
        samples: list = []
        events = 0
        tracer = _trace.get()
        shipments: list[tuple[int, dict | None]] = []
        for worker in self._workers:
            worker["conn"].send(("finish",))
        for worker in self._workers:
            tag, worker_samples, worker_events, snapshot, worker_ships = \
                self._recv(worker, waiting_for="its final results")
            if tag != "done":  # pragma: no cover - defensive
                raise RuntimeError(f"shard worker error: {tag!r}")
            samples.extend(worker_samples)
            events += worker_events
            REGISTRY.merge_snapshot(snapshot, worker=worker["label"])
            shipments.extend(worker_ships)
            worker["conn"].close()
            worker["proc"].join(timeout=30)
        if tracer is not None:
            # Domain-index order, not worker order: the domain→worker
            # mapping depends on the shard count, the domain order does
            # not, so the merged stream is shard-count invariant.
            for domain, shipment in sorted(shipments, key=lambda s: s[0]):
                _dist.merge_spilled(tracer, shipment,
                                    worker=f"domain{domain}")
        return {"samples": samples, "events": events}

    def close(self) -> None:
        for worker in self._workers:
            if worker["proc"].is_alive():
                worker["proc"].terminate()
                worker["proc"].join(timeout=5)
        self._tempdir.cleanup()
