"""Content-addressed on-disk cache of monitored simulation runs.

Layout (fan-out on the first two key hex digits keeps directories small
even for very large sweeps)::

    <cache_dir>/
      <key[:2]>/<key>/
        spec.json   # the key material, for humans and debugging
        run/        # repro.monitor.persist.save_run output

Entries are written atomically: a run is first persisted into a private
temporary directory and then renamed into place, so concurrent sweeps
(multiple processes, multiple invocations) can share one cache directory
without locking — whoever renames first wins, later writers discard
their copy.  A corrupted entry (truncated file, schema mismatch, bad
JSON) is treated as a miss: it is deleted and the run recomputed, never
allowed to crash or poison a sweep.

Hit/miss/store/error counts land both on the instance (:meth:`stats`)
and in the process-wide metrics registry (``parallel.cache.*``), from
where they flow into every run manifest.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
from typing import Any

from repro.monitor.aggregator import MonitoredRun
from repro.monitor.persist import load_run, save_run
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["RunCache"]

logger = get_logger("parallel.cache")

_RUN_SUBDIR = "run"
_SPEC_FILE = "spec.json"


class RunCache:
    """Persist and recall :class:`MonitoredRun` records by content key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self._hit_counter = REGISTRY.counter("parallel.cache.hits")
        self._miss_counter = REGISTRY.counter("parallel.cache.misses")
        self._store_counter = REGISTRY.counter("parallel.cache.stores")
        self._error_counter = REGISTRY.counter("parallel.cache.errors")

    def path_for(self, key: str) -> pathlib.Path:
        """Directory an entry with ``key`` lives in (existing or not)."""
        if len(key) < 3:
            raise ValueError(f"implausibly short cache key: {key!r}")
        return self.directory / key[:2] / key

    def __contains__(self, key: str) -> bool:
        return (self.path_for(key) / _RUN_SUBDIR).is_dir()

    def get(self, key: str) -> MonitoredRun | None:
        """The cached run for ``key``, or ``None`` (miss / corrupt entry)."""
        entry = self.path_for(key)
        run_dir = entry / _RUN_SUBDIR
        if not run_dir.is_dir():
            self.misses += 1
            self._miss_counter.inc()
            return None
        try:
            run = load_run(run_dir)
        except Exception as exc:  # any corruption: recompute, never crash
            self.errors += 1
            self.misses += 1
            self._error_counter.inc()
            self._miss_counter.inc()
            logger.warning("dropping corrupt cache entry %s (%s: %s)",
                           key, type(exc).__name__, exc)
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self.hits += 1
        self._hit_counter.inc()
        return run

    def put(self, key: str, run: MonitoredRun,
            material: dict[str, Any] | None = None) -> None:
        """Store ``run`` under ``key`` (no-op when already present)."""
        entry = self.path_for(key)
        if (entry / _RUN_SUBDIR).is_dir():
            return
        tmp = self.directory / f".tmp-{os.getpid()}-{key[:16]}"
        shutil.rmtree(tmp, ignore_errors=True)
        try:
            save_run(run, tmp / _RUN_SUBDIR)
            if material is not None:
                (tmp / _SPEC_FILE).write_text(
                    json.dumps(material, indent=2, sort_keys=True) + "\n")
            entry.parent.mkdir(parents=True, exist_ok=True)
            try:
                tmp.rename(entry)
            except OSError:
                # Lost the race against a concurrent writer; theirs is
                # byte-equivalent (same key), keep it.
                shutil.rmtree(tmp, ignore_errors=True)
                return
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.stores += 1
        self._store_counter.inc()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"??/*/{_RUN_SUBDIR}"))

    def stats(self) -> dict[str, Any]:
        """Counters for manifests: hits/misses/stores/errors this process."""
        return {
            "directory": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }
