"""Generic supervised child-process execution.

The resilience machinery that :class:`repro.parallel.SweepExecutor` grew
for simulation sweeps — one watched child process per unit of work, a
wall-clock watchdog, bounded retry with exponential backoff, quarantine
of work that keeps failing — is not simulation-specific.  This module is
that machinery extracted behind a payload-agnostic interface so the
training executor (:class:`repro.parallel.TrainExecutor`) runs restarts
under exactly the same supervision, not a reimplementation of it.

The contract: the caller supplies keyed payloads and a picklable
``worker(item)`` callable; :func:`run_supervised` runs each payload in
its own child process and reports every success through ``on_success``.
Work that still fails after every retry is quarantined — recorded in the
returned :class:`SupervisionStats` and *not* reported as a result, so a
batch with poisoned items completes instead of crashing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["SupervisionStats", "backoff_delay", "run_supervised",
           "supervised_entry"]

logger = get_logger("parallel.supervise")

#: Seconds between supervision polls (watchdog granularity).
POLL_INTERVAL = 0.005


def backoff_delay(base: float, attempt: int, *, cap: float = 30.0,
                  jitter: float = 0.0) -> float:
    """The retry-backoff policy shared by every supervised retry loop.

    Exponential in the (0-based) attempt number, capped so a deep retry
    chain never sleeps unboundedly.  ``jitter`` in ``[0, 1)`` spreads a
    retrying herd: the delay is stretched by up to that fraction — pass
    a deterministic draw (e.g. ``rng.random()``) so replays stay
    reproducible.  The sweep/training executors retry with ``jitter=0``;
    the prediction service's tenants retry with a ``derive_rng`` draw.
    """
    if base < 0:
        raise ValueError(f"backoff base must be >= 0, got {base}")
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    return min(cap, base * (2 ** attempt)) * (1.0 + jitter)


def supervised_entry(conn, worker, item) -> None:
    """Child-process wrapper: ship the result or the failure over a pipe."""
    try:
        result = worker(item)
    except BaseException as exc:  # noqa: BLE001 — everything must be reported
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


@dataclass
class SupervisionStats:
    """What one supervised batch saw: retries, timeouts, quarantine."""

    retries_used: int = 0
    timeouts: int = 0
    #: key -> {**describe(key, payload), "attempts", "errors"}.
    quarantined: dict[str, dict] = field(default_factory=dict)
    #: key -> per-attempt records, in attempt order: {"attempt",
    #: "started", "ended" (``time.monotonic()`` stamps), "outcome"
    #: ("ok" | "err" | "timeout"), "error" (failed attempts only)}.
    #: Callers render these as retry/execute spans on a trace timeline.
    attempts: dict[str, list[dict]] = field(default_factory=dict)

    def record_attempt(self, key: str, attempt: int, started: float,
                       outcome: str, error: str | None = None) -> None:
        record: dict = {"attempt": attempt, "started": started,
                        "ended": time.monotonic(), "outcome": outcome}
        if error is not None:
            record["error"] = error
        self.attempts.setdefault(key, []).append(record)


def run_supervised(
    items: list[tuple[str, Any]],
    worker: Callable[[tuple[str, Any, int]], Any],
    *,
    ctx,
    workers: int,
    on_success: Callable[[str, Any], None],
    run_timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.05,
    describe: Callable[[str, Any], dict] | None = None,
    metric_prefix: str = "parallel",
) -> SupervisionStats:
    """Watchdogged execution: child process per item, retry, quarantine.

    Every item ``(key, payload)`` gets its own supervised child running
    ``worker((key, payload, attempt))`` so a crash or a wedge never takes
    the batch down: exceptions are reported over the result pipe, silent
    deaths are detected by exit code, and children exceeding
    ``run_timeout`` are terminated.  Failed attempts are retried with
    exponential backoff up to ``retries`` times, then the item is
    quarantined (``describe`` contributes the quarantine record's
    context fields) and the batch moves on.

    ``on_success(key, result)`` fires in the parent, in completion
    order.  ``worker`` must be picklable when ``ctx`` uses the spawn
    start method.  Retry/timeout/quarantine counters are published under
    ``{metric_prefix}.retries`` etc., so the sweep and training
    executors keep distinguishable telemetry from shared machinery.
    """
    retry_counter = REGISTRY.counter(f"{metric_prefix}.retries")
    timeout_counter = REGISTRY.counter(f"{metric_prefix}.timeouts")
    quarantine_counter = REGISTRY.counter(f"{metric_prefix}.quarantined")
    stats = SupervisionStats()
    payloads = dict(items)
    workers = max(1, min(workers, len(items))) if items else 0
    #: (key, attempt, ready_at) — ready_at implements retry backoff.
    queue: list[tuple[str, int, float]] = [(key, 0, 0.0) for key, _ in items]
    #: key -> (proc, conn, deadline, attempt, started_at)
    active: dict[str, tuple] = {}
    errors: dict[str, list[str]] = {}

    def fail(key: str, attempt: int, message: str) -> None:
        errors.setdefault(key, []).append(message)
        if attempt < retries:
            stats.retries_used += 1
            retry_counter.inc()
            backoff = backoff_delay(retry_backoff, attempt)
            logger.warning(
                "%s attempt %d failed (%s); retrying in %.2fs",
                key[:12], attempt, message, backoff,
            )
            queue.append((key, attempt + 1, time.monotonic() + backoff))
        else:
            quarantine_counter.inc()
            info = describe(key, payloads[key]) if describe else {}
            stats.quarantined[key] = {
                **info,
                "attempts": attempt + 1,
                "errors": list(errors[key]),
            }
            logger.error(
                "%s quarantined after %d attempt(s): %s",
                key[:12], attempt + 1, message,
            )

    while queue or active:
        now = time.monotonic()
        progressed = False
        # Launch any ready item into a free slot.
        while len(active) < workers:
            ready_idx = next(
                (i for i, (_, _, ready_at) in enumerate(queue)
                 if ready_at <= now), None,
            )
            if ready_idx is None:
                break
            key, attempt, _ = queue.pop(ready_idx)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=supervised_entry,
                args=(child_conn, worker, (key, payloads[key], attempt)),
            )
            proc.start()
            child_conn.close()
            deadline = now + run_timeout if run_timeout is not None else None
            active[key] = (proc, parent_conn, deadline, attempt, now)
            progressed = True
        # Harvest finished / dead / overdue children.
        for key in list(active):
            proc, conn, deadline, attempt, started = active[key]
            if conn.poll():
                try:
                    kind, payload = conn.recv()
                except EOFError:
                    kind, payload = "err", "worker died (pipe closed)"
                proc.join()
                conn.close()
                del active[key]
                progressed = True
                if kind == "ok":
                    stats.record_attempt(key, attempt, started, "ok")
                    on_success(key, payload)
                else:
                    stats.record_attempt(key, attempt, started, "err",
                                         error=str(payload))
                    fail(key, attempt, str(payload))
            elif not proc.is_alive():
                proc.join()
                conn.close()
                del active[key]
                progressed = True
                message = f"worker died silently (exitcode {proc.exitcode})"
                stats.record_attempt(key, attempt, started, "err",
                                     error=message)
                fail(key, attempt, message)
            elif deadline is not None and now > deadline:
                proc.terminate()
                proc.join()
                conn.close()
                del active[key]
                progressed = True
                stats.timeouts += 1
                timeout_counter.inc()
                message = (f"timeout after {now - started:.2f}s "
                           f"(limit {run_timeout}s)")
                stats.record_attempt(key, attempt, started, "timeout",
                                     error=message)
                fail(key, attempt, message)
        if not progressed:
            time.sleep(POLL_INTERVAL)

    return stats
