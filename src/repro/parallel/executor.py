"""Process-pool sweep executor with run-level deduplication and caching.

The experiment sweeps (Figures 3-5, Tables I/II, the ablations) are
embarrassingly parallel: every (target, scenario) pair is an independent
pair of discrete-event simulations.  :class:`SweepExecutor` exploits that
in three stacked layers:

1. **Deduplication** — jobs are keyed by :func:`repro.parallel.cachekey.
   run_key`; identical runs (most importantly the baseline run a target
   shares across *all* its scenarios) execute once per sweep, whatever
   the worker count.
2. **Caching** — with a :class:`~repro.parallel.cache.RunCache` attached,
   finished runs persist on disk, so the binary and 3-class datasets
   share one simulation sweep across invocations and re-running an
   experiment after a training-side change costs zero simulation time.
3. **Parallelism** — remaining misses fan out over a ``multiprocessing``
   pool.  Determinism is free: every stochastic component derives its
   generator via :func:`repro.common.rng.derive_seed` from the experiment
   seed plus a stable string path, never from global or temporal state,
   so a run's outcome depends only on its job spec — not on which worker
   executes it or in what order jobs complete.  Results are returned in
   submission order, making parallel output **bit-identical** to serial.

On top of that sits the **resilience layer**: with ``run_timeout``,
``retries`` or a :class:`~repro.faults.FaultPlan` with worker faults
configured, pending runs execute under supervision — one watched child
process per run, a wall-clock watchdog that terminates overdue workers,
bounded retry with exponential backoff, and quarantine of runs that keep
failing.  A sweep with poisoned runs *completes*: ``run_many`` returns
``None`` in the quarantined slots and :meth:`SweepExecutor.fault_report`
says exactly what died, how often, and why.  Because every successful
run lands in the cache the moment it finishes, an interrupted or
fault-ridden sweep resumes from the cache: re-running it re-executes
only the runs that never completed.

Worker processes reset the metrics registry, execute, and ship their
registry snapshot back with the run; the parent merges the snapshots
(type-aware: counters sum, histograms merge bucket-wise, gauges become
per-worker labeled series) so ``monitor.*``/``sim.*`` counters match
what a serial sweep would have recorded.  Per-run wall time lands in the
``parallel.run_seconds`` histogram either way.

With a tracer installed, parallel workers additionally attach a fresh
tracer seeded with the parent's :class:`~repro.obs.distributed.
TraceContext`, ship their finished spans back with each result, and the
parent merges every shipment into one coherent multi-process timeline:
wall-clock ``job.*`` spans (queue-wait, execute, retry) and
``cache.probe`` spans wrap each job, with the worker's simulated-time
spans nested under its ``job.execute``.  Merged span ids are allocated
in *submission* order, so the timeline's shape is deterministic whatever
order workers finish in.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    PairedRuns,
    execute_run,
)
from repro.faults.plan import FaultPlan
from repro.monitor.aggregator import MonitoredRun
from repro.obs import distributed as _dist
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.distributed import WALL_CLOCK, TraceContext
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.parallel.cache import RunCache
from repro.parallel.cachekey import dataset_shard_key, run_key, run_key_material
from repro.parallel.supervise import run_supervised
from repro.workloads.base import Workload

__all__ = ["RunJob", "PairJob", "SweepExecutor", "resolve_n_jobs",
           "InjectedWorkerFault"]

logger = get_logger("parallel.executor")


class InjectedWorkerFault(RuntimeError):
    """A deliberate, plan-driven worker failure (crash injection)."""


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise a worker-count request: ``None``/``0``/negative = all cores."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return int(n_jobs)


@dataclass
class RunJob:
    """One monitored execution (the executor's unit of work)."""

    target: Workload
    interference: tuple[InterferenceSpec, ...] = ()
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed_salt: str = ""


@dataclass
class PairJob:
    """One baseline + interfered pair (what the dataset sweeps submit)."""

    target: Workload
    interference: tuple[InterferenceSpec, ...] = ()
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed_salt: str = ""


def _execute_job(item: tuple[str, RunJob, int],
                 plan: FaultPlan | None = None,
                 trace_ctx: TraceContext | None = None,
                 shards: int | None = None,
                 window_policy=None):
    """Worker body: run one job and return (key, run, wall, metrics, aux).

    Runs in a separate process (pool worker or supervised child).  The
    metrics registry is reset first so the returned snapshot is exactly
    this job's delta (fork-started workers inherit the parent's state).
    When the parent is tracing it passes a ``trace_ctx``: the worker
    attaches a fresh tracer seeded with it and ships the finished spans
    back in ``aux["trace"]``; otherwise any inherited tracer is detached
    so fork-started workers never record into the parent's span list.
    ``aux`` also carries the worker pid and its ``time.monotonic()``
    start stamp, from which the parent derives queue-wait and execute
    wall spans.  When a fault plan is supplied, injected worker faults
    fire *before* the simulation (a killed worker never produces partial
    results) and simulated-run aborts are threaded into ``execute_run``.
    """
    key, job, attempt = item
    worker_tracer = _dist.attach(trace_ctx)
    REGISTRY.reset()
    abort_at = None
    if plan is not None:
        if plan.kills_worker(key):
            raise InjectedWorkerFault(
                f"injected persistent crash for run {key[:12]}"
            )
        if plan.worker_is_flaky(key, attempt):
            raise InjectedWorkerFault(
                f"injected transient crash for run {key[:12]} "
                f"(attempt {attempt})"
            )
        stall = plan.worker_stall(key, attempt)
        if stall > 0:
            time.sleep(stall)
        abort_at = plan.run_abort_time(job.target.name, job.seed_salt)
    started = time.monotonic()
    start = time.perf_counter()
    run = execute_run(job.target, list(job.interference), job.config,
                      seed_salt=job.seed_salt, abort_at=abort_at,
                      shards=shards, window_policy=window_policy)
    wall = time.perf_counter() - start
    aux = {"pid": os.getpid(), "started": started,
           "trace": _dist.ship(worker_tracer)}
    return key, run, wall, REGISTRY.snapshot(), aux


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def emit_job_spans(tracer, ordered_keys: list[str], traced: dict[str, dict],
                   attempts: dict[str, list[dict]] | None = None,
                   span_prefix: str = "job") -> None:
    """Emit wall-clock job spans into ``tracer`` in submission order.

    ``traced`` maps job key -> {"submit", "started", "wall", "trace"}
    (monotonic stamps from the parent and the worker, the run's wall
    seconds, and the worker's span shipment).  Iterating ``ordered_keys``
    — submission order — rather than completion order is what keeps
    merged span ids deterministic across runs.  ``attempts`` (from
    :class:`~repro.parallel.supervise.SupervisionStats`) contributes
    ``retry`` child spans for attempts that failed before the success.
    """
    for key in ordered_keys:
        info = traced.get(key)
        if info is None:
            continue
        label = info.get("worker") or key[:12]
        submit = _dist.monotonic_to_wall(tracer, info["submit"])
        started = _dist.monotonic_to_wall(tracer, info["started"])
        end = started + info["wall"]
        tries = (attempts or {}).get(key) or []
        if tries:
            first = _dist.monotonic_to_wall(tracer, tries[0]["started"])
            started = max(started, first)
            end = max(end, started + info["wall"])
        else:
            first = started
        first = max(first, submit)
        job_span = tracer.start(f"{span_prefix}.run", submit,
                                clock=WALL_CLOCK, worker=label)
        wait = tracer.start(f"{span_prefix}.queue-wait", submit,
                            parent=job_span, clock=WALL_CLOCK, worker=label)
        tracer.finish(wait, first)
        for t in tries:
            if t.get("outcome") == "ok":
                continue
            t_start = max(submit, _dist.monotonic_to_wall(tracer, t["started"]))
            retry = tracer.start(f"{span_prefix}.retry", t_start,
                                 parent=job_span, clock=WALL_CLOCK,
                                 worker=label, attempt=t.get("attempt", 0),
                                 outcome=t.get("outcome", "err"))
            tracer.finish(retry,
                          max(t_start,
                              _dist.monotonic_to_wall(tracer, t["ended"])))
        execute = tracer.start(f"{span_prefix}.execute", max(started, submit),
                               parent=job_span, clock=WALL_CLOCK, worker=label)
        _dist.merge_shipment(tracer, info.get("trace"), parent_span=execute,
                             worker=label)
        tracer.finish(execute, max(end, started, submit))
        tracer.finish(job_span, max(end, started, submit))


def record_batch_telemetry(traced: dict[str, dict],
                           prefix: str = "parallel") -> None:
    """Publish batch-level executor health gauges from worker telemetry.

    * ``{prefix}.workers_used`` — distinct worker processes that ran jobs;
    * ``{prefix}.worker_busy_seconds{{worker=wN}}`` — busy wall seconds
      per worker slot, indexed by pid order (slots, not pids: labels stay
      stable run to run even though pids do not);
    * ``{prefix}.straggler_skew`` — slowest run / mean run wall time, the
      load-balance number an operator checks first.
    """
    walls = [info["wall"] for info in traced.values() if "wall" in info]
    if not walls:
        return
    mean = sum(walls) / len(walls)
    REGISTRY.gauge(f"{prefix}.straggler_skew").set(
        max(walls) / mean if mean > 0 else 1.0)
    busy: dict[int, float] = {}
    for info in traced.values():
        pid = info.get("pid")
        if pid is not None:
            busy[pid] = busy.get(pid, 0.0) + info.get("wall", 0.0)
    if busy:
        REGISTRY.gauge(f"{prefix}.workers_used").set(len(busy))
        for slot, pid in enumerate(sorted(busy)):
            REGISTRY.gauge(
                f"{prefix}.worker_busy_seconds{{worker=w{slot}}}"
            ).set(busy[pid])


class SweepExecutor:
    """Runs sweeps of monitored executions: deduplicated, cached, parallel.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) executes in-process;
        ``0``/negative uses every core.
    cache:
        A :class:`RunCache`, a directory path to open one in, or ``None``
        for no persistent cache (in-sweep deduplication still applies).
    salt:
        Extra cache-key salt, appended to the code-version salt.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux), else ``spawn``.
    run_timeout:
        Wall-clock seconds one run may take before the watchdog kills
        its worker (counts as a failed attempt).  ``None`` disables the
        watchdog.
    retries:
        How many times a failed (crashed / timed-out) run is retried
        before quarantine.  ``0`` quarantines on first failure.
    retry_backoff:
        Base of the exponential retry backoff in seconds (attempt ``k``
        waits ``retry_backoff * 2**k``).
    fault_plan:
        A :class:`repro.faults.FaultPlan` whose worker- and
        simulation-level faults are injected into this sweep's runs.
        Telemetry faults are *not* applied here (apply
        :func:`repro.faults.apply_faults` to the returned runs), so
        cached runs stay clean.
    shards:
        Route every run through the sharded executor
        (:mod:`repro.sim.shard`) with this many shard processes.
        ``None`` (default) keeps the legacy single-environment path.
        Cache keys gain a ``sharded`` marker but never the count —
        sharded output is bit-identical across shard counts, so warm
        caches hit whatever parallelism the machine offers.  Inside
        pool workers (daemonic) shards fall back in-process, so
        combining ``n_jobs > 1`` with ``shards > 1`` parallelises
        across runs, not within them.
    window_policy:
        Sync-window sizing for the sharded executor — a
        :class:`repro.sim.shard.WindowPolicy`, its string spec
        (``fixed``, ``adaptive``, ``adaptive:cap=SECONDS``) or ``None``
        for the adaptive default.  Like ``shards`` it never changes run
        output, so it stays out of cache keys; ignored when ``shards``
        is ``None``.
    """

    def __init__(self, n_jobs: int = 1,
                 cache: RunCache | str | os.PathLike | None = None,
                 salt: str = "", start_method: str | None = None,
                 run_timeout: float | None = None,
                 retries: int = 0,
                 retry_backoff: float = 0.05,
                 fault_plan: FaultPlan | None = None,
                 shards: int | None = None,
                 window_policy=None) -> None:
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError(f"run_timeout must be positive, got {run_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        if cache is not None and not isinstance(cache, RunCache):
            cache = RunCache(cache)
        self.cache = cache
        self.salt = salt
        self.start_method = start_method or _default_start_method()
        self.run_timeout = run_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.fault_plan = fault_plan
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.window_policy = window_policy
        self.runs_executed = 0
        self.runs_deduplicated = 0
        self.retries_used = 0
        self.timeouts = 0
        #: key -> {"target", "attempts", "errors"} for runs that kept dying.
        self.quarantined: dict[str, dict] = {}
        REGISTRY.gauge("parallel.n_jobs").set(self.n_jobs)

    # -- keys -------------------------------------------------------------

    def key_for(self, job: RunJob) -> str:
        return run_key(job.target, job.interference, job.config,
                       seed_salt=job.seed_salt, salt=self.salt,
                       faults=self._fault_material(),
                       sharded=self.shards is not None)

    def shard_key_for(self, pair: PairJob) -> str:
        """Content-addressed key of the pair's labelled window shards.

        Mirrors :meth:`key_for` — same salt, fault material and
        sharded-execution marker — so a :class:`repro.data.DatasetStore`
        keyed through one executor agrees with the run cache about what
        counts as "the same" sweep.
        """
        return dataset_shard_key(pair.target, pair.interference, pair.config,
                                 seed_salt=pair.seed_salt, salt=self.salt,
                                 faults=self._fault_material(),
                                 sharded=self.shards is not None)

    def _fault_material(self) -> dict | None:
        if self.fault_plan is not None and self.fault_plan.affects_simulation:
            return self.fault_plan.sim_material()
        return None

    def _needs_supervision(self) -> bool:
        return (self.run_timeout is not None or self.retries > 0
                or (self.fault_plan is not None
                    and self.fault_plan.has_worker_faults))

    # -- execution --------------------------------------------------------

    def run_many(self, jobs: list[RunJob]) -> list[MonitoredRun | None]:
        """Execute ``jobs`` and return their runs in submission order.

        Jobs with equal keys execute once and share one result object.
        Slots whose run was quarantined (kept failing after every retry)
        hold ``None``; without failures no slot is ever ``None``.
        """
        wall_hist = REGISTRY.histogram("parallel.run_seconds")
        wait_hist = REGISTRY.histogram("parallel.queue_wait_seconds")
        total_counter = REGISTRY.counter("parallel.runs_requested")
        exec_counter = REGISTRY.counter("parallel.runs_executed")
        dedup_counter = REGISTRY.counter("parallel.runs_deduplicated")
        total_counter.inc(len(jobs))
        tracer = _trace.get()

        with _profile.phase("sweep", jobs=len(jobs)):
            with _profile.phase("plan"):
                keys = [self.key_for(job) for job in jobs]
            results: dict[str, MonitoredRun] = {}
            pending: dict[str, RunJob] = {}
            with _profile.phase("cache-probe"):
                for job, key in zip(jobs, keys):
                    if key in results or key in pending:
                        self.runs_deduplicated += 1
                        dedup_counter.inc()
                        continue
                    cached = None
                    if self.cache is not None:
                        probe = (tracer.start("cache.probe",
                                              _dist.wall_now(tracer),
                                              clock=WALL_CLOCK, key=key[:12])
                                 if tracer is not None else None)
                        cached = self.cache.get(key)
                        if probe is not None:
                            tracer.finish(probe, _dist.wall_now(tracer),
                                          hit=cached is not None)
                    if cached is not None:
                        results[key] = cached
                    else:
                        pending[key] = job

            items = list(pending.items())
            self.runs_executed += len(items)
            exec_counter.inc(len(items))
            REGISTRY.gauge("parallel.queue_depth").set(len(items))
            logger.info(
                "sweep: %d jobs -> %d unique, %d cache hits, %d to run "
                "(n_jobs=%d)", len(jobs), len(jobs) - self.runs_deduplicated,
                len(jobs) - len(pending) - self.runs_deduplicated, len(items),
                self.n_jobs,
            )

            trace_ctx = (_dist.current_context()
                         if tracer is not None else None)
            #: key -> {"submit", "started", "wall", "pid", "trace"} for
            #: the post-execution span merge (submission-order pass).
            traced: dict[str, dict] = {}
            with _profile.phase("execute", runs=len(items)):
                if items and self._needs_supervision():
                    attempts = self._run_supervised(
                        items, results, wall_hist, trace_ctx, traced)
                    if tracer is not None:
                        emit_job_spans(tracer, [k for k, _ in items],
                                       traced, attempts)
                elif items and self.n_jobs > 1 and len(items) > 1:
                    from repro.parallel.workerinit import init_worker

                    ctx = multiprocessing.get_context(self.start_method)
                    workers = min(self.n_jobs, len(items))
                    worker_fn = functools.partial(
                        _execute_job, plan=self.fault_plan,
                        trace_ctx=trace_ctx, shards=self.shards,
                        window_policy=self.window_policy)
                    submit = time.monotonic()
                    # One-time per-worker setup (heavy imports, base
                    # tracer/registry state) runs in the pool
                    # initializer instead of on every task.
                    with ctx.Pool(processes=workers,
                                  initializer=init_worker,
                                  initargs=(trace_ctx,)) as pool:
                        for key, run, wall, snapshot, aux in \
                                pool.imap_unordered(
                                    worker_fn, [(k, j, 0) for k, j in items],
                                    chunksize=1):
                            REGISTRY.merge_snapshot(snapshot,
                                                    worker=key[:12])
                            wall_hist.observe(wall)
                            wait_hist.observe(
                                max(0.0, aux["started"] - submit))
                            traced[key] = {"submit": submit, "wall": wall,
                                           **aux}
                            self._store(key, pending[key], run)
                            results[key] = run
                    if tracer is not None:
                        emit_job_spans(tracer, [k for k, _ in items], traced)
                else:
                    plan = self.fault_plan
                    for key, job in items:
                        abort_at = (plan.run_abort_time(job.target.name,
                                                        job.seed_salt)
                                    if plan is not None else None)
                        start = time.perf_counter()
                        with _profile.phase("run", target=job.target.name):
                            run = execute_run(job.target,
                                              list(job.interference),
                                              job.config,
                                              seed_salt=job.seed_salt,
                                              abort_at=abort_at,
                                              shards=self.shards,
                                              window_policy=self.window_policy)
                        wall_hist.observe(time.perf_counter() - start)
                        self._store(key, job, run)
                        results[key] = run
            record_batch_telemetry(traced)

        return [results.get(key) for key in keys]

    def _run_supervised(self, items: list[tuple[str, RunJob]],
                        results: dict[str, MonitoredRun],
                        wall_hist, trace_ctx=None,
                        traced: dict[str, dict] | None = None
                        ) -> dict[str, list[dict]]:
        """Watchdogged execution via :func:`repro.parallel.supervise`.

        Every pending run gets its own supervised child so a crash or a
        wedge never takes the sweep down; runs that keep failing land in
        :attr:`quarantined` and the sweep moves on.  Returns the per-key
        attempt records so the caller can render retry spans.
        """
        jobs = dict(items)
        wait_hist = REGISTRY.histogram("parallel.queue_wait_seconds")
        submit = time.monotonic()

        def on_success(key: str, payload) -> None:
            _, run, wall, snapshot, aux = payload
            REGISTRY.merge_snapshot(snapshot, worker=key[:12])
            wall_hist.observe(wall)
            wait_hist.observe(max(0.0, aux["started"] - submit))
            if traced is not None:
                traced[key] = {"submit": submit, "wall": wall, **aux}
            self._store(key, jobs[key], run)
            results[key] = run

        stats = run_supervised(
            items,
            functools.partial(_execute_job, plan=self.fault_plan,
                              trace_ctx=trace_ctx, shards=self.shards,
                              window_policy=self.window_policy),
            ctx=multiprocessing.get_context(self.start_method),
            workers=self.n_jobs,
            on_success=on_success,
            run_timeout=self.run_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
            describe=lambda key, job: {"target": job.target.name,
                                       "seed_salt": job.seed_salt},
            metric_prefix="parallel",
        )
        self.retries_used += stats.retries_used
        self.timeouts += stats.timeouts
        self.quarantined.update(stats.quarantined)
        return stats.attempts

    def run_one(self, job: RunJob) -> MonitoredRun | None:
        """Convenience wrapper: a one-job sweep."""
        return self.run_many([job])[0]

    def run_pairs(self, pairs: list[PairJob]) -> list[PairedRuns | None]:
        """Baseline + interfered execution for every pair, in order.

        The baseline job drops the pair's ``seed_salt`` (it only seeds
        noise launches), so all scenarios of a target key to — and reuse
        — one baseline run.  A pair either of whose runs was quarantined
        comes back as ``None`` (sweeps degrade, they don't crash).
        """
        jobs: list[RunJob] = []
        for pair in pairs:
            jobs.append(RunJob(pair.target, (), pair.config, seed_salt=""))
            jobs.append(RunJob(pair.target, tuple(pair.interference),
                               pair.config, seed_salt=pair.seed_salt))
        runs = self.run_many(jobs)
        out: list[PairedRuns | None] = []
        for i in range(len(pairs)):
            baseline, interfered = runs[2 * i], runs[2 * i + 1]
            if baseline is None or interfered is None:
                out.append(None)
            else:
                out.append(PairedRuns(baseline=baseline,
                                      interfered=interfered))
        return out

    def _store(self, key: str, job: RunJob, run: MonitoredRun) -> None:
        if self.cache is None:
            return
        self.cache.put(key, run,
                       material=run_key_material(job.target, job.interference,
                                                 job.config,
                                                 seed_salt=job.seed_salt,
                                                 salt=self.salt,
                                                 faults=self._fault_material(),
                                                 sharded=self.shards is not None))

    # -- reporting --------------------------------------------------------

    def fault_report(self) -> dict:
        """What the resilience layer saw: quarantine, retries, timeouts."""
        return {
            "plan": (self.fault_plan.to_dict()
                     if self.fault_plan is not None else None),
            "quarantined": [
                {"key": key, **info}
                for key, info in sorted(self.quarantined.items())
            ],
            "retries_used": self.retries_used,
            "timeouts": self.timeouts,
        }

    def stats(self) -> dict:
        """Executor + cache counters, manifest-ready."""
        stats = {
            "n_jobs": self.n_jobs,
            "runs_executed": self.runs_executed,
            "runs_deduplicated": self.runs_deduplicated,
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        if (self.fault_plan is not None or self.quarantined
                or self.run_timeout is not None or self.retries):
            stats["run_timeout"] = self.run_timeout
            stats["retries"] = self.retries
            stats["faults"] = self.fault_report()
        return stats
