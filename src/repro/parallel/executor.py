"""Process-pool sweep executor with run-level deduplication and caching.

The experiment sweeps (Figures 3-5, Tables I/II, the ablations) are
embarrassingly parallel: every (target, scenario) pair is an independent
pair of discrete-event simulations.  :class:`SweepExecutor` exploits that
in three stacked layers:

1. **Deduplication** — jobs are keyed by :func:`repro.parallel.cachekey.
   run_key`; identical runs (most importantly the baseline run a target
   shares across *all* its scenarios) execute once per sweep, whatever
   the worker count.
2. **Caching** — with a :class:`~repro.parallel.cache.RunCache` attached,
   finished runs persist on disk, so the binary and 3-class datasets
   share one simulation sweep across invocations and re-running an
   experiment after a training-side change costs zero simulation time.
3. **Parallelism** — remaining misses fan out over a ``multiprocessing``
   pool.  Determinism is free: every stochastic component derives its
   generator via :func:`repro.common.rng.derive_seed` from the experiment
   seed plus a stable string path, never from global or temporal state,
   so a run's outcome depends only on its job spec — not on which worker
   executes it or in what order jobs complete.  Results are returned in
   submission order, making parallel output **bit-identical** to serial.

Worker processes reset the metrics registry, execute, and ship their
registry snapshot back with the run; the parent merges the snapshots so
``monitor.*``/``sim.*`` counters match what a serial sweep would have
recorded.  Per-run wall time lands in the ``parallel.run_seconds``
histogram either way.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    PairedRuns,
    execute_run,
)
from repro.monitor.aggregator import MonitoredRun
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.parallel.cache import RunCache
from repro.parallel.cachekey import run_key, run_key_material
from repro.workloads.base import Workload

__all__ = ["RunJob", "PairJob", "SweepExecutor", "resolve_n_jobs"]

logger = get_logger("parallel.executor")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise a worker-count request: ``None``/``0``/negative = all cores."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return int(n_jobs)


@dataclass
class RunJob:
    """One monitored execution (the executor's unit of work)."""

    target: Workload
    interference: tuple[InterferenceSpec, ...] = ()
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed_salt: str = ""


@dataclass
class PairJob:
    """One baseline + interfered pair (what the dataset sweeps submit)."""

    target: Workload
    interference: tuple[InterferenceSpec, ...] = ()
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed_salt: str = ""


def _execute_job(item: tuple[str, RunJob]):
    """Pool worker: run one job and return (key, run, wall, metrics).

    Runs in a separate process.  The metrics registry is reset first so
    the returned snapshot is exactly this job's delta (fork-started
    workers inherit the parent's state); the span tracer is detached
    because spans cannot cross the process boundary.
    """
    key, job = item
    from repro.obs import trace as _trace

    _trace.TRACER = None
    REGISTRY.reset()
    start = time.perf_counter()
    run = execute_run(job.target, list(job.interference), job.config,
                      seed_salt=job.seed_salt)
    wall = time.perf_counter() - start
    return key, run, wall, REGISTRY.snapshot()


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class SweepExecutor:
    """Runs sweeps of monitored executions: deduplicated, cached, parallel.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) executes in-process;
        ``0``/negative uses every core.
    cache:
        A :class:`RunCache`, a directory path to open one in, or ``None``
        for no persistent cache (in-sweep deduplication still applies).
    salt:
        Extra cache-key salt, appended to the code-version salt.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux), else ``spawn``.
    """

    def __init__(self, n_jobs: int = 1,
                 cache: RunCache | str | os.PathLike | None = None,
                 salt: str = "", start_method: str | None = None) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        if cache is not None and not isinstance(cache, RunCache):
            cache = RunCache(cache)
        self.cache = cache
        self.salt = salt
        self.start_method = start_method or _default_start_method()
        self.runs_executed = 0
        self.runs_deduplicated = 0
        REGISTRY.gauge("parallel.n_jobs").set(self.n_jobs)

    # -- keys -------------------------------------------------------------

    def key_for(self, job: RunJob) -> str:
        return run_key(job.target, job.interference, job.config,
                       seed_salt=job.seed_salt, salt=self.salt)

    # -- execution --------------------------------------------------------

    def run_many(self, jobs: list[RunJob]) -> list[MonitoredRun]:
        """Execute ``jobs`` and return their runs in submission order.

        Jobs with equal keys execute once and share one result object.
        """
        wall_hist = REGISTRY.histogram("parallel.run_seconds")
        total_counter = REGISTRY.counter("parallel.runs_requested")
        exec_counter = REGISTRY.counter("parallel.runs_executed")
        dedup_counter = REGISTRY.counter("parallel.runs_deduplicated")
        total_counter.inc(len(jobs))

        keys = [self.key_for(job) for job in jobs]
        results: dict[str, MonitoredRun] = {}
        pending: dict[str, RunJob] = {}
        for job, key in zip(jobs, keys):
            if key in results or key in pending:
                self.runs_deduplicated += 1
                dedup_counter.inc()
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
            else:
                pending[key] = job

        items = list(pending.items())
        self.runs_executed += len(items)
        exec_counter.inc(len(items))
        logger.info(
            "sweep: %d jobs -> %d unique, %d cache hits, %d to run "
            "(n_jobs=%d)", len(jobs), len(jobs) - self.runs_deduplicated,
            len(jobs) - len(pending) - self.runs_deduplicated, len(items),
            self.n_jobs,
        )

        if items and self.n_jobs > 1 and len(items) > 1:
            ctx = multiprocessing.get_context(self.start_method)
            workers = min(self.n_jobs, len(items))
            with ctx.Pool(processes=workers) as pool:
                for key, run, wall, snapshot in pool.imap_unordered(
                        _execute_job, items, chunksize=1):
                    REGISTRY.merge_snapshot(snapshot)
                    wall_hist.observe(wall)
                    self._store(key, pending[key], run)
                    results[key] = run
        else:
            for key, job in items:
                start = time.perf_counter()
                run = execute_run(job.target, list(job.interference),
                                  job.config, seed_salt=job.seed_salt)
                wall_hist.observe(time.perf_counter() - start)
                self._store(key, job, run)
                results[key] = run

        return [results[key] for key in keys]

    def run_one(self, job: RunJob) -> MonitoredRun:
        """Convenience wrapper: a one-job sweep."""
        return self.run_many([job])[0]

    def run_pairs(self, pairs: list[PairJob]) -> list[PairedRuns]:
        """Baseline + interfered execution for every pair, in order.

        The baseline job drops the pair's ``seed_salt`` (it only seeds
        noise launches), so all scenarios of a target key to — and reuse
        — one baseline run.
        """
        jobs: list[RunJob] = []
        for pair in pairs:
            jobs.append(RunJob(pair.target, (), pair.config, seed_salt=""))
            jobs.append(RunJob(pair.target, tuple(pair.interference),
                               pair.config, seed_salt=pair.seed_salt))
        runs = self.run_many(jobs)
        return [
            PairedRuns(baseline=runs[2 * i], interfered=runs[2 * i + 1])
            for i in range(len(pairs))
        ]

    def _store(self, key: str, job: RunJob, run: MonitoredRun) -> None:
        if self.cache is None:
            return
        self.cache.put(key, run,
                       material=run_key_material(job.target, job.interference,
                                                 job.config,
                                                 seed_salt=job.seed_salt,
                                                 salt=self.salt))

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict:
        """Executor + cache counters, manifest-ready."""
        return {
            "n_jobs": self.n_jobs,
            "runs_executed": self.runs_executed,
            "runs_deduplicated": self.runs_deduplicated,
            "cache": self.cache.stats() if self.cache is not None else None,
        }
