"""Parallel sweep execution and content-addressed run caching.

The experiment stack's bottleneck is the scenario sweep: every
(target, scenario) pair costs two full discrete-event simulations, and
the figure/table reproductions re-run overlapping sweeps from scratch.
This package removes that bottleneck without touching determinism:

* :mod:`repro.parallel.cachekey` — stable content-addressed keys over
  (workload spec, interference, config, seed, code-version salt);
* :mod:`repro.parallel.cache` — :class:`RunCache`, an atomic on-disk
  store of :class:`~repro.monitor.aggregator.MonitoredRun` records;
* :mod:`repro.parallel.executor` — :class:`SweepExecutor`, fanning
  deduplicated cache misses over a ``multiprocessing`` pool while
  keeping results bit-identical to serial execution.

Quick use::

    from repro.parallel import SweepExecutor
    from repro.experiments.datagen import collect_windows

    bank = collect_windows(targets, scenarios, config,
                           n_jobs=4, cache="results/.runcache")

DESIGN.md §7 documents the determinism contract and cache layout.
"""

from repro.parallel.cache import RunCache
from repro.parallel.cachekey import (
    CACHE_FORMAT,
    canonical_json,
    run_key,
    run_key_material,
    stable_hash,
    workload_spec,
)
from repro.parallel.executor import (
    InjectedWorkerFault,
    PairJob,
    RunJob,
    SweepExecutor,
    resolve_n_jobs,
)

__all__ = [
    "CACHE_FORMAT",
    "InjectedWorkerFault",
    "PairJob",
    "RunCache",
    "RunJob",
    "SweepExecutor",
    "canonical_json",
    "resolve_n_jobs",
    "run_key",
    "run_key_material",
    "stable_hash",
    "workload_spec",
]
