"""Parallel execution and content-addressed caching (runs and models).

The experiment stack has two bottlenecks.  The first is the scenario
sweep: every (target, scenario) pair costs two full discrete-event
simulations.  The second is training: restarts, seed repetitions and
ablation grid cells are independent trainings run back to back.  This
package removes both without touching determinism:

* :mod:`repro.parallel.cachekey` — stable content-addressed keys over
  (workload spec, interference, config, seed, code-version salt) for
  runs, and (dataset digest, training recipe) for models;
* :mod:`repro.parallel.cache` — :class:`RunCache`, an atomic on-disk
  store of :class:`~repro.monitor.aggregator.MonitoredRun` records;
* :mod:`repro.parallel.modelcache` — :class:`ModelCache`, its sibling
  for trained :class:`~repro.core.predictor.InterferencePredictor`s;
* :mod:`repro.parallel.supervise` — the shared watchdog/retry/quarantine
  machinery both executors run their children under;
* :mod:`repro.parallel.executor` — :class:`SweepExecutor`, fanning
  deduplicated cache misses over a ``multiprocessing`` pool while
  keeping results bit-identical to serial execution;
* :mod:`repro.parallel.trainer` — :class:`TrainExecutor`, the same
  layering for trainings, parallel at restart granularity and
  bit-identical to the serial restart loop;
* :mod:`repro.parallel.workerinit` — the shared pool-worker initializer
  (one-time imports and telemetry attach) used by sweep and shard
  workers alike;
* :mod:`repro.parallel.shardpool` — :class:`ProcessDomainGroup`,
  resident shard worker processes hosting server domains for
  :mod:`repro.sim.shard`.

Quick use::

    from repro.parallel import SweepExecutor, TrainExecutor
    from repro.experiments.datagen import collect_windows

    bank = collect_windows(targets, scenarios, config,
                           n_jobs=4, cache="results/.runcache")
    trainer = TrainExecutor(n_jobs=4, cache="results/.modelcache")
    predictor = trainer.train_predictor(bank.binary())

DESIGN.md §7 documents the determinism contract and cache layout;
§10 covers the training side.
"""

from repro.parallel.cache import RunCache
from repro.parallel.cachekey import (
    CACHE_FORMAT,
    DATASET_FORMAT,
    canonical_json,
    dataset_shard_key,
    dataset_shard_key_material,
    run_key,
    run_key_material,
    stable_hash,
    train_key,
    train_key_material,
    workload_spec,
)
from repro.parallel.executor import (
    InjectedWorkerFault,
    PairJob,
    RunJob,
    SweepExecutor,
    resolve_n_jobs,
)
from repro.parallel.modelcache import ModelCache
from repro.parallel.shardpool import ProcessDomainGroup, ShardWorkerError
from repro.parallel.supervise import (
    SupervisionStats,
    backoff_delay,
    run_supervised,
)
from repro.parallel.trainer import TrainExecutor, TrainJob
from repro.parallel.workerinit import init_worker

__all__ = [
    "CACHE_FORMAT",
    "DATASET_FORMAT",
    "InjectedWorkerFault",
    "ModelCache",
    "PairJob",
    "ProcessDomainGroup",
    "RunCache",
    "RunJob",
    "ShardWorkerError",
    "SupervisionStats",
    "SweepExecutor",
    "TrainExecutor",
    "TrainJob",
    "backoff_delay",
    "canonical_json",
    "dataset_shard_key",
    "dataset_shard_key_material",
    "init_worker",
    "resolve_n_jobs",
    "run_key",
    "run_key_material",
    "run_supervised",
    "stable_hash",
    "train_key",
    "train_key_material",
    "workload_spec",
]
