"""Ablation studies on the design choices DESIGN.md calls out.

The paper motivates three design decisions without ablating them; this
module measures each:

* **A1 — model architecture**: the kernel-based per-server network vs a
  flat MLP over concatenated vectors, logistic regression and a random
  forest; plus OST-permutation robustness, the kernel design's stated
  motivation ("applications may utilise a subset of OSTs or target
  different ones in multiple runs", §III-C).
* **A2 — feature families**: client-side-only vs server-side-only vs both
  (§III-A/B claim both are needed).
* **A3 — window size**: the user-defined aggregation window trades label
  sharpness against sample count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common.rng import derive_rng
from repro.core.baselines import LogisticRegressionClassifier, RandomForestClassifier
from repro.core.dataset import Dataset, Normalizer, train_test_split
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import ClassificationReport, evaluate
from repro.core.nn.network import MLPClassifier
from repro.core.nn.train import TrainConfig, train_classifier
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    WindowBank,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.runner import ExperimentConfig
from repro.monitor.schema import CLIENT_FEATURES
from repro.workloads.base import Workload

if TYPE_CHECKING:  # imported lazily at run time (circular with repro.parallel)
    from repro.parallel import TrainExecutor

__all__ = [
    "AblationResult",
    "run_model_ablation",
    "run_feature_ablation",
    "run_window_size_ablation",
    "run_regression_extension",
]


@dataclass
class AblationResult:
    """Macro-F1 per ablation arm."""

    name: str
    scores: dict[str, float] = field(default_factory=dict)
    reports: dict[str, ClassificationReport] = field(default_factory=dict,
                                                     repr=False)

    def render(self) -> str:
        lines = [f"== ablation: {self.name} =="]
        for arm, score in sorted(self.scores.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {arm:32s} macro_f1={score:.3f}")
        return "\n".join(lines)


def _permute_servers(X: np.ndarray, seed: int) -> np.ndarray:
    """Shuffle the server axis per sample (OST reassignment between runs)."""
    rng = derive_rng(seed, "permute-servers")
    out = X.copy()
    for i in range(len(out)):
        out[i] = out[i][rng.permutation(X.shape[1])]
    return out


def _train_kernel(train_set: Dataset, thresholds: tuple[float, ...],
                  seed: int, trainer: "TrainExecutor | None",
                  restarts: int = 3) -> InterferencePredictor:
    """The kernel-net arm: through the training executor when given."""
    if trainer is not None:
        return trainer.train_predictor(train_set, thresholds=thresholds,
                                       config=TrainConfig(seed=seed),
                                       seed=seed, restarts=restarts)
    return InterferencePredictor.train(train_set, thresholds,
                                       config=TrainConfig(seed=seed),
                                       seed=seed, restarts=restarts)


def run_model_ablation(
    bank: WindowBank,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
) -> AblationResult:
    """A1: kernel net vs flat MLP vs logistic regression vs random forest,
    each also scored on server-permuted test data."""
    dataset = bank_to_dataset(bank, thresholds)
    train_set, test_set = train_test_split(dataset, 0.2, seed=seed)
    n_classes = len(thresholds) + 1
    norm = Normalizer().fit(train_set.X)
    Xtr = norm.transform(train_set.X)
    Xte = norm.transform(test_set.X)
    Xte_perm = _permute_servers(Xte, seed)
    result = AblationResult(name="model-architecture")

    predictor = _train_kernel(train_set, thresholds, seed, trainer)
    kernel_model = predictor.model

    flat = MLPClassifier(train_set.n_servers * train_set.n_features,
                         (64, 32), n_classes, seed=seed)
    train_classifier(flat, Xtr, train_set.y, TrainConfig(seed=seed))

    from repro.core.nn.attention import SetTransformerClassifier

    set_tf = SetTransformerClassifier(train_set.n_servers,
                                      train_set.n_features, n_classes,
                                      dim=32, n_heads=4, n_blocks=2,
                                      seed=seed)
    train_classifier(set_tf, Xtr, train_set.y, TrainConfig(seed=seed))

    logreg = LogisticRegressionClassifier(n_classes, seed=seed).fit(Xtr, train_set.y)
    forest = RandomForestClassifier(n_classes, seed=seed).fit(Xtr, train_set.y)

    arms = {
        "kernel-net": lambda X: kernel_model.predict(X),
        "set-transformer": lambda X: set_tf.predict(X),
        "flat-mlp": lambda X: flat.predict(X),
        "logistic-regression": lambda X: logreg.predict(X),
        "random-forest": lambda X: forest.predict(X),
    }
    for arm, predict in arms.items():
        report = evaluate(test_set.y, predict(Xte), n_classes=n_classes)
        result.scores[arm] = report.macro_f1
        result.reports[arm] = report
        perm_report = evaluate(test_set.y, predict(Xte_perm), n_classes=n_classes)
        result.scores[f"{arm}/permuted-servers"] = perm_report.macro_f1
        result.reports[f"{arm}/permuted-servers"] = perm_report
    return result


def run_feature_ablation(
    bank: WindowBank,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
) -> AblationResult:
    """A2: client-only vs server-only vs full per-server vectors.

    The three arms are independent trainings on different feature
    slices; with a ``trainer`` they submit as one grid batch.
    """
    n_client = len(CLIENT_FEATURES)
    masks = {
        "client+server": slice(None),
        "client-only": slice(0, n_client),
        "server-only": slice(n_client, None),
    }
    result = AblationResult(name="feature-families")
    splits = {}
    for arm, sl in masks.items():
        X = bank.X[:, :, sl]
        dataset = Dataset(X, bank_to_dataset(bank, thresholds).y,
                          feature_names=tuple(
                              f"f{i}" for i in range(X.shape[2])))
        splits[arm] = train_test_split(dataset, 0.2, seed=seed)
    if trainer is not None:
        from repro.parallel import TrainJob

        predictors = trainer.train_predictors([
            TrainJob(train_set, thresholds=thresholds,
                     config=TrainConfig(seed=seed), seed=seed)
            for train_set, _ in splits.values()
        ])
        if any(p is None for p in predictors):
            raise RuntimeError("feature-ablation training quarantined")
    else:
        predictors = [
            InterferencePredictor.train(train_set, thresholds,
                                        config=TrainConfig(seed=seed),
                                        seed=seed)
            for train_set, _ in splits.values()
        ]
    for (arm, (_, test_set)), predictor in zip(splits.items(), predictors):
        report = predictor.evaluate(test_set)
        result.scores[arm] = report.macro_f1
        result.reports[arm] = report
    return result


def run_regression_extension(
    bank: WindowBank,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
):
    """A6: exact-level regression vs classification on the same windows.

    Trains :class:`~repro.core.regression.LevelRegressor` on raw
    degradation levels and reports (a) its regression metrics and (b) the
    classification F1 obtained by thresholding its predicted levels,
    against the kernel classifier trained on the binned labels.
    """
    from repro.core.regression import LevelRegressor

    from repro.core.dataset import split_indices

    dataset = bank_to_dataset(bank, thresholds)
    train_idx, test_idx = split_indices(len(dataset), 0.2, seed=seed)
    train_set = dataset.subset(train_idx, ":train")
    test_set = dataset.subset(test_idx, ":test")

    regressor = LevelRegressor.train(
        bank.X[train_idx], bank.levels[train_idx],
        config=TrainConfig(seed=seed, class_weighting=False), seed=seed,
    )
    reg_metrics = regressor.evaluate(bank.X[test_idx], bank.levels[test_idx])
    reg_classes = regressor.classify(bank.X[test_idx], thresholds)
    reg_report = evaluate(dataset.y[test_idx], reg_classes,
                          n_classes=len(thresholds) + 1)

    classifier = _train_kernel(train_set, thresholds, seed, trainer)
    cls_report = classifier.evaluate(test_set)

    result = AblationResult(name="regression-extension")
    result.scores["classifier (binned training)"] = cls_report.macro_f1
    result.scores["regressor (thresholded levels)"] = reg_report.macro_f1
    result.reports["classifier (binned training)"] = cls_report
    result.reports["regressor (thresholded levels)"] = reg_report
    return result, reg_metrics


def run_window_size_ablation(
    targets: list[Workload],
    scenarios: list[Scenario],
    config: ExperimentConfig,
    window_sizes: tuple[float, ...] = (0.25, 0.5, 1.0),
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    seed: int = 0,
    n_jobs: int = 1,
    cache=None,
    executor=None,
    trainer: "TrainExecutor | None" = None,
) -> AblationResult:
    """A3: re-collect and re-train at several aggregation window sizes.

    ``window_size`` is excluded from the run-cache key (it only shapes
    post-processing), so with a cache attached every arm whose
    ``sample_interval`` is unchanged re-bins the first arm's simulation
    sweep instead of re-running it.  All arms' models then train as one
    batch: with a ``trainer`` the grid's restarts share the worker pool.
    """
    from dataclasses import replace

    from repro.parallel import SweepExecutor

    executor = executor or SweepExecutor(n_jobs=n_jobs, cache=cache)
    result = AblationResult(name="window-size")
    splits = {}
    for ws in window_sizes:
        cfg = replace(config, window_size=ws,
                      sample_interval=min(config.sample_interval, ws / 2))
        bank = collect_windows(targets, scenarios, cfg, executor=executor)
        dataset = bank_to_dataset(bank, thresholds)
        arm = f"window={ws:g}s (n={len(dataset)})"
        splits[arm] = train_test_split(dataset, 0.2, seed=seed)
    if trainer is not None:
        from repro.parallel import TrainJob

        predictors = trainer.train_predictors([
            TrainJob(train_set, thresholds=thresholds,
                     config=TrainConfig(seed=seed), seed=seed)
            for train_set, _ in splits.values()
        ])
        if any(p is None for p in predictors):
            raise RuntimeError("window-size ablation training quarantined")
    else:
        predictors = [
            InterferencePredictor.train(train_set, thresholds,
                                        config=TrainConfig(seed=seed),
                                        seed=seed)
            for train_set, _ in splits.values()
        ]
    for (arm, (_, test_set)), predictor in zip(splits.items(), predictors):
        report = predictor.evaluate(test_set)
        result.scores[arm] = report.macro_f1
        result.reports[arm] = report
    return result
