"""Experiment harness reproducing every table and figure of the paper.

* :mod:`repro.experiments.runner` — paired baseline/interference
  executions with monitors attached;
* :mod:`repro.experiments.datagen` — labelled-dataset generation from
  scenario sweeps (§III-D);
* :mod:`repro.experiments.table1` — the 7x7 IO500 slowdown matrix;
* :mod:`repro.experiments.fig1` — Enzo per-op latencies under growing /
  differently-typed interference;
* :mod:`repro.experiments.table2` — server-metric catalogue validation;
* :mod:`repro.experiments.fig3` — binary classification on IO500 & DLIO;
* :mod:`repro.experiments.fig4` — 3-class classification on IO500;
* :mod:`repro.experiments.fig5` — binary classification on AMReX / Enzo /
  OpenPMD;
* :mod:`repro.experiments.ablations` — model/feature/window ablations;
* :mod:`repro.experiments.reporting` — ASCII rendering helpers.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    PairedRuns,
    execute_run,
    run_pair,
)
from repro.experiments.datagen import (
    Scenario,
    WindowBank,
    bank_to_dataset,
    collect_windows,
    generate_dataset,
    standard_scenarios,
)

__all__ = [
    "ExperimentConfig",
    "InterferenceSpec",
    "PairedRuns",
    "execute_run",
    "run_pair",
    "Scenario",
    "WindowBank",
    "bank_to_dataset",
    "collect_windows",
    "generate_dataset",
    "standard_scenarios",
]
