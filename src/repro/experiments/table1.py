"""Table I: IO500 task slowdown under each type of interfering I/O pattern.

For every pair of the seven selected IO500 tasks, the paper runs the row
task standalone and with the column task generating background noise from
other compute nodes (3 concurrent instances kept active), reporting the
row task's runtime slowdown averaged over repetitions. Absolute values
depend on the testbed; the *shape* is what the reproduction targets (see
:func:`shape_checks`): read patterns crush other reads, data writes barely
touch reads, ``mdt-hard-write`` collapses under bulk data writes while
``mdt-easy-write`` shrugs them off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.experiments.reporting import render_table
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.monitor.aggregator import MonitoredRun
from repro.workloads.io500 import IO500_TASKS, make_io500_task

__all__ = ["Table1Result", "run_table1", "shape_checks"]


@dataclass
class Table1Result:
    """The slowdown matrix plus raw runtimes."""

    tasks: tuple[str, ...]
    #: matrix[row, col] = slowdown of task `row` under interference `col`.
    matrix: np.ndarray
    standalone_runtime: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(list(self.tasks), list(self.tasks), self.matrix,
                            corner="target\\noise")

    def cell(self, row_task: str, col_task: str) -> float:
        return float(self.matrix[self.tasks.index(row_task),
                                 self.tasks.index(col_task)])


def _target_runtime(run: MonitoredRun) -> float:
    """Wall time of the target task: first op start to last op end."""
    records = [r for r in run.records if r.job == run.job]
    if not records:
        raise RuntimeError(f"target {run.job} issued no operations")
    return max(r.end for r in records) - min(r.start for r in records)


def run_table1(
    config: ExperimentConfig | None = None,
    tasks: tuple[str, ...] = IO500_TASKS,
    target_ranks: int = 4,
    target_scale: float = 0.25,
    noise_instances: int = 3,
    noise_ranks: int = 2,
    noise_scale: float = 0.25,
    repetitions: int = 1,
    n_jobs: int = 1,
    cache=None,
    executor=None,
) -> Table1Result:
    """Compute the slowdown matrix.

    ``repetitions`` averages over different seeds (the paper averages 3
    consecutive runs; the simulator is deterministic per seed so
    repetitions vary the seed instead).

    All ``len(tasks) * (len(tasks) + 1) * repetitions`` runs of the grid
    are submitted to one :class:`repro.parallel.SweepExecutor` sweep, so
    they parallelise over ``n_jobs`` workers and persist in ``cache``;
    the matrix itself is bit-identical to the serial computation.
    """
    from repro.parallel import RunJob, SweepExecutor

    config = config or ExperimentConfig()
    executor = executor or SweepExecutor(n_jobs=n_jobs, cache=cache)
    n = len(tasks)

    jobs: list[RunJob] = []
    for row_task in tasks:
        target = make_io500_task(row_task, ranks=target_ranks,
                                 scale=target_scale)
        for rep in range(repetitions):
            cfg = replace(config, seed=config.seed + rep)
            jobs.append(RunJob(target, (), cfg, seed_salt=f"t1-base-{rep}"))
        for ci, col_task in enumerate(tasks):
            noise = (InterferenceSpec(col_task, instances=noise_instances,
                                      ranks=noise_ranks, scale=noise_scale),)
            for rep in range(repetitions):
                cfg = replace(config, seed=config.seed + rep)
                jobs.append(RunJob(target, noise, cfg,
                                   seed_salt=f"t1-{ci}-{rep}"))

    runs = iter(executor.run_many(jobs))
    matrix = np.zeros((n, n))
    standalone: dict[str, float] = {}
    for ri, row_task in enumerate(tasks):
        base_times = [_target_runtime(next(runs)) for _ in range(repetitions)]
        standalone[row_task] = float(np.mean(base_times))
        for ci in range(n):
            times = [_target_runtime(next(runs)) for _ in range(repetitions)]
            matrix[ri, ci] = float(np.mean(times)) / standalone[row_task]
    return Table1Result(tasks=tuple(tasks), matrix=matrix,
                        standalone_runtime=standalone)


def shape_checks(result: Table1Result) -> dict[str, bool]:
    """The qualitative claims of Table I, as testable predicates.

    Paper values in comments for reference; the reproduction asserts
    direction and rough magnitude, not absolute numbers.
    """
    c = result.cell
    return {
        # 29.3x: competing sequential reads seek-thrash each other.
        "read_read_severe": c("ior-easy-read", "ior-easy-read") > 2.0,
        # 1.004x: writeback absorption + read priority shields reads.
        "write_noise_spares_reads":
            c("ior-easy-read", "ior-easy-write") < 2.0,
        # Reads hurt reads far more than writes hurt reads (29.3 vs 1.0).
        "reads_hurt_reads_more_than_writes":
            c("ior-easy-read", "ior-easy-read")
            > 1.5 * c("ior-easy-read", "ior-easy-write"),
        # 2.72x: bulk writes contend with each other moderately.
        "write_write_moderate": c("ior-easy-write", "ior-easy-write") > 1.3,
        # 26.2x vs 1.04x: small data writes starve behind bulk writes,
        # pure-metadata creates do not.
        "mdt_hard_write_crushed_by_data_writes":
            c("mdt-hard-write", "ior-easy-write")
            > 2.0 * c("mdt-easy-write", "ior-easy-write"),
        # 1.04x: mdt-easy-write (MDT-only) insensitive to OST writes.
        "mdt_easy_write_insensitive":
            c("mdt-easy-write", "ior-easy-write") < 2.0,
        # 3.96x: metadata reads suffer under metadata-write noise.
        "mdt_read_hurt_by_mdt_write":
            c("mdt-hard-read", "mdt-hard-write")
            > c("mdt-hard-read", "ior-easy-write"),
    }
