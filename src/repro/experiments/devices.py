"""Device ablation: rotational disks vs flash (A4).

The paper's testbed uses 7200 RPM SATA disks, and its most extreme
interference cells (Table I's 29x read/read) are seek phenomena. This
ablation re-runs the critical interference cells on an identically-shaped
cluster whose OSTs are flash devices: with no mechanical positioning,
read/read interference collapses to plain bandwidth sharing, while
write/write interference (a cache/throttling phenomenon) survives. The
contrast quantifies how much of the paper's observed interference is
storage-technology-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    execute_run,
)
from repro.experiments.table1 import _target_runtime
from repro.sim.disk import FlashParams
from repro.workloads.io500 import make_io500_task

__all__ = ["DeviceAblationResult", "run_device_ablation"]


@dataclass
class DeviceAblationResult:
    """Key interference cells per device technology."""

    #: (device, cell) -> slowdown, e.g. ("hdd", "read_read") -> 48.0
    slowdowns: dict[tuple[str, str], float]

    def cell(self, device: str, cell: str) -> float:
        return self.slowdowns[(device, cell)]

    def render(self) -> str:
        cells = sorted({c for _, c in self.slowdowns})
        lines = [f"{'cell':>16} {'hdd':>10} {'ssd':>10}"]
        for cell in cells:
            lines.append(
                f"{cell:>16} {self.slowdowns[('hdd', cell)]:>10.2f} "
                f"{self.slowdowns[('ssd', cell)]:>10.2f}"
            )
        return "\n".join(lines)


_CELLS: dict[str, tuple[str, str]] = {
    # cell name -> (target task, noise task)
    "read_read": ("ior-easy-read", "ior-easy-read"),
    "write_write": ("ior-easy-write", "ior-easy-write"),
    "read_vs_write": ("ior-easy-read", "ior-easy-write"),
}


def run_device_ablation(
    config: ExperimentConfig | None = None,
    target_scale: float = 0.4,
    noise_instances: int = 3,
    noise_ranks: int = 3,
    noise_scale: float = 0.25,
) -> DeviceAblationResult:
    """Measure the critical Table I cells on HDD- and flash-backed OSTs."""
    config = config or ExperimentConfig()
    slowdowns: dict[tuple[str, str], float] = {}
    for device in ("hdd", "ssd"):
        if device == "hdd":
            dev_config = config
        else:
            dev_config = replace(
                config, cluster=replace(config.cluster, disk=FlashParams())
            )
        for cell, (target_task, noise_task) in _CELLS.items():
            target = make_io500_task(target_task, ranks=4, scale=target_scale)
            base = _target_runtime(
                execute_run(target, [], dev_config,
                            seed_salt=f"dev-{device}-{cell}-base")
            )
            noise = [InterferenceSpec(noise_task, instances=noise_instances,
                                      ranks=noise_ranks, scale=noise_scale)]
            noisy = _target_runtime(
                execute_run(target, noise, dev_config,
                            seed_salt=f"dev-{device}-{cell}")
            )
            slowdowns[(device, cell)] = noisy / base
    return DeviceAblationResult(slowdowns=slowdowns)
