"""Figure 5: binary prediction on the three real applications.

Each application (AMReX, Enzo — data-intensive; OpenPMD — metadata
intensive) is run once without interference for the baseline and then
under increasing amounts of concurrent IO500 instances (the paper's
protocol), a per-application model is trained and evaluated on a 20%
window hold-out. The paper's observed shape: AMReX and Enzo classify
well; OpenPMD is weakest because it yields the fewest samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.labeling import BINARY_THRESHOLDS
from repro.experiments.datagen import Scenario, collect_windows
from repro.experiments.fig3 import ModelEvalResult, evaluate_banks
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.workloads.apps import (
    AmrexConfig,
    AmrexWorkload,
    EnzoConfig,
    EnzoWorkload,
    OpenPMDConfig,
    OpenPMDWorkload,
)
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.parallel import TrainExecutor

__all__ = ["Fig5Result", "run_fig5", "app_scenarios", "default_app_targets"]


@dataclass
class Fig5Result:
    """One evaluation per application."""

    results: dict[str, ModelEvalResult]

    def render(self) -> str:
        return "\n\n".join(r.render() for r in self.results.values())

    def macro_f1(self, app: str) -> float:
        return self.results[app].report.macro_f1


def app_scenarios(max_level: int = 3, noise_scale: float = 0.2) -> list[Scenario]:
    """Quiet, light, and increasing concurrent IO500 instances.

    The light scenario (one small writer) populates the <2x class beyond
    the quiet run alone, mirroring the mild-contention periods a real
    shared system spends most of its time in.
    """
    scenarios = [
        Scenario("quiet"),
        Scenario(
            "io500-light",
            (InterferenceSpec("ior-easy-write", instances=1, ranks=1,
                              scale=noise_scale * 0.5),),
        ),
    ]
    for level in range(1, max_level + 1):
        scenarios.append(
            Scenario(
                f"io500-x{level}",
                (
                    InterferenceSpec("ior-easy-write", instances=level, ranks=2,
                                     scale=noise_scale),
                    InterferenceSpec("ior-easy-read", instances=max(1, level - 1),
                                     ranks=2, scale=noise_scale),
                    InterferenceSpec("mdt-hard-write", instances=max(1, level - 1),
                                     ranks=2, scale=noise_scale),
                ),
            )
        )
    return scenarios


def default_app_targets(scale: float = 1.0) -> dict[str, Workload]:
    """The three applications at a benchmark-friendly size.

    OpenPMD is configured to produce the fewest windows, reproducing the
    paper's small-sample situation for that application.
    """
    return {
        "amrex": AmrexWorkload(AmrexConfig(
            ranks=4, steps=max(2, int(8 * scale)), levels=2,
            fab_bytes=int(8 * 1024 * 1024 * scale) or 1024 * 1024,
        )),
        "enzo": EnzoWorkload(EnzoConfig(
            ranks=4, cycles=max(2, int(10 * scale)), grids_per_rank=4,
        )),
        "openpmd": OpenPMDWorkload(OpenPMDConfig(
            ranks=4, iterations=max(2, int(6 * scale)),
            records_per_iteration=10,
        )),
    }


def run_fig5(
    config: ExperimentConfig | None = None,
    targets: dict[str, Workload] | None = None,
    max_level: int = 3,
    noise_scale: float = 0.2,
    n_jobs: int = 1,
    cache=None,
    executor=None,
    trainer: "TrainExecutor | None" = None,
    store=None,
) -> Fig5Result:
    """Train and evaluate one model per application.

    One :class:`repro.parallel.SweepExecutor` is shared across the three
    applications so the worker pool and run cache see the whole grid;
    the per-application models then train as one batch, so with a
    ``trainer`` every restart of every application is in flight at once.
    """
    from repro.parallel import SweepExecutor

    config = config or ExperimentConfig()
    targets = targets or default_app_targets()
    scenarios = app_scenarios(max_level=max_level, noise_scale=noise_scale)
    executor = executor or SweepExecutor(n_jobs=n_jobs, cache=cache)
    banks = {
        app: collect_windows([workload], scenarios, config,
                             executor=executor, store=store)
        for app, workload in targets.items()
    }
    evals = evaluate_banks([(f"fig5-{app}", banks[app]) for app in targets],
                           BINARY_THRESHOLDS, trainer=trainer)
    return Fig5Result(results=dict(zip(targets, evals)))
