"""Fail-slow generalisation (A7): does the model transfer across causes?

The paper borrows its severity bins from Perseus (Lu et al., FAST'23), a
*fail-slow* detection framework — degradation caused by a sick device
rather than by a competing application. This experiment asks whether a
predictor trained purely on **interference**-caused degradation
generalises to **fail-slow**-caused degradation: the same target runs on
a quiet cluster whose OSTs are degraded mid-run by a service-time
multiplier, windows are labelled against the healthy baseline, and the
interference-trained model is scored zero-shot.

The mechanism link: both causes manifest in the same Table II symptoms
(rising queue time, falling completion rate), so transfer is plausible —
and measuring it probes whether the model learned the *symptoms* or the
*cause signature* of its training noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_seed
from repro.core.labeling import DegradationLabeller
from repro.core.metrics import ClassificationReport, evaluate
from repro.core.predictor import InterferencePredictor
from repro.monitor.aggregator import MonitoredRun, assemble_vectors
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload, launch
from repro.experiments.runner import ExperimentConfig

__all__ = ["FailSlowResult", "run_failslow_run", "run_failslow_transfer"]


@dataclass
class FailSlowResult:
    """Zero-shot transfer of an interference model to fail-slow windows.

    ``X``/``y`` carry the labelled fail-slow windows so callers can
    augment a training set with them (the mixed-training arm of A7).
    """

    report: ClassificationReport
    n_windows: int
    class_counts: list[int]
    X: np.ndarray = field(repr=False, default=None)
    y: np.ndarray = field(repr=False, default=None)

    def render(self) -> str:
        return (
            "== fail-slow transfer (interference-trained model, zero-shot) ==\n"
            f"windows={self.n_windows} classes={self.class_counts}\n"
            + self.report.summary()
        )


def run_failslow_run(
    target: Workload,
    config: ExperimentConfig,
    slow_factor: float = 8.0,
    onset: float = 0.0,
    degraded_osts: tuple[int, ...] | None = None,
    seed_salt: str = "failslow",
) -> MonitoredRun:
    """Run ``target`` alone on a cluster whose OSTs turn fail-slow.

    ``onset`` seconds after the run starts, the listed OSTs (default:
    all) have their device service times multiplied by ``slow_factor``.
    """
    if slow_factor <= 0:
        raise ValueError("slow_factor must be positive")
    cluster = Cluster(config.cluster)
    monitor = ServerMonitor(cluster, sample_interval=config.sample_interval)
    monitor.start()
    victims = (tuple(range(config.cluster.n_osts))
               if degraded_osts is None else degraded_osts)

    def degrade():
        yield cluster.env.timeout(onset)
        for idx in victims:
            cluster.osts[idx].device.inject_slowdown(slow_factor)

    if slow_factor != 1.0:
        cluster.env.process(degrade())
    handle = launch(cluster, target, list(config.target_nodes),
                    derive_seed(config.seed, "target", target.name))
    cluster.env.run(until=handle.done)
    cluster.env.run(until=cluster.env.now + config.sample_interval)
    return MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
        metadata={"slow_factor": slow_factor, "onset": onset,
                  "degraded_osts": list(victims)},
    )


def run_failslow_transfer(
    predictor: InterferencePredictor,
    target: Workload,
    config: ExperimentConfig,
    slow_factors: tuple[float, ...] = (4.0, 8.0, 16.0),
) -> FailSlowResult:
    """Score an interference-trained predictor on fail-slow degradation."""
    labeller = DegradationLabeller(window_size=config.window_size,
                                   thresholds=predictor.thresholds)
    X_parts: list[np.ndarray] = []
    y_parts: list[int] = []
    baseline = run_failslow_run(target, config, slow_factor=1.0,
                                seed_salt="fs-base")
    for factor in (1.0, *slow_factors):
        run = run_failslow_run(target, config, slow_factor=factor,
                               seed_salt=f"fs-{factor}")
        labels = labeller.window_labels(baseline.records, run.records,
                                        target.name)
        if not labels:
            continue
        X, windows = assemble_vectors(run, config.window_size,
                                      config.sample_interval)
        keep = [w for w in windows if w in labels]
        X_parts.append(X[keep])
        y_parts.extend(labels[w] for w in keep)
    if not X_parts:
        raise RuntimeError("fail-slow runs produced no labelled windows")
    X = np.concatenate(X_parts)
    y = np.array(y_parts)
    preds = predictor.predict(X)
    report = evaluate(y, preds, n_classes=predictor.n_classes)
    counts = np.bincount(y, minlength=predictor.n_classes)
    return FailSlowResult(report=report, n_windows=len(y),
                          class_counts=[int(c) for c in counts],
                          X=X, y=y)
