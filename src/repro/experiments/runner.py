"""Paired baseline/interference executions.

The paper's data collection protocol (§III-D): run the *target workload*
once alone and once per interference scenario, with interference always
on *other* compute nodes, keeping a fixed number of concurrent
interference instances active for the whole measurement. This module
reproduces that: it wires a fresh cluster per run, attaches the server
monitor, launches looping interference instances on the non-target nodes,
optionally lets them warm up, then runs the target to completion.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

from repro.common.rng import derive_seed
from repro.common.units import MIB
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.server_monitor import ServerMonitor
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest, config_to_dict, write_manifest
from repro.sim.cache import CacheParams
from repro.sim.cluster import Cluster, ClusterConfig
from repro.workloads.base import Workload, launch, launch_interference
from repro.workloads.io500 import make_io500_task

__all__ = [
    "InterferenceSpec",
    "ExperimentConfig",
    "PairedRuns",
    "execute_run",
    "run_pair",
    "experiment_cluster",
    "save_run_with_manifest",
]

logger = get_logger("experiments.runner")


def experiment_cluster(cache_mib: int = 64, mds_threads: int = 4) -> ClusterConfig:
    """Cluster config used by the paper-reproduction experiments.

    Identical to the testbed topology, but with the OSS page cache scaled
    down to ``cache_mib``. The paper's measurements span minutes of real
    load against 32-140 GB of server memory; our simulated runs span
    seconds, so the cache is shrunk proportionally to the compressed
    timescale — otherwise every run would sit in the transient
    everything-fits-in-RAM regime and no steady-state interference (dirty
    throttling, cache-cold re-reads) would ever be exercised. The MDS
    thread pool is reduced for the same reason: the noise generators run
    at a fraction of a real IO500's op rate, so the pool they must be
    able to saturate shrinks with them.
    """
    from repro.sim.mds import MDSParams

    return ClusterConfig(
        cache=CacheParams(capacity_bytes=cache_mib * MIB),
        mds=MDSParams(service_threads=mds_threads),
    )


@dataclass(frozen=True)
class InterferenceSpec:
    """One kind of background noise: an IO500 task at some concurrency.

    ``instances`` is the number of concurrently-running copies (the paper
    keeps 3 active per noise node); each copy loops until the measurement
    ends.
    """

    task: str
    instances: int = 3
    ranks: int = 2
    scale: float = 0.25

    def __post_init__(self) -> None:
        if self.instances < 1 or self.ranks < 1:
            raise ValueError("instances and ranks must be >= 1")

    def build(self, index: int) -> Workload:
        return make_io500_task(
            self.task, name=f"noise-{self.task}-{index}", ranks=self.ranks,
            scale=self.scale,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of one experiment."""

    cluster: ClusterConfig = field(default_factory=experiment_cluster)
    #: Compute nodes hosting the target workload; the rest host noise.
    target_nodes: tuple[int, ...] = (0, 1, 2, 3)
    window_size: float = 0.5
    sample_interval: float = 0.125
    #: Seconds of interference warm-up before the target starts.
    warmup: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.target_nodes:
            raise ValueError("need at least one target node")
        if max(self.target_nodes) >= self.cluster.n_client_nodes:
            raise ValueError("target node index out of range")
        if self.window_size <= 0 or self.sample_interval <= 0:
            raise ValueError("window_size and sample_interval must be positive")

    @property
    def noise_nodes(self) -> tuple[int, ...]:
        return tuple(
            i for i in range(self.cluster.n_client_nodes)
            if i not in self.target_nodes
        )


@dataclass
class PairedRuns:
    """A baseline run and one interfered run of the same target."""

    baseline: MonitoredRun
    interfered: MonitoredRun


def execute_run(
    target: Workload,
    interference: list[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    abort_at: float | None = None,
    shards: int | None = None,
    window_policy=None,
) -> MonitoredRun:
    """One monitored execution of ``target`` under the given noise.

    ``abort_at`` kills the simulation at that simulated time (fault
    injection: a run that died mid-flight).  The truncated run is still
    a valid :class:`MonitoredRun` — whatever was traced and sampled up
    to the abort — with ``metadata["aborted"]`` recording the cut.

    ``shards`` selects the sharded executor (:mod:`repro.sim.shard`):
    the cluster's server domains run on that many concurrent processes
    (``1`` = sharded protocol, all in-process).  Output is bit-identical
    across shard counts; ``None`` keeps the legacy single-environment
    path.  ``window_policy`` (a :class:`repro.sim.shard.WindowPolicy`,
    its string spec, or ``None`` for the adaptive default) tunes the
    sharded executor's sync-window sizing; it never changes output and
    is ignored on the legacy path.
    """
    if shards is not None:
        from repro.sim.shard import execute_run_sharded

        return execute_run_sharded(target, interference, config,
                                   seed_salt=seed_salt, abort_at=abort_at,
                                   shards=shards,
                                   window_policy=window_policy)
    wall_start = time.perf_counter()
    if abort_at is not None and abort_at <= 0:
        raise ValueError(f"abort_at must be positive, got {abort_at}")
    logger.info(
        "execute_run: target=%s noise=%s seed=%d",
        target.name, [spec.task for spec in interference] or "none",
        config.seed,
    )
    cluster = Cluster(config.cluster)
    monitor = ServerMonitor(cluster, sample_interval=config.sample_interval)
    monitor.start()
    noise_nodes = list(config.noise_nodes) or list(config.target_nodes)
    for spec_idx, spec in enumerate(interference):
        for copy in range(spec.instances):
            workload = spec.build(copy)
            # Unique job name per (spec, copy) so traces stay separable.
            workload.name = f"{workload.name}-{spec_idx}"
            seed = derive_seed(config.seed, "noise", seed_salt, spec_idx, copy)
            logger.debug("launching noise %s on nodes %s (seed=%d)",
                         workload.name, noise_nodes, seed)
            launch_interference(cluster, workload, noise_nodes, seed,
                                record=False)
    if interference and config.warmup > 0:
        cluster.env.run(until=config.warmup)
    target_seed = derive_seed(config.seed, "target", target.name)
    handle = launch(cluster, target, list(config.target_nodes), target_seed)
    aborted = False
    if abort_at is not None:
        cluster.env.run(until=abort_at)
        aborted = not handle.done._fired
        if aborted:
            logger.warning("run %s aborted at t=%.3fs (fault injection)",
                           target.name, abort_at)
    else:
        cluster.env.run(until=handle.done)
    # One trailing sampling period so the last window has server samples.
    cluster.env.run(until=cluster.env.now + config.sample_interval)
    run = MonitoredRun(
        job=target.name,
        records=cluster.collector.records,
        server_samples=monitor.samples,
        servers=cluster.servers,
        duration=cluster.env.now,
        metadata={
            "interference": [spec.task for spec in interference],
            "instances": sum(spec.instances for spec in interference),
            "warmup": config.warmup if interference else 0.0,
            "seed": config.seed,
            "target_nodes": list(config.target_nodes),
            "window_size": config.window_size,
            "sample_interval": config.sample_interval,
            **({"aborted": True, "abort_at": abort_at} if aborted else {}),
        },
    )
    logger.info(
        "execute_run done: %s finished at t=%.3fs sim (%d records, "
        "%d samples, %.2fs wall)",
        target.name, run.duration, len(run.records),
        len(run.server_samples), time.perf_counter() - wall_start,
    )
    return run


def save_run_with_manifest(
    run: MonitoredRun,
    config: ExperimentConfig,
    directory: str | pathlib.Path,
    name: str | None = None,
    timings: dict[str, float] | None = None,
) -> pathlib.Path:
    """Persist a run plus its provenance manifest to ``directory``.

    Combines :func:`repro.monitor.persist.save_run` with a
    ``manifest.json`` recording the seed, full experiment configuration
    and the current metrics snapshot, so the directory alone identifies
    what produced it (``python -m repro obs <dir>/manifest.json``).
    """
    from repro.monitor.persist import save_run

    directory = pathlib.Path(directory)
    save_run(run, directory)
    manifest = build_manifest(
        name=name or run.job,
        seed=config.seed,
        config=config_to_dict(config),
        timings=timings,
        extra={"job": run.job, "duration": run.duration,
               "records": len(run.records),
               "samples": len(run.server_samples)},
    )
    write_manifest(manifest, directory / "manifest.json")
    logger.info("saved run %s with manifest to %s", run.job, directory)
    return directory


def run_pair(
    target: Workload,
    interference: list[InterferenceSpec],
    config: ExperimentConfig,
    seed_salt: str = "",
    executor=None,
) -> PairedRuns:
    """Baseline + interfered execution with identical target op sequences.

    Ops are matched by (job, rank, op_id), not by time, so the baseline
    needs no warm-up alignment: it simply provides the undisturbed
    duration of every operation.

    Pass a :class:`repro.parallel.SweepExecutor` to route both runs
    through its deduplication and run cache (sweeps should submit all
    their pairs at once via ``executor.run_pairs`` instead, so the pool
    sees the whole grid).
    """
    if executor is not None:
        from repro.parallel import PairJob

        return executor.run_pairs(
            [PairJob(target, tuple(interference), config, seed_salt=seed_salt)]
        )[0]
    from repro.obs import profile as _profile

    with _profile.phase("sim-run", target=target.name, kind="baseline"):
        baseline = execute_run(target, [], config, seed_salt=seed_salt)
    with _profile.phase("sim-run", target=target.name, kind="interfered"):
        interfered = execute_run(target, interference, config,
                                 seed_salt=seed_salt)
    return PairedRuns(baseline=baseline, interfered=interfered)
