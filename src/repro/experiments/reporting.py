"""ASCII rendering helpers for experiment outputs.

The paper presents its results as a slowdown table (Table I), latency
series plots (Figure 1) and confusion matrices (Figures 3-5); these
helpers render the same content as terminal text so benchmarks can print
paper-comparable artefacts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "moving_average", "render_series", "render_matrix"]


def render_table(
    rows: list[str],
    cols: list[str],
    values: np.ndarray,
    corner: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """A labelled 2-D table."""
    values = np.asarray(values)
    if values.shape != (len(rows), len(cols)):
        raise ValueError(
            f"values shape {values.shape} does not match {len(rows)}x{len(cols)}"
        )
    cells = [[fmt.format(v) for v in row] for row in values]
    width = max(
        [len(corner)] + [len(c) for c in cols] + [len(r) for r in rows]
        + [len(c) for row in cells for c in row]
    ) + 2
    lines = ["".join([f"{corner:>{width}}"] + [f"{c:>{width}}" for c in cols])]
    for label, row in zip(rows, cells):
        lines.append("".join([f"{label:>{width}}"] + [f"{c:>{width}}" for c in row]))
    return "\n".join(lines)


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered-ish moving average, same length as the input.

    The paper smooths Figure 1's latency series with a moving window.
    """
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(values) == 0:
        return values.copy()
    kernel = np.ones(min(window, len(values))) / min(window, len(values))
    padded = np.concatenate([
        np.full(len(kernel) // 2, values[0]),
        values,
        np.full(len(kernel) - 1 - len(kernel) // 2, values[-1]),
    ])
    return np.convolve(padded, kernel, mode="valid")


def render_series(series: dict[str, np.ndarray], height: int = 12,
                  width: int = 72) -> str:
    """A crude multi-series ASCII line chart (log-ish scaling not applied)."""
    if not series:
        raise ValueError("no series to render")
    arrays = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    n = max(len(v) for v in arrays.values())
    if n == 0:
        raise ValueError("empty series")
    top = max(v.max() for v in arrays.values() if len(v))
    top = top if top > 0 else 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for mi, (name, values) in enumerate(arrays.items()):
        marker = markers[mi % len(markers)]
        for i, v in enumerate(values):
            x = int(i / max(1, n - 1) * (width - 1))
            y = height - 1 - int(min(1.0, v / top) * (height - 1))
            grid[y][x] = marker
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    return "\n".join(lines + [f"max={top:.4g}", legend])


def render_matrix(name: str, matrix: np.ndarray,
                  class_names: list[str]) -> str:
    """Confusion-matrix block with a title, like one panel of Figure 3-5."""
    from repro.core.metrics import render_confusion

    return f"== {name} ==\n{render_confusion(np.asarray(matrix), class_names)}"
