"""Figure 1: Enzo per-operation latency under different interference.

Figure 1(a): the same Enzo operation sequence under 0/1/2/3 concurrent
``ior-easy-write`` instances — impacts are non-uniform across operations
and mostly (not always) grow with intensity.

Figure 1(b): Enzo under a data-intensive (``ior-easy-write``) vs a
metadata-intensive (``mdt-easy-write``) noise — different operations are
hurt by different noise types.

The series are per-op latencies of the target's first ``horizon`` seconds
(baseline clock), smoothed with a moving window like the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.labeling import match_operations
from repro.experiments.reporting import moving_average, render_series
from repro.experiments.runner import ExperimentConfig, InterferenceSpec, run_pair
from repro.workloads.apps import EnzoConfig, EnzoWorkload

__all__ = ["Fig1Result", "run_fig1a", "run_fig1b"]


@dataclass
class Fig1Result:
    """Per-op latency series per interference condition."""

    #: op index -> aligned latency arrays, one per condition.
    series: dict[str, np.ndarray]
    op_labels: list[str]
    smoothing: int = 5

    def smoothed(self) -> dict[str, np.ndarray]:
        return {k: moving_average(v, self.smoothing) for k, v in self.series.items()}

    def render(self) -> str:
        return render_series(self.smoothed())

    def mean_slowdown(self, condition: str) -> float:
        base = self.series["baseline"]
        other = self.series[condition]
        mask = base > 0
        return float((other[mask] / base[mask]).mean())

    def slowdown_dispersion(self, condition: str) -> float:
        """Coefficient of variation of per-op slowdowns — the paper's
        'impacts are not uniformly applied' observation quantified."""
        base = self.series["baseline"]
        other = self.series[condition]
        mask = base > 0
        ratios = other[mask] / base[mask]
        return float(ratios.std() / max(1e-12, ratios.mean()))


def _collect_series(
    enzo_cfg: EnzoConfig,
    conditions: dict[str, list[InterferenceSpec]],
    config: ExperimentConfig,
    horizon: float,
) -> Fig1Result:
    """Latency per baseline op (within ``horizon`` s) per condition."""
    target = EnzoWorkload(enzo_cfg)
    series: dict[str, np.ndarray] = {}
    op_labels: list[str] = []
    base_keys: list = []
    for name, noise in conditions.items():
        pair = run_pair(target, noise, config, seed_salt=f"fig1-{name}")
        base_records = [r for r in pair.baseline.records if r.job == target.name]
        t0 = min(r.start for r in base_records)
        if not base_keys:
            chosen = sorted(
                (r for r in base_records if r.start - t0 <= horizon),
                key=lambda r: (r.start, r.rank, r.op_id),
            )
            base_keys = [r.key for r in chosen]
            op_labels = [f"{r.op.value}" for r in chosen]
        matched = {
            b.key: i.duration
            for b, i in match_operations(pair.baseline.records,
                                         pair.interfered.records, target.name)
        }
        base_dur = {r.key: r.duration for r in base_records}
        series[name] = np.array([matched.get(k, base_dur[k]) for k in base_keys])
        if "baseline" not in series:
            series["baseline"] = np.array([base_dur[k] for k in base_keys])
    return Fig1Result(series=series, op_labels=op_labels)


def run_fig1a(
    config: ExperimentConfig | None = None,
    enzo_cfg: EnzoConfig | None = None,
    max_level: int = 3,
    horizon: float = 50.0,
    noise_scale: float = 0.25,
) -> Fig1Result:
    """Figure 1(a): growing amounts of ior-easy-write interference."""
    config = config or ExperimentConfig()
    enzo_cfg = enzo_cfg or EnzoConfig()
    conditions = {
        f"ior-easy-write-x{level}": [
            InterferenceSpec("ior-easy-write", instances=level, ranks=2,
                             scale=noise_scale)
        ]
        for level in range(1, max_level + 1)
    }
    return _collect_series(enzo_cfg, conditions, config, horizon)


def run_fig1b(
    config: ExperimentConfig | None = None,
    enzo_cfg: EnzoConfig | None = None,
    horizon: float = 50.0,
    noise_scale: float = 0.25,
) -> Fig1Result:
    """Figure 1(b): data-intensive vs metadata-intensive interference."""
    config = config or ExperimentConfig()
    enzo_cfg = enzo_cfg or EnzoConfig()
    conditions = {
        "data-intensive": [
            InterferenceSpec("ior-easy-write", instances=2, ranks=2,
                             scale=noise_scale)
        ],
        "metadata-intensive": [
            InterferenceSpec("mdt-easy-write", instances=2, ranks=2,
                             scale=noise_scale),
            InterferenceSpec("mdt-hard-write", instances=1, ranks=2,
                             scale=noise_scale),
        ],
    }
    return _collect_series(enzo_cfg, conditions, config, horizon)
